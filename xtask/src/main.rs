//! Workspace automation tasks (no registry dependencies).
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! `lint` runs the source lints described in [`lint`] and exits non-zero on
//! any finding. Suppressions live in `xtask/lint-allow.txt`, one
//! `path-suffix: substring` entry per line — every entry is expected to carry
//! a comment explaining the documented panic contract it covers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives inside the workspace")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let findings = lint::run(&root);
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("--help") | Some("-h") | None => {
            println!(
                "xtask — workspace automation\n\nTASKS:\n    lint    panic-hygiene, \
                 guard-across-send and ProtoMsg/wire cross-checks\n            \
                 (suppressions: xtask/lint-allow.txt)"
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task {other:?} (try: lint)");
            ExitCode::FAILURE
        }
    }
}
