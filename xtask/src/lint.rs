//! Registry-free source lints for the workspace's concurrency-critical code.
//!
//! Six passes, all line-based (no syn/proc-macro dependencies — the
//! container has no registry access, and these lints only need to be as smart
//! as the code they police):
//!
//! 1. **panic hygiene** — `unwrap()` / `expect(` / `panic!(` are forbidden in
//!    non-test code under `crates/arrow-net/src` and `crates/arrow-core/src/live`
//!    (the two trees that run on live threads, where a panic kills a node
//!    rather than failing a test). Findings are suppressed by
//!    `xtask/lint-allow.txt` entries — documented panic contracts belong
//!    there, silent ones get fixed.
//! 2. **guard across send** — a `let` binding holding a `Mutex` guard that is
//!    still alive on a line that calls `.send(` risks blocking every other
//!    user of the lock behind channel backpressure (and deadlock if the
//!    receiver needs the same lock).
//! 3. **protocol/wire cross-check** — every `ProtoMsg` variant must appear in
//!    `arrow-net/src/wire.rs` non-test code (a frame encoding exists) *and* in
//!    its test module (a codec test exercises it).
//! 4. **metrics bypass** — counters in the live tiers route through the shared
//!    `arrow_trace::MetricsRegistry` (one schema for every tier's reporting);
//!    a direct `fetch_add` on an ad-hoc atomic in the policed trees is a
//!    counter the observability plane cannot see. Registry internals live in
//!    `arrow-trace`, outside the policed directories.
//! 5. **unsafe fencing** — every first-party crate root under `crates/` must
//!    carry `#![forbid(unsafe_code)]`: the whole protocol stack, reactor
//!    included, is safe Rust by construction, and `forbid` (unlike `deny`)
//!    cannot be overridden by an inner `allow`. Only the vendored stand-ins
//!    under `crates/compat/` are exempt — they take whatever license their
//!    upstream APIs force on them.
//! 6. **daemon exit paths** — `arrowd` (the cluster tier's per-node daemon)
//!    must exit through its typed `DaemonError` → `ExitCode` mapping, which
//!    the harness and operators can enumerate. A bare `process::exit(`
//!    outside `fn main` is an undocumented exit code that also skips the
//!    destructors the journal flush rides on.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
pub struct Finding {
    /// File the finding is in, workspace-relative.
    pub file: PathBuf,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Which pass produced it.
    pub lint: &'static str,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// An allowlist entry: `path-suffix: substring` (see `xtask/lint-allow.txt`).
struct Allow {
    path_suffix: String,
    substring: String,
}

fn load_allowlist(root: &Path) -> Vec<Allow> {
    let path = root.join("xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path_suffix, substring) = l.split_once(": ")?;
            Some(Allow {
                path_suffix: path_suffix.trim().to_string(),
                substring: substring.trim().to_string(),
            })
        })
        .collect()
}

fn allowed(allows: &[Allow], file: &Path, line_text: &str) -> bool {
    let file = file.to_string_lossy();
    allows
        .iter()
        .any(|a| file.ends_with(&a.path_suffix) && line_text.contains(&a.substring))
}

/// Strip line comments (everything from the first `//` onward). Good enough
/// for this workspace: `//` inside string literals does not occur in the
/// policed trees, and over-stripping only makes the lint more conservative.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn net_delta(code: &str) -> i32 {
    code.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Iterate the non-test lines of a source file: `(line_number, raw_line)`.
/// A `#[cfg(test)]` item (module or fn) and everything inside its braces is
/// skipped, tracked by brace counting.
fn non_test_lines(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut skip_depth: Option<i32> = None; // brace depth at which the skip ends
    let mut depth = 0i32;
    let mut pending_cfg_test = false;
    for (i, line) in text.lines().enumerate() {
        let code = code_of(line);
        if skip_depth.is_none() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                depth += net_delta(code);
                continue;
            }
            if pending_cfg_test {
                // The attribute's item starts here; skip until its braces close.
                if code.contains('{') {
                    skip_depth = Some(depth);
                    pending_cfg_test = false;
                } else if code.contains(';') {
                    pending_cfg_test = false; // e.g. `#[cfg(test)] use ...;`
                }
                depth += net_delta(code);
                continue;
            }
            out.push((i + 1, line));
            depth += net_delta(code);
        } else {
            depth += net_delta(code);
            if Some(depth) <= skip_depth {
                skip_depth = None;
            }
        }
    }
    out
}

/// The directories policed by the panic-hygiene and guard lints.
fn policed_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in ["crates/arrow-net/src", "crates/arrow-core/src/live"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn rel<'p>(root: &Path, path: &'p Path) -> &'p Path {
    path.strip_prefix(root).unwrap_or(path)
}

/// Pass 1: forbid `unwrap()` / `expect(` / `panic!(` in non-test code.
fn lint_panic_hygiene(root: &Path, allows: &[Allow], findings: &mut Vec<Finding>) {
    for path in policed_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let file = rel(root, &path).to_path_buf();
        for (line_no, line) in non_test_lines(&text) {
            let code = code_of(line);
            for (needle, what) in [
                (".unwrap()", "unwrap() in non-test live-path code"),
                (".expect(", "expect() in non-test live-path code"),
                ("panic!(", "panic!() in non-test live-path code"),
            ] {
                if code.contains(needle) && !allowed(allows, &file, line) {
                    findings.push(Finding {
                        file: file.clone(),
                        line: line_no,
                        lint: "panic-hygiene",
                        message: format!("{what}: {}", line.trim()),
                    });
                }
            }
        }
    }
}

/// Pass 2: flag `Mutex` guards held across `.send(` calls.
///
/// A `let` binding whose initializer contains `.lock()` keeps its guard alive
/// until the end of the enclosing block; any `.send(` before that point runs
/// under the lock. (Single-statement `.lock().x()` temporaries are fine: the
/// guard drops at the end of the statement, and the same line holding `.send(`
/// is flagged too.)
fn lint_guard_across_send(root: &Path, allows: &[Allow], findings: &mut Vec<Finding>) {
    for path in policed_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let file = rel(root, &path).to_path_buf();
        let mut depth = 0i32;
        // Open guard scopes: brace depth the binding lives at.
        let mut guards: Vec<i32> = Vec::new();
        for (line_no, line) in non_test_lines(&text) {
            let code = code_of(line);
            let trimmed = code.trim_start();
            let binds_guard = trimmed.starts_with("let ")
                && code.contains(".lock()")
                // `let _ = ...` / shed bindings drop immediately.
                && !trimmed.starts_with("let _ =")
                // A binding that extracts owned data out of the guard within
                // the same statement (take/clone at the end) does not hold it.
                && !code.contains("std::mem::take")
                && !code.trim_end().ends_with(".clone();");
            let sends = code.contains(".send(");
            if sends
                && (binds_guard || code.contains(".lock()") || !guards.is_empty())
                && !allowed(allows, &file, line)
            {
                findings.push(Finding {
                    file: file.clone(),
                    line: line_no,
                    lint: "guard-across-send",
                    message: format!(
                        "send() while a Mutex guard is (or may be) held: {}",
                        line.trim()
                    ),
                });
            }
            if binds_guard {
                guards.push(depth);
            }
            depth += net_delta(code);
            guards.retain(|&d| depth > d);
        }
    }
}

/// Extract the variant names of `pub enum ProtoMsg` from protocol.rs.
fn proto_msg_variants(text: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i32;
    for line in text.lines() {
        let code = code_of(line);
        if code.contains("pub enum ProtoMsg") {
            in_enum = true;
            depth = 0;
        }
        if in_enum {
            // Variants sit at depth 1, as `Name {`, `Name(`, or `Name,`.
            if depth == 1 {
                let t = code.trim();
                if let Some(name) = t.split([' ', '{', '(', ',']).next() {
                    if !name.is_empty()
                        && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && name.chars().all(|c| c.is_ascii_alphanumeric())
                    {
                        variants.push(name.to_string());
                    }
                }
            }
            depth += net_delta(code);
            if depth <= 0 && code.contains('}') {
                break;
            }
        }
    }
    variants
}

/// Pass 3: every `ProtoMsg` variant has a wire encoding and a codec test.
fn lint_proto_wire(root: &Path, findings: &mut Vec<Finding>) {
    let proto_path = root.join("crates/arrow-core/src/protocol.rs");
    let wire_path = root.join("crates/arrow-net/src/wire.rs");
    let (Ok(proto), Ok(wire)) = (
        std::fs::read_to_string(&proto_path),
        std::fs::read_to_string(&wire_path),
    ) else {
        findings.push(Finding {
            file: PathBuf::from("crates/arrow-core/src/protocol.rs"),
            line: 0,
            lint: "proto-wire",
            message: "cannot read protocol.rs / wire.rs for the cross-check".to_string(),
        });
        return;
    };
    let variants = proto_msg_variants(&proto);
    if variants.is_empty() {
        findings.push(Finding {
            file: rel(root, &proto_path).to_path_buf(),
            line: 0,
            lint: "proto-wire",
            message: "found no ProtoMsg variants (parser out of sync?)".to_string(),
        });
        return;
    }
    // Split wire.rs at its test module: encodings live before, tests after.
    let split = wire.find("#[cfg(test)]").unwrap_or(wire.len());
    let (wire_code, wire_tests) = wire.split_at(split);
    let wire_file = rel(root, &wire_path).to_path_buf();
    for v in &variants {
        let pattern = format!("ProtoMsg::{v}");
        if !wire_code.contains(&pattern) {
            findings.push(Finding {
                file: wire_file.clone(),
                line: 0,
                lint: "proto-wire",
                message: format!("ProtoMsg::{v} has no frame encoding in wire.rs non-test code"),
            });
        }
        if !wire_tests.contains(&pattern) {
            findings.push(Finding {
                file: wire_file.clone(),
                line: 0,
                lint: "proto-wire",
                message: format!("ProtoMsg::{v} is not exercised by any wire.rs codec test"),
            });
        }
    }
}

/// Pass 4: no ad-hoc counter increments beside the metrics registry.
///
/// The live tiers report through `arrow_trace::MetricsRegistry` snapshots; a
/// raw `.fetch_add(` in the policed trees is a counter that bypasses the one
/// shared schema (it will not show up in snapshots, diffs or the JSON
/// reports). Legitimate non-counter atomics (e.g. id allocation) belong on
/// the allowlist with a documented reason.
fn lint_metrics_bypass(root: &Path, allows: &[Allow], findings: &mut Vec<Finding>) {
    for path in policed_files(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let file = rel(root, &path).to_path_buf();
        for (line_no, line) in non_test_lines(&text) {
            let code = code_of(line);
            if code.contains(".fetch_add(") && !allowed(allows, &file, line) {
                findings.push(Finding {
                    file: file.clone(),
                    line: line_no,
                    lint: "metrics-bypass",
                    message: format!(
                        "direct counter increment bypasses the MetricsRegistry: {}",
                        line.trim()
                    ),
                });
            }
        }
    }
}

/// Pass 5: every non-compat crate root carries `#![forbid(unsafe_code)]`.
///
/// Walks the `crates/` directory (the workspace's first-party crates; `xtask`
/// itself is a build tool, not shipped code) and requires the attribute in
/// each `src/lib.rs`. `crates/compat/` — the vendored offline stand-ins — is
/// the only exemption: shims like `netpoll` may need `unsafe` for raw fd
/// plumbing, and their roots decide for themselves.
fn lint_unsafe_fencing(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        findings.push(Finding {
            file: PathBuf::from("crates"),
            line: 0,
            lint: "unsafe-fencing",
            message: "cannot read the crates/ directory".to_string(),
        });
        return;
    };
    let mut roots: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "compat"))
        .map(|p| p.join("src/lib.rs"))
        .collect();
    roots.sort();
    for lib in roots {
        let file = rel(root, &lib).to_path_buf();
        let Ok(text) = std::fs::read_to_string(&lib) else {
            findings.push(Finding {
                file,
                line: 0,
                lint: "unsafe-fencing",
                message: "crate has no readable src/lib.rs to carry the attribute".to_string(),
            });
            continue;
        };
        if !text.lines().any(|l| l.trim() == "#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file,
                line: 0,
                lint: "unsafe-fencing",
                message: "first-party crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

/// Pass 6: `arrowd` exits only through its typed error → exit-code mapping.
///
/// The daemon's contract with the harness is a closed set of exit codes
/// (`DaemonError::code`), and its teardown path must run (the journal flush
/// is what makes a `SIGTERM`ed daemon's records recoverable). `fn main` is
/// the one place allowed to turn that typed error into a process exit; a
/// `process::exit(` anywhere else in the binary is an escape hatch that
/// bypasses both.
fn lint_daemon_exit_paths(root: &Path, findings: &mut Vec<Finding>) {
    let path = root.join("crates/arrow-cluster/src/bin/arrowd.rs");
    let file = rel(root, &path).to_path_buf();
    let Ok(text) = std::fs::read_to_string(&path) else {
        findings.push(Finding {
            file,
            line: 0,
            lint: "daemon-exit",
            message: "cannot read the arrowd binary source for the exit-path check".to_string(),
        });
        return;
    };
    let mut depth = 0i32;
    // Depth at which `fn main`'s body opened; None = outside main.
    let mut main_depth: Option<i32> = None;
    for (line_no, line) in non_test_lines(&text) {
        let code = code_of(line);
        if code.trim_start().starts_with("fn main(") {
            main_depth = Some(depth);
        }
        if code.contains("process::exit(") && main_depth.is_none() {
            findings.push(Finding {
                file: file.clone(),
                line: line_no,
                lint: "daemon-exit",
                message: format!(
                    "bare process::exit outside fn main — route through the typed \
                     DaemonError exit codes: {}",
                    line.trim()
                ),
            });
        }
        depth += net_delta(code);
        if let Some(d) = main_depth {
            if depth <= d && code.contains('}') {
                main_depth = None;
            }
        }
    }
}

/// Run every pass; returns all findings (empty = clean tree).
pub fn run(root: &Path) -> Vec<Finding> {
    let allows = load_allowlist(root);
    let mut findings = Vec::new();
    lint_panic_hygiene(root, &allows, &mut findings);
    lint_guard_across_send(root, &allows, &mut findings);
    lint_proto_wire(root, &mut findings);
    lint_metrics_bypass(root, &allows, &mut findings);
    lint_unsafe_fencing(root, &mut findings);
    lint_daemon_exit_paths(root, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_test_lines_skip_test_modules() {
        let src = "fn a() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines: Vec<usize> = non_test_lines(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(lines, vec![1, 2, 3, 8]);
    }

    #[test]
    fn cfg_test_on_single_item_is_skipped() {
        let src = "#[cfg(test)]\nfn helper() {\n    panic!(\"x\");\n}\nfn live() {}\n";
        let lines: Vec<usize> = non_test_lines(src).into_iter().map(|(n, _)| n).collect();
        assert_eq!(lines, vec![5]);
    }

    #[test]
    fn comments_are_not_code() {
        assert_eq!(code_of("x(); // y.unwrap()"), "x(); ");
        assert_eq!(code_of("// all comment"), "");
    }

    #[test]
    fn proto_variants_are_extracted() {
        let src = "pub enum ProtoMsg {\n    Issue {\n        req: RequestId,\n    },\n    Queue { x: u8 },\n    Found,\n}\n";
        assert_eq!(proto_msg_variants(src), vec!["Issue", "Queue", "Found"]);
    }

    #[test]
    fn unsafe_fencing_exempts_compat_and_flags_bare_roots() {
        let dir = std::env::temp_dir().join("xtask-unsafe-fencing-test");
        let _ = std::fs::remove_dir_all(&dir);
        for sub in [
            "crates/good/src",
            "crates/bad/src",
            "crates/compat/shim/src",
        ] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        std::fs::write(
            dir.join("crates/good/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        )
        .unwrap();
        std::fs::write(dir.join("crates/bad/src/lib.rs"), "pub fn f() {}\n").unwrap();
        std::fs::write(dir.join("crates/compat/shim/src/lib.rs"), "pub fn g() {}\n").unwrap();
        let mut findings = Vec::new();
        lint_unsafe_fencing(&dir, &mut findings);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            findings.len(),
            1,
            "only the bare non-compat root is flagged"
        );
        assert!(findings[0].file.ends_with("crates/bad/src/lib.rs"));
        assert_eq!(findings[0].lint, "unsafe-fencing");
    }

    #[test]
    fn daemon_exit_lint_flags_exits_outside_main_only() {
        let dir = std::env::temp_dir().join("xtask-daemon-exit-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/arrow-cluster/src/bin")).unwrap();
        let src = "fn helper() {\n    std::process::exit(7);\n}\n\
                   fn main() -> std::process::ExitCode {\n    std::process::exit(0);\n}\n";
        std::fs::write(dir.join("crates/arrow-cluster/src/bin/arrowd.rs"), src).unwrap();
        let mut findings = Vec::new();
        lint_daemon_exit_paths(&dir, &mut findings);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(findings.len(), 1, "only the helper's exit is flagged");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].lint, "daemon-exit");
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The real check CI runs; keeping it as a test means `cargo test`
        // alone catches regressions too.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let findings = run(root);
        assert!(
            findings.is_empty(),
            "lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
