//! Quickstart: run the arrow protocol on a small tree and print the queuing order.
//!
//! ```text
//! cargo run --release -p arrow-bench --example quickstart
//! ```
//!
//! This walks the scenario of the paper's Figures 1–5: a handful of nodes on a
//! spanning tree issue queuing requests (some of them concurrently), the `queue()`
//! messages chase the link pointers and reverse them, and every request learns its
//! predecessor in a single total order.

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::generators;

fn main() {
    // A 7-node balanced binary tree; the communication graph *is* the tree.
    //        0
    //       / \
    //      1   2
    //     / \ / \
    //    3  4 5  6
    let tree_graph = generators::balanced_binary_tree(7);
    let instance = Instance::tree_only(tree_graph, 0);
    println!("spanning tree: balanced binary tree on 7 nodes, root 0 holds the queue tail");
    println!(
        "tree diameter D = {}, stretch s = {} (G = T)",
        instance.stretch_report().tree_diameter,
        instance.stretch_report().max_stretch
    );
    println!();

    // Three requests: two issued concurrently at t = 0 from distant leaves (they will
    // race along the tree and one will be "deflected" by the other, exactly like
    // messages m1 and m2 in Figures 2-5), one issued later from node 2.
    let schedule = RequestSchedule::from_pairs(&[
        (3, SimTime::ZERO),
        (6, SimTime::ZERO),
        (2, SimTime::from_units(10)),
    ]);
    println!("requests:");
    for r in schedule.requests() {
        println!("  {} issued by node {} at time {}", r.id, r.node, r.time);
    }
    println!();

    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );

    println!("queuing order produced by the arrow protocol:");
    let mut predecessor = "r0 (the virtual request at the root)".to_string();
    for &id in outcome.order.order() {
        let r = outcome.schedule.get(id).unwrap();
        let rec = outcome.order.record_for(id).unwrap();
        println!(
            "  {} (node {}) queued behind {}; node {} learnt this at time {}",
            id, r.node, predecessor, rec.at_node, rec.informed_at
        );
        predecessor = format!("{id}");
    }
    println!();
    println!(
        "total latency (Definition 3.3): {} time units over {} requests",
        outcome.total_latency,
        outcome.request_count()
    );
    println!(
        "queue() messages that crossed a link: {} ({:.2} hops/request)",
        outcome.protocol_messages, outcome.hops_per_request
    );
}
