//! A distributed directory for a mobile shared object (the Aleph-toolkit / Ivy-style
//! use case from the paper's introduction and Section 5.1's related experiments).
//!
//! A single mutable object (here: a document) lives on one node at a time. Nodes that
//! want exclusive write access queue a request with the arrow protocol; the object is
//! then shipped directly from each writer to its successor in the queue. The protocol
//! cost is the queuing latency analysed in the paper; the object transfer itself rides
//! on top (one extra message per handover, not counted as protocol cost — exactly the
//! accounting Section 2 describes).
//!
//! ```text
//! cargo run --release -p arrow-bench --example distributed_directory
//! ```

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::generators;

fn main() {
    // A 16-node random geometric network (e.g. machines in a data centre with
    // distance-dependent latency), with a minimum spanning tree as the directory tree
    // (the choice recommended by Demmer-Herlihy).
    let graph = generators::random_geometric(16, 0.45, 42);
    let tree = netgraph::spanning::build_spanning_tree(&graph, 0, SpanningTreeKind::MinimumWeight);
    let instance = Instance::new(graph, tree);
    let report = instance.stretch_report();
    println!(
        "network: 16-node random geometric graph; directory tree = MST \
         (stretch {:.2}, tree diameter {:.2})",
        report.max_stretch, report.tree_diameter
    );
    println!();

    // Writers ask for the document over time; some bursts are concurrent.
    let writers: Vec<(usize, f64)> = vec![
        (5, 0.0),
        (9, 0.0),
        (14, 0.1),
        (2, 1.5),
        (11, 3.0),
        (11, 3.1),
        (7, 6.0),
        (3, 6.0),
    ];
    let schedule = RequestSchedule::from_pairs(
        &writers
            .iter()
            .map(|&(v, t)| {
                (
                    v,
                    SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
                )
            })
            .collect::<Vec<_>>(),
    );

    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );

    // Replay the queue as object movements: the object starts at the root (node 0)
    // and is shipped from each holder to the next writer in the queue. The distance
    // matrix is the instance's cached one — computed at most once per topology.
    let dm = instance.distances();
    let mut holder = instance.tree().root();
    let mut transfer_cost = 0.0;
    println!("document movements (directory order):");
    for &id in outcome.order.order() {
        let writer = outcome.schedule.get(id).unwrap().node;
        let hop = dm.dist(holder, writer);
        transfer_cost += hop;
        println!(
            "  node {holder:>2} --> node {writer:>2}   (shipping latency {hop:.2}, request {id})"
        );
        holder = writer;
    }
    println!();
    println!(
        "queuing cost (what the paper analyses): total latency {:.2} time units, \
         {} directory messages",
        outcome.total_latency, outcome.protocol_messages
    );
    println!("object shipping cost on top: {transfer_cost:.2} time units");
    println!(
        "the directory never consults a home node: requests only follow tree links, \
         and each holder learns exactly one successor."
    );
}
