//! A distributed directory serving K mobile objects over one spanning tree.
//!
//! One arrow tree, many objects (the Demmer–Herlihy directory setting): every object
//! has its own independent link pointers and its own queue, so requests for
//! different objects never contend with each other — they only share the physical
//! links. Object popularity is Zipf-skewed, the realistic shape for a directory
//! where a few hot documents absorb most of the traffic.
//!
//! The example runs the same K-object scenario twice:
//! 1. on the deterministic simulator, printing each object's validated queue, and
//! 2. on the live runtime (one OS thread per node), with per-object tokens held
//!    concurrently to show the sharded queues really are independent.
//!
//! ```text
//! cargo run --release -p arrow-bench --example multi_object_directory
//! ```

use arrow_core::live::ArrowRuntime;
use arrow_core::prelude::*;
use netgraph::{generators, RootedTree};
use std::sync::Arc;

fn main() {
    let n = 16;
    let k = 4;

    // --- Part 1: simulator ---------------------------------------------------
    let instance = Instance::complete_uniform(n, SpanningTreeKind::BalancedBinary);
    let schedule = workload::zipf_objects(n, k, 1.1, 40, 10.0, 7);
    println!(
        "directory: {n}-node complete graph, balanced binary tree, {k} objects, {} requests",
        schedule.len()
    );
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    println!(
        "simulated: {} per-object queues validated, total latency {:.2} units, {} queue() hops\n",
        outcome.object_count(),
        outcome.total_latency,
        outcome.protocol_messages
    );
    for (obj, order) in &outcome.orders {
        let owners: Vec<String> = order
            .order()
            .iter()
            .map(|&id| format!("n{}", outcome.schedule.get(id).unwrap().node))
            .collect();
        println!(
            "  {obj}: {:>2} requests, owner chain {}",
            order.len(),
            owners.join(" -> ")
        );
    }

    // --- Part 2: live runtime ------------------------------------------------
    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0);
    let rt = Arc::new(ArrowRuntime::spawn_multi(&tree, k));
    let mut joins = Vec::new();
    for v in 0..n {
        let h = rt.handle(v);
        joins.push(std::thread::spawn(move || {
            // Each node works on "its" object (nodes hash onto objects) a few times.
            let obj = ObjectId((v % 4) as u32);
            for _ in 0..5 {
                let req = h.acquire_object(obj);
                // ... exclusive access to the object would happen here ...
                h.release_object(obj, req);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let (queue_msgs, token_msgs, acquisitions) = rt.stats().snapshot();
    println!(
        "\nlive runtime: {acquisitions} acquisitions across {k} objects \
         ({queue_msgs} queue() messages, {token_msgs} token transfers)"
    );
    Arc::try_unwrap(rt).ok().unwrap().shutdown();
    println!("each object's token moved through its own queue — no cross-object waiting.");
}
