//! Distributed mutual exclusion — the application the arrow protocol was invented for
//! (Raymond 1989), running on the real-concurrency runtime: one OS thread per node,
//! std::sync::mpsc channels as the FIFO links, and the exclusion token passed down the
//! distributed queue from each request to its successor.
//!
//! ```text
//! cargo run --release -p arrow-bench --example mutual_exclusion
//! ```

use arrow_core::live::{ArrowRuntime, CriticalSectionLog, DistributedLock};
use netgraph::{generators, RootedTree};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let nodes = 16;
    let rounds_per_node = 25;

    // Spanning tree: balanced binary tree rooted at node 0 (which initially holds the
    // token).
    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(nodes), 0);
    let runtime = Arc::new(ArrowRuntime::spawn(&tree));
    let log = CriticalSectionLog::new();
    let shared_counter = Arc::new(AtomicU64::new(0));

    println!("{nodes} nodes, each entering the critical section {rounds_per_node} times");

    let mut workers = Vec::new();
    for v in 0..nodes {
        let lock = DistributedLock::new(runtime.handle(v), log.clone());
        let counter = Arc::clone(&shared_counter);
        workers.push(std::thread::spawn(move || {
            for _ in 0..rounds_per_node {
                lock.with(|| {
                    // The "protected resource": a counter only safe to update under
                    // mutual exclusion (load + store rather than fetch_add, so any
                    // overlap would lose updates).
                    let old = counter.load(Ordering::SeqCst);
                    std::thread::yield_now();
                    counter.store(old + 1, Ordering::SeqCst);
                });
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }

    let expected = (nodes * rounds_per_node) as u64;
    let observed = shared_counter.load(Ordering::SeqCst);
    let (queue_msgs, token_msgs, acquisitions) = runtime.stats().snapshot();

    println!("critical sections completed: {}", log.len());
    println!("shared counter: {observed} (expected {expected})");
    println!(
        "overlapping critical sections detected: {}",
        if log.find_overlap().is_some() {
            "YES (bug!)"
        } else {
            "none"
        }
    );
    println!("arrow queue() messages: {queue_msgs}");
    println!("token transfer messages: {token_msgs}");
    println!(
        "average queue() messages per acquisition: {:.2}",
        queue_msgs as f64 / acquisitions as f64
    );

    assert_eq!(
        observed, expected,
        "lost updates — mutual exclusion violated"
    );
    assert!(
        log.find_overlap().is_none(),
        "overlapping critical sections"
    );

    Arc::try_unwrap(runtime)
        .ok()
        .expect("all handles dropped")
        .shutdown();
    println!("done.");
}
