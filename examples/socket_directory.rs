//! Demo of the socket tier: a multi-object arrow directory whose peers exchange
//! protocol frames over real loopback TCP connections.
//!
//! ```text
//! cargo run --release --example socket_directory
//! ```
//!
//! Sixteen nodes on a balanced binary spanning tree serve three mobile objects.
//! Worker threads at random nodes acquire and release each object's exclusion
//! token; every `queue()` and token frame crosses a real socket (tree edges for
//! queue() traffic, lazily dialed direct channels for token grants). At shutdown
//! the run's per-object queuing orders are validated with the same machinery the
//! simulator harness uses.

use arrow_core::prelude::ObjectId;
use arrow_net::{NetConfig, NetRuntime};
use desim::SimRng;
use netgraph::{generators, RootedTree};
use std::sync::Arc;

fn main() {
    let n = 16;
    let objects = 3;
    let workers_per_object = 2;
    let acquires_per_worker = 5;

    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0);
    println!("spawning {n} socket peers (balanced binary tree, {objects} objects)...");
    let rt = Arc::new(NetRuntime::spawn_multi(
        &tree,
        objects,
        NetConfig::instant(),
    ));

    let mut rng = SimRng::new(7);
    let mut joins = Vec::new();
    for obj in 0..objects {
        for w in 0..workers_per_object {
            let node = rng.index(n);
            let handle = rt.handle(node);
            joins.push(std::thread::spawn(move || {
                for round in 0..acquires_per_worker {
                    let req = handle.acquire_object(ObjectId(obj as u32));
                    if round == 0 {
                        println!("  object o{obj} worker {w}: node {node} granted {req}");
                    }
                    handle.release_object(ObjectId(obj as u32), req);
                }
            }));
        }
    }
    for j in joins {
        j.join().unwrap();
    }

    let rt = Arc::try_unwrap(rt).ok().expect("all handles dropped");
    let report = rt.shutdown();
    let stats = report.stats();
    println!("\nshutdown complete:");
    println!("  acquisitions:      {}", stats.acquisitions);
    println!("  queue() frames:    {}", stats.queue_frames);
    println!("  token frames:      {}", stats.token_frames);
    println!(
        "  connections:       {} dialed / {} accepted",
        stats.connections_dialed, stats.connections_accepted
    );
    println!(
        "  bytes on the wire: {} ({} frames)",
        stats.bytes_sent, stats.frames_sent
    );

    let orders = report
        .validated_orders()
        .expect("socket run produced an invalid queuing order");
    println!("\nper-object queuing orders (all validated):");
    for (obj, order) in &orders {
        println!(
            "  {obj}: {} requests queued in a valid total order",
            order.len()
        );
    }
}
