//! Totally ordered multicast on top of distributed queuing.
//!
//! One of the applications the paper lists in its introduction (and in Herlihy,
//! Tirthapura, Wattenhofer, "Ordered multicast and distributed swap"): to agree on a
//! single delivery order for multicast messages, each sender first queues a request;
//! the position of the request in the distributed queue *is* the sequence number of
//! the message. No central sequencer is needed, and the queuing cost is exactly what
//! the paper analyses.
//!
//! ```text
//! cargo run --release -p arrow-bench --example ordered_multicast
//! ```

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::generators;
use std::collections::HashMap;

/// A multicast message some node wants to broadcast.
#[derive(Debug, Clone)]
struct Multicast {
    sender: usize,
    payload: String,
}

fn main() {
    // 3 x 4 grid network with a shortest-path spanning tree rooted at the corner.
    let graph = generators::grid(3, 4);
    let tree = netgraph::spanning::build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
    let instance = Instance::new(graph, tree);
    let report = instance.stretch_report();
    println!(
        "network: 3x4 grid, shortest-path spanning tree (stretch {:.2}, diameter {})",
        report.max_stretch, report.tree_diameter
    );
    println!();

    // Each node wants to multicast a message; several of them decide at the same time.
    let messages: Vec<(Multicast, SimTime)> = vec![
        (mc(3, "checkpoint reached"), SimTime::ZERO),
        (mc(7, "new configuration"), SimTime::ZERO),
        (mc(11, "leader heartbeat"), SimTime::ZERO),
        (mc(5, "replica joined"), SimTime::from_units(2)),
        (mc(0, "snapshot started"), SimTime::from_units(4)),
        (mc(9, "snapshot finished"), SimTime::from_units(9)),
    ];

    // Step 1: every sender issues a queuing request for its message.
    let schedule = RequestSchedule::from_pairs(
        &messages
            .iter()
            .map(|(m, t)| (m.sender, *t))
            .collect::<Vec<_>>(),
    );
    // Remember which message belongs to which request (requests are sorted by time,
    // ties by node — mirror that ordering here).
    let mut by_request: HashMap<RequestId, &Multicast> = HashMap::new();
    for r in schedule.requests() {
        let msg = messages
            .iter()
            .map(|(m, t)| (m, *t))
            .find(|(m, t)| m.sender == r.node && *t == r.time)
            .map(|(m, _)| m)
            .expect("every request corresponds to a message");
        by_request.insert(r.id, msg);
    }

    // Step 2: the arrow protocol orders the requests.
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );

    // Step 3: the queue order is the global delivery order.
    println!("global delivery order (identical at every node):");
    for (seq, &id) in outcome.order.order().iter().enumerate() {
        let m = by_request[&id];
        println!(
            "  #{:<2} \"{}\" from node {} (queued as {})",
            seq + 1,
            m.payload,
            m.sender,
            id
        );
    }
    println!();
    println!(
        "ordering cost: total latency {} time units, {} inter-node messages \
         ({:.2} per multicast)",
        outcome.total_latency, outcome.protocol_messages, outcome.hops_per_request
    );
    println!(
        "a centralized sequencer would funnel every message through one node; the arrow \
         queue spreads the ordering work over the tree."
    );
}

fn mc(sender: usize, payload: &str) -> Multicast {
    Multicast {
        sender,
        payload: payload.to_string(),
    }
}
