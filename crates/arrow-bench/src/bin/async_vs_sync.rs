//! Validation of **Section 3.8 / Theorem 3.21**: the arrow protocol's competitive
//! bound also holds under asynchronous message delays.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin async_vs_sync -- [nodes] [requests]
//! ```

use arrow_bench::{async_vs_sync, table::f, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let requests: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seeds: Vec<u64> = (1..=8).collect();

    println!("Theorem 3.21: synchronous vs. asynchronous executions of the arrow protocol");
    println!(
        "({nodes} nodes, {requests} requests, {} random seeds)",
        seeds.len()
    );
    println!();

    let rows = async_vs_sync(nodes, requests, &seeds);
    let mut table = Table::new(&[
        "workload",
        "sync cost",
        "async cost",
        "sync ratio",
        "async ratio",
        "theorem bound",
    ]);
    for row in &rows {
        table.push(vec![
            row.label.clone(),
            f(row.sync_cost),
            f(row.async_cost),
            f(row.sync_ratio),
            f(row.async_ratio),
            f(row.theorem_bound),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Both execution models stay within the same O(s log D) bound; asynchronous delays \
         typically reduce the absolute cost because messages arrive earlier than the \
         worst case the analysis charges for."
    );
}
