//! Validation of **Theorem 3.19 / 3.21**: the measured competitive ratio of the arrow
//! protocol stays below `O(s · log D)` across topologies, spanning trees and workload
//! shapes.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin competitive_ratio -- [nodes] [requests] [seed]
//! ```

use arrow_bench::{ratio_sweep, table::f, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let requests: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    println!("Theorem 3.19 validation: measured competitive ratio vs. the proven bound");
    println!("({nodes} nodes, {requests} requests per workload, seed {seed})");
    println!();

    let rows = ratio_sweep(nodes, requests, seed);
    let mut table = Table::new(&[
        "instance",
        "requests",
        "stretch s",
        "diameter D",
        "arrow cost",
        "opt lower bound",
        "measured ratio",
        "s*log2(D)",
        "theorem bound",
        "ok",
    ]);
    let mut all_ok = true;
    let mut degenerate = 0usize;
    for row in &rows {
        let r = &row.report;
        all_ok &= r.within_bound();
        degenerate += r.opt_bound_degenerate as usize;
        table.push(vec![
            row.label.clone(),
            r.requests.to_string(),
            f(r.stretch),
            f(r.tree_diameter),
            f(r.arrow_cost),
            f(r.opt_lower_bound),
            f(r.ratio),
            f(r.bound_shape),
            f(r.theorem_bound),
            // A degenerate row certifies nothing: its zero lower bound admits no
            // finite ratio, so it is reported as n/a, never as a "yes".
            if r.opt_bound_degenerate {
                "n/a"
            } else if r.certifies_bound() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.render());
    let certified = rows.len() - degenerate;
    println!(
        "Measured ratios within the Theorem 3.19 bound on all {certified} certifiable \
         instances ({degenerate} degenerate skipped): {}",
        if all_ok {
            "yes"
        } else {
            "NO — protocol or analysis bug"
        }
    );
}
