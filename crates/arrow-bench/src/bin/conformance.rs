//! The cross-tier conformance sweep: seeded cases × (sim | sim-centralized |
//! thread | net) × the shared invariant suite, with automatic shrinking and
//! replay files for every failure.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin conformance -- --smoke
//! cargo run --release -p arrow-bench --bin conformance -- --cases 128 --max-nodes 32
//! cargo run --release -p arrow-bench --bin conformance -- --replay conformance-failures/case-42.replay
//! ```
//!
//! Exits non-zero if any case violates any invariant (CI runs `--smoke`).

use arrow_conformance::{run_replay, run_sweep, SweepOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--smoke | --full] [--cases N] [--seed N] [--max-nodes N] \
         [--max-requests N] [--no-thread] [--no-net] [--no-shrink] [--out DIR] \
         [--replay FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = SweepOptions::smoke();
    opts.replay_dir = Some(PathBuf::from("conformance-failures"));
    let mut replay_file: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            // Profile switches preserve an already-chosen --out directory (flag
            // order must not silently change where replay files land).
            "--smoke" => {
                let dir = opts.replay_dir.clone();
                opts = SweepOptions::smoke();
                opts.replay_dir = dir;
            }
            "--full" => {
                let dir = opts.replay_dir.clone();
                opts = SweepOptions::full();
                opts.replay_dir = dir;
            }
            "--cases" => opts.cases = num(&mut args),
            "--seed" => {
                opts.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-nodes" => opts.max_nodes = num(&mut args),
            "--max-requests" => opts.max_requests = num(&mut args),
            "--no-thread" => opts.include_thread = false,
            "--no-net" => opts.include_net = false,
            "--no-shrink" => opts.shrink_failures = false,
            "--out" => {
                opts.replay_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--replay" => replay_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    if let Some(path) = replay_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match run_replay(&text, &opts) {
            Err(e) => {
                eprintln!("bad replay file: {e}");
                return ExitCode::from(2);
            }
            Ok((tiers, violations)) => {
                println!("replay {} (tiers: {})", path.display(), tiers.join(", "));
                if violations.is_empty() {
                    println!("PASS: no invariant violations");
                    return ExitCode::SUCCESS;
                }
                for v in &violations {
                    println!("VIOLATION {v}");
                }
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "conformance sweep: {} cases, master seed {:#x}, max {} nodes / {} requests, tiers: sim, sim-centralized{}{}",
        opts.cases,
        opts.master_seed,
        opts.max_nodes,
        opts.max_requests,
        if opts.include_thread { ", thread" } else { "" },
        if opts.include_net { ", net" } else { "" },
    );
    let report = run_sweep(&opts);
    println!(
        "ran {} cases / {} requests; per-tier: {}",
        report.cases,
        report.total_requests,
        report
            .tier_counts
            .iter()
            .map(|(t, c)| format!("{t}={c}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    if report.all_passed() {
        println!("PASS: zero invariant violations across all tiers");
        return ExitCode::SUCCESS;
    }
    for failure in &report.failures {
        println!(
            "FAIL case {} (seed {}, {} requests after shrinking):",
            failure.index,
            failure.case.spec.seed,
            failure.case.requests.len()
        );
        for v in &failure.violations {
            println!("  {v}");
        }
        if let Some(path) = &failure.replay_path {
            println!(
                "  replay: cargo run --release -p arrow-bench --bin conformance -- --replay {path}"
            );
        }
    }
    ExitCode::FAILURE
}
