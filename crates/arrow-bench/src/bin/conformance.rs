//! The cross-tier conformance sweep: seeded cases × (sim | sim-centralized |
//! thread | net) × the shared invariant suite, with automatic shrinking and
//! replay files for every failure.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin conformance -- --smoke
//! cargo run --release -p arrow-bench --bin conformance -- --cases 128 --max-nodes 32
//! cargo run --release -p arrow-bench --bin conformance -- --replay conformance-failures/case-42.replay
//! ```
//!
//! Exits non-zero if any case violates any invariant (CI runs `--smoke`).

use arrow_cluster::{locate_arrowd, ClusterDriver};
use arrow_conformance::{
    invariants, run_replay, run_sweep, CaseSpec, GraphKind, SweepOptions, WorkloadKind,
};
use arrow_core::prelude::{Driver, ProtocolKind, SyncMode};
use desim::SimConfig;
use netgraph::spanning::SpanningTreeKind;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--smoke | --full] [--cases N] [--seed N] [--max-nodes N] \
         [--max-requests N] [--faults] [--fault-episodes N] [--no-thread] [--no-net] \
         [--no-cluster] [--no-shrink] [--out DIR] [--trace [DIR]] [--replay FILE]\n(try --help \
         for the replay file format)"
    );
    std::process::exit(2);
}

fn help() -> ! {
    println!(
        "conformance — cross-tier differential sweep for the arrow protocol

USAGE:
    conformance [--smoke | --full] [OPTIONS]
    conformance --replay FILE

PROFILES:
    --smoke              32 small fixed-seed cases, every tier (the CI profile; default)
    --full               256 larger cases, every tier

OPTIONS:
    --cases N            number of generated cases
    --seed N             master seed (case i derives from seed + i)
    --max-nodes N        per-case node budget
    --max-requests N     per-case request budget
    --faults             inject a seeded fault schedule (crashes, restarts, link
                         drops) into every case and check the churn contract
                         instead of the fault-free suite (2 episodes per case)
    --fault-episodes N   like --faults with an explicit per-case episode budget
    --no-thread          skip the thread tier
    --no-net             skip the socket tier
    --no-cluster         skip the process-cluster tier (the small fixed-seed
                         subset replayed across real arrowd processes after
                         the sweep; needs the arrowd binary —
                         `cargo build --release -p arrow-cluster`)
    --no-shrink          report failures without shrinking them first
    --out DIR            where failing cases' replay files go
                         (default: conformance-failures/)
    --trace [DIR]        re-run every fault-free case's sim tier with recording
                         probes, validate that the causal trace covers every
                         issued request (complete hop chains whose path cost
                         matches the validated order's c_A adjacency), and write
                         Chrome trace-event JSON (case-<seed>.trace.json,
                         Perfetto-loadable) into DIR
                         (default: conformance-traces/)
    --replay FILE        re-run one previously written replay file
    --help               this text

REPLAY FILES:
    Every failing case is shrunk (requests, then nodes, while the failure still
    reproduces) and written as a line-based text file that pins the exact
    topology and request list:

        arrow-conformance-replay v1
        seed 42                      derivation seed (labels the case)
        nodes 12                     node budget handed to the graph builder
        graph complete               complete|path|cycle|grid|random-tree|erdos-renyi
        tree balanced-binary         shortest-path|minimum-weight|star|
                                     balanced-binary|minimum-communication
        objects 3                    directory objects (req lines name obj < K)
        requests 24                  number of req lines that follow (exact)
        workload zipf                burst|poisson|uniform|zipf|sequential
        sync async                   sync|async timing model
        async-lo 0.05                async delay floor in [0, 1]
        faults 2                     number of fault lines that follow (omitted
                                     entirely for fault-free cases)
        fault 3 crash 5              one per fault event: tick, then
                                     crash|restart|partition NODE or
                                     drop|restore U V
        req 7 1500000 2              one per request: node, time in subticks, object

    Reproduce any failure with:
        conformance --replay conformance-failures/case-<seed>.replay

    Full grammar and field semantics: the arrow-conformance crate docs
    (module `case`)."
    );
    std::process::exit(0);
}

/// The process-cluster tier's fixed-seed conformance subset: a few small
/// cases (≤ 8 nodes, ≤ 12 requests — every case spawns that many real OS
/// processes) replayed through [`ClusterDriver`] and held to the same
/// invariant suite as the in-process tiers. The generated sweep stays on the
/// cheap tiers; this pins the cross-tier agreement contract down to process
/// isolation without multiplying the sweep's cost by a process launch.
fn cluster_subset_specs() -> Vec<CaseSpec> {
    let base = CaseSpec {
        seed: 0,
        nodes: 8,
        graph: GraphKind::Complete,
        tree: SpanningTreeKind::BalancedBinary,
        objects: 2,
        requests: 12,
        workload: WorkloadKind::Zipf,
        sync: SyncMode::Synchronous,
        async_lo: SimConfig::DEFAULT_ASYNC_LO,
    };
    vec![
        CaseSpec { seed: 11, ..base },
        CaseSpec {
            seed: 23,
            nodes: 6,
            graph: GraphKind::RandomTree,
            tree: SpanningTreeKind::ShortestPath,
            objects: 1,
            requests: 10,
            workload: WorkloadKind::Sequential,
            ..base
        },
    ]
}

/// Run the cluster subset; returns `(cases_run, requests_run, violations)`.
fn run_cluster_subset(driver: &ClusterDriver) -> (usize, usize, Vec<invariants::Violation>) {
    let mut violations = Vec::new();
    let mut requests = 0usize;
    let specs = cluster_subset_specs();
    let cases = specs.len();
    for spec in specs {
        let instance = spec.build_instance();
        let schedule = spec.build_schedule(instance.node_count());
        let expected = invariants::request_multiset(&schedule);
        let cfg = spec.run_config(ProtocolKind::Arrow);
        requests += schedule.len();
        match driver.run(&instance, &schedule, &cfg) {
            Err(e) => violations.push(invariants::Violation {
                invariant: arrow_conformance::InvariantKind::RunFailed,
                tier: "cluster".to_string(),
                detail: format!("seed {}: {e}", spec.seed),
            }),
            Ok(outcome) => {
                let n = instance.node_count();
                violations.extend(invariants::check_exactly_once("cluster", &outcome));
                violations.extend(invariants::check_token_conservation("cluster", &outcome));
                violations.extend(invariants::check_message_sanity("cluster", &outcome, n));
                violations.extend(invariants::check_cross_tier("cluster", &expected, &outcome));
            }
        }
    }
    (cases, requests, violations)
}

fn main() -> ExitCode {
    let mut opts = SweepOptions::smoke();
    opts.replay_dir = Some(PathBuf::from("conformance-failures"));
    let mut replay_file: Option<PathBuf> = None;
    let mut include_cluster = true;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--help" | "-h" => help(),
            // Profile switches preserve already-chosen --out/--trace directories
            // (flag order must not silently change where artifacts land).
            "--smoke" => {
                let (dir, traces) = (opts.replay_dir.clone(), opts.trace_dir.clone());
                opts = SweepOptions::smoke();
                opts.replay_dir = dir;
                opts.trace_dir = traces;
            }
            "--full" => {
                let (dir, traces) = (opts.replay_dir.clone(), opts.trace_dir.clone());
                opts = SweepOptions::full();
                opts.replay_dir = dir;
                opts.trace_dir = traces;
            }
            "--cases" => opts.cases = num(&mut args),
            "--seed" => {
                opts.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-nodes" => opts.max_nodes = num(&mut args),
            "--max-requests" => opts.max_requests = num(&mut args),
            "--faults" => opts.fault_episodes = 2,
            "--fault-episodes" => opts.fault_episodes = num(&mut args),
            "--no-thread" => opts.include_thread = false,
            "--no-net" => opts.include_net = false,
            "--no-cluster" => include_cluster = false,
            "--no-shrink" => opts.shrink_failures = false,
            "--out" => {
                opts.replay_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            // Optional value: `--trace` alone uses the default directory, so the
            // CI invocation stays `conformance --smoke --trace`.
            "--trace" => {
                let dir = match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next().unwrap(),
                    _ => "conformance-traces".to_string(),
                };
                opts.trace_dir = Some(PathBuf::from(dir));
            }
            "--replay" => replay_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    if let Some(path) = replay_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match run_replay(&text, &opts) {
            Err(e) => {
                eprintln!("bad replay file: {e}");
                return ExitCode::from(2);
            }
            Ok((tiers, violations)) => {
                println!("replay {} (tiers: {})", path.display(), tiers.join(", "));
                if violations.is_empty() {
                    println!("PASS: no invariant violations");
                    return ExitCode::SUCCESS;
                }
                for v in &violations {
                    println!("VIOLATION {v}");
                }
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "conformance sweep: {} cases, master seed {:#x}, max {} nodes / {} requests, tiers: sim{}{}{}",
        opts.cases,
        opts.master_seed,
        opts.max_nodes,
        opts.max_requests,
        if opts.fault_episodes == 0 {
            ", sim-centralized".to_string()
        } else {
            format!(" (churn contract, ≤{} fault episodes/case)", opts.fault_episodes)
        },
        if opts.include_thread { ", thread" } else { "" },
        if opts.include_net { ", net" } else { "" },
    );
    let report = run_sweep(&opts);

    // The process-cluster tier: a fixed-seed subset replayed across real
    // arrowd processes (skipped for fault sweeps — the cluster has its own
    // process-granularity churn coverage in tests and the bench).
    let mut cluster_violations = Vec::new();
    if include_cluster && opts.fault_episodes == 0 {
        let arrowd = match locate_arrowd() {
            Ok(path) => path,
            Err(e) => {
                eprintln!("error: {e}\n(or skip the process tier with --no-cluster)");
                return ExitCode::from(2);
            }
        };
        let (cases, requests, violations) = run_cluster_subset(&ClusterDriver::new(arrowd));
        println!(
            "cluster subset: {cases} fixed-seed cases / {requests} requests across real arrowd \
             processes; {} violations",
            violations.len()
        );
        cluster_violations = violations;
    }

    if let Some(dir) = &opts.trace_dir {
        println!(
            "causal traces: {}/case-<seed>.trace.json (probed sim tier, Chrome trace-event JSON)",
            dir.display()
        );
    }
    println!(
        "ran {} cases / {} requests; per-tier: {}",
        report.cases,
        report.total_requests,
        report
            .tier_counts
            .iter()
            .map(|(t, c)| format!("{t}={c}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    if report.fault_events > 0 {
        println!(
            "injected {} fault events; observed {} token regenerations across tiers",
            report.fault_events, report.token_regenerations,
        );
    }
    if report.all_passed() && cluster_violations.is_empty() {
        println!("PASS: zero invariant violations across all tiers");
        return ExitCode::SUCCESS;
    }
    for v in &cluster_violations {
        println!("FAIL cluster subset: {v}");
    }
    for failure in &report.failures {
        println!(
            "FAIL case {} (seed {}, {} requests after shrinking):",
            failure.index,
            failure.case.spec.seed,
            failure.case.requests.len()
        );
        for v in &failure.violations {
            println!("  {v}");
        }
        if let Some(path) = &failure.replay_path {
            println!(
                "  replay: cargo run --release -p arrow-bench --bin conformance -- --replay {path}"
            );
        }
    }
    ExitCode::FAILURE
}
