//! Exhaustive bounded model checking of the arrow protocol core.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin modelcheck -- --smoke
//! cargo run --release -p arrow-bench --bin modelcheck -- --bound 5 --objects 2 --requests 4
//! cargo run --release -p arrow-bench --bin modelcheck -- --bound 3 --no-reduce --no-dedup
//! ```
//!
//! For every spanning tree up to `--bound` nodes this explores *all* request
//! placements, message interleavings and crash/recovery schedules within the
//! budgets, checking the safety invariants at every state and the quiescence
//! invariants at every drained state. A violation prints the transition trace
//! and is exported as a conformance replay file (`conformance --replay` runs
//! the same scenario through the live tiers). Exits non-zero on violation.

use arrow_model::{
    enumerate_trees, export_replay, representative_trees, sweep, BugSwitch, ExploreConfig,
    ExploreStats,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: modelcheck [--smoke] [--bound N] [--objects K] [--requests R] [--crashes C] \
         [--abandons A] [--all-trees] [--no-reduce] [--no-dedup] [--max-transitions N] \
         [--bug orphaned-grant|stale-frame] [--out DIR]"
    );
    std::process::exit(2);
}

fn help() -> ! {
    println!(
        "modelcheck — exhaustive bounded model checker for the arrow protocol core

USAGE:
    modelcheck [OPTIONS]

PROFILES:
    Crash episodes dominate the state-space size (every recovery interleaving
    multiplies the space), so the built-in profiles pair one deep fault-free
    sweep with shallower churn sweeps instead of one giant product:

    --smoke              the CI profile (seconds):
                           fault-free  n<=4, 2 objects, 3 requests
                           waiter-loss n<=3, 1 object,  3 requests, 1 abandon
                           churn       n<=4, 1 object,  2 requests, 1 episode
    (default)            the full profile (about two minutes):
                           fault-free  n<=5, 2 objects, 4 requests
                           waiter-loss n<=3, 1 object,  3 requests, 1 abandon
                           churn       n<=4, 1 object,  2 requests, 1 episode
                           churn       n<=3, 2 objects, 3 requests, 1 episode

    Passing any of --bound/--objects/--requests/--crashes/--abandons instead
    runs a single custom sweep with that budget (unset values default to
    4/1/2/1/0).

OPTIONS:
    --bound N            largest tree size to verify (>= 2)
    --objects K          directory objects per scenario
    --requests R         total request budget per scenario (budgets subsume
                         smaller ones: quiescence is checked at every drained
                         state whatever budget remains)
    --crashes C          crash/restart episode budget per scenario
    --abandons A         waiter-abandonment budget (timed-out acquires whose
                         reply channel vanishes; the orphaned-grant trigger)
    --all-trees          verify every labelled tree (n^(n-2) per size) instead
                         of one representative per rooted-isomorphism class
    --no-reduce          disable sleep-set partial-order reduction
    --no-dedup           disable canonical-hash state deduplication
    --max-transitions N  per-scenario transition cap (guard for --no-dedup)
    --bug WHICH          re-introduce a fixed historical bug and show the
                         checker catching it (orphaned-grant | stale-frame)
    --out DIR            where counterexample replay files go
                         (default: modelcheck-failures/)
    --help               this text"
    );
    std::process::exit(0);
}

/// One sweep the run will perform: a label plus its budgets.
struct Run {
    label: &'static str,
    bound: usize,
    objects: usize,
    requests: usize,
    crashes: usize,
    abandons: usize,
}

struct Options {
    bound: Option<usize>,
    objects: Option<usize>,
    requests: Option<usize>,
    crashes: Option<usize>,
    abandons: Option<usize>,
    smoke: bool,
    all_trees: bool,
    config: ExploreConfig,
    out: PathBuf,
}

impl Options {
    /// Resolve the CLI flags into the list of sweeps to run.
    fn runs(&self) -> Vec<Run> {
        let custom = self.bound.is_some()
            || self.objects.is_some()
            || self.requests.is_some()
            || self.crashes.is_some()
            || self.abandons.is_some();
        if custom {
            return vec![Run {
                label: "custom",
                bound: self.bound.unwrap_or(4),
                objects: self.objects.unwrap_or(1),
                requests: self.requests.unwrap_or(2),
                crashes: self.crashes.unwrap_or(1),
                abandons: self.abandons.unwrap_or(0),
            }];
        }
        let mut runs = vec![
            Run {
                label: "fault-free",
                bound: if self.smoke { 4 } else { 5 },
                objects: 2,
                requests: if self.smoke { 3 } else { 4 },
                crashes: 0,
                abandons: 0,
            },
            Run {
                label: "waiter-loss",
                bound: 3,
                objects: 1,
                requests: 3,
                crashes: 0,
                abandons: 1,
            },
            Run {
                label: "churn",
                bound: 4,
                objects: 1,
                requests: 2,
                crashes: 1,
                abandons: 0,
            },
        ];
        if !self.smoke {
            runs.push(Run {
                label: "churn-multiobj",
                bound: 3,
                objects: 2,
                requests: 3,
                crashes: 1,
                abandons: 0,
            });
        }
        runs
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        bound: None,
        objects: None,
        requests: None,
        crashes: None,
        abandons: None,
        smoke: false,
        all_trees: false,
        config: ExploreConfig::default(),
        out: PathBuf::from("modelcheck-failures"),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => help(),
            "--smoke" => opts.smoke = true,
            "--bound" => opts.bound = Some(parse(&value(&mut args, "--bound"), "--bound")),
            "--objects" => opts.objects = Some(parse(&value(&mut args, "--objects"), "--objects")),
            "--requests" => {
                opts.requests = Some(parse(&value(&mut args, "--requests"), "--requests"))
            }
            "--crashes" => opts.crashes = Some(parse(&value(&mut args, "--crashes"), "--crashes")),
            "--abandons" => {
                opts.abandons = Some(parse(&value(&mut args, "--abandons"), "--abandons"))
            }
            "--all-trees" => opts.all_trees = true,
            "--no-reduce" => opts.config.reduce = false,
            "--no-dedup" => opts.config.dedup = false,
            "--max-transitions" => {
                opts.config.max_transitions =
                    parse(&value(&mut args, "--max-transitions"), "--max-transitions")
            }
            "--bug" => {
                opts.config.bug = match value(&mut args, "--bug").as_str() {
                    "orphaned-grant" => BugSwitch::OrphanedGrantWedge,
                    "stale-frame" => BugSwitch::StaleFrameAccept,
                    other => {
                        eprintln!("unknown --bug {other:?} (orphaned-grant | stale-frame)");
                        usage();
                    }
                }
            }
            "--out" => opts.out = PathBuf::from(value(&mut args, "--out")),
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage();
            }
        }
    }
    if opts.bound.is_some_and(|b| b < 2) || opts.objects == Some(0) {
        eprintln!("--bound must be >= 2 and --objects >= 1");
        usage();
    }
    opts
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {s:?}");
        usage()
    })
}

fn main() -> ExitCode {
    let opts = parse_args();
    println!(
        "modelcheck: dedup={} reduce={} bug={:?} trees={}",
        opts.config.dedup,
        opts.config.reduce,
        opts.config.bug,
        if opts.all_trees {
            "all labellings"
        } else {
            "isomorphism representatives"
        },
    );

    let start = Instant::now();
    let mut total = ExploreStats::default();
    let mut scenarios = 0u64;
    for run in opts.runs() {
        println!(
            "sweep {}: trees up to {} nodes, {} object(s), {} request(s), {} crash episode(s), \
             {} abandon(s)",
            run.label, run.bound, run.objects, run.requests, run.crashes, run.abandons
        );
        for n in 2..=run.bound {
            let trees = if opts.all_trees {
                enumerate_trees(n)
            } else {
                representative_trees(n)
            };
            let count = trees.len();
            let t0 = Instant::now();
            let outcome = sweep(
                trees,
                run.objects,
                run.requests,
                run.crashes,
                run.abandons,
                &opts.config,
                |_, _| {},
            );
            scenarios += outcome.scenarios;
            total.states += outcome.stats.states;
            total.transitions += outcome.stats.transitions;
            total.deduped += outcome.stats.deduped;
            total.sleep_pruned += outcome.stats.sleep_pruned;
            total.quiescent += outcome.stats.quiescent;
            total.max_depth = total.max_depth.max(outcome.stats.max_depth);
            total.capped |= outcome.stats.capped;
            println!(
                "  n={n}: {count} tree(s), {} in {:.2?}",
                outcome.stats,
                t0.elapsed()
            );

            if let Some((scenario, cx)) = outcome.failure {
                println!("\nVIOLATION in a {n}-node {} scenario:", run.label);
                print!("{cx}");
                match export_replay(&scenario, &cx) {
                    Some(text) => {
                        if let Err(e) = std::fs::create_dir_all(&opts.out) {
                            eprintln!("cannot create {}: {e}", opts.out.display());
                            return ExitCode::FAILURE;
                        }
                        let path = opts.out.join(format!("model-n{n}-counterexample.replay"));
                        match std::fs::write(&path, text) {
                            Ok(()) => {
                                println!("counterexample replay written to {}", path.display())
                            }
                            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                        }
                    }
                    None => {
                        eprintln!("no random-tree seed reproduces this tree (replay not written)")
                    }
                }
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "\nPASS: {scenarios} scenario(s) exhaustively verified in {:.2?}",
        start.elapsed()
    );
    println!("  {total}");
    if total.states > 0 {
        // How much smaller the search was than what the exploration actually
        // attempted: every dedup/sleep skip cuts an entire subtree, so this
        // ratio understates the true pruning, but it is measured, not modeled.
        let attempted = total.transitions + total.deduped + total.sleep_pruned;
        println!(
            "  prune ratio (attempted/expanded, lower bound): {:.2}x",
            attempted as f64 / total.states as f64
        );
    }
    if total.capped {
        eprintln!("WARNING: at least one scenario hit the transition cap; coverage is partial");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
