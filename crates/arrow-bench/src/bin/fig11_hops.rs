//! Reproduction of **Figure 11**: the average number of inter-processor messages
//! ("hops") per queuing operation of the arrow protocol under the closed-loop
//! workload of Figure 10.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin fig11_hops -- [requests_per_node] [service_time]
//! ```

use arrow_bench::{figure_11, table::f, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests_per_node: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let service_time: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let processor_counts = [2, 4, 8, 16, 24, 32, 48, 64, 76];

    println!(
        "Figure 11: average hops per queuing request, {requests_per_node} enqueues per processor"
    );
    println!();

    let rows = figure_11(&processor_counts, requests_per_node, service_time);
    let mut table = Table::new(&[
        "processors",
        "arrow hops/request",
        "centralized msgs/request",
        "tree depth (log2 n)",
    ]);
    for row in &rows {
        table.push(vec![
            row.processors.to_string(),
            f(row.arrow_hops_per_request),
            f(row.centralized_hops_per_request),
            f((row.processors as f64).log2().ceil()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's observation: under high contention most requests find their predecessor \
         locally or nearby, so arrow averages around (or below) one hop per request, far \
         below the tree depth."
    );
}
