//! Regenerate the committed simulator-throughput baseline.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin bench_baseline -- [out_path]
//! ```
//!
//! Runs the canonical throughput kernel (512-node complete graph, balanced binary
//! spanning tree, 10,000 uniform-random requests, arrow analysis mode) a few times,
//! keeps the fastest run, and writes `BENCH_sim_throughput.json` (default: the
//! current directory — run from the repository root to refresh the committed file).

use arrow_bench::meta::BenchMeta;
use arrow_bench::throughput::measure_sim_throughput;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());

    let nodes = 512;
    let requests = 10_000;
    let seed = 1;

    // Warm-up, then best-of-3: the baseline records peak sustainable throughput.
    let _ = measure_sim_throughput(nodes, requests, seed);
    let best = (0..3)
        .map(|_| measure_sim_throughput(nodes, requests, seed))
        .max_by(|a, b| {
            a.events_per_sec
                .partial_cmp(&b.events_per_sec)
                .expect("throughput is finite")
        })
        .expect("at least one measurement");

    println!(
        "sim throughput: {} nodes, {} requests -> {} events in {:.3}s = {:.0} events/sec",
        best.nodes, best.requests, best.sim_events, best.wall_seconds, best.events_per_sec
    );
    let doc = BenchMeta::capture().inject(&best.to_json());
    std::fs::write(&out_path, doc).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
