//! Reproduction of **Figure 10**: total latency of the arrow protocol versus the
//! centralized protocol for a closed-loop workload, as the number of processors grows.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin fig10_latency -- [requests_per_node] [service_time]
//! ```
//!
//! The paper uses 100,000 enqueues per processor on an IBM SP2; the default here is
//! 2,000 per processor, which reaches the same steady state (the reported quantities
//! are per-request). Pass `100000` as the first argument to run the full-size
//! experiment.

use arrow_bench::{figure_10, table::f, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests_per_node: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let service_time: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    // The paper sweeps 2..76 processors on the SP2.
    let processor_counts = [2, 4, 8, 16, 24, 32, 48, 64, 76];

    println!("Figure 10: total latency for {requests_per_node} enqueues per processor");
    println!("(complete graph, balanced binary spanning tree, local service time {service_time})");
    println!();

    let rows = figure_10(&processor_counts, requests_per_node, service_time);
    let mut table = Table::new(&[
        "processors",
        "arrow makespan",
        "centralized makespan",
        "arrow mean latency",
        "centralized mean latency",
        "centralized/arrow",
    ]);
    for row in &rows {
        table.push(vec![
            row.processors.to_string(),
            f(row.arrow_makespan),
            f(row.centralized_makespan),
            f(row.arrow_mean_latency),
            f(row.centralized_mean_latency),
            f(row.centralized_makespan / row.arrow_makespan.max(f64::MIN_POSITIVE)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's observation: the centralized protocol slows down linearly with the \
         system size while arrow stays nearly constant."
    );
}
