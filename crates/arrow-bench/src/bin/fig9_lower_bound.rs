//! Reproduction of **Figure 9 / Theorem 4.1**: the adversarial request pattern on a
//! path that forces the arrow protocol to pay `k · D` while the optimal offline
//! ordering pays only `O(D)`, yielding a competitive ratio of `Ω(log D / log log D)`.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin fig9_lower_bound -- [max_diameter]
//! ```

use arrow_bench::{figure_9, table::f, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_diameter: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let mut diameters = Vec::new();
    let mut d = 16;
    while d <= max_diameter {
        diameters.push(d);
        d *= 2;
    }

    println!("Figure 9 / Theorem 4.1: adversarial lower-bound instances on a path (G = T)");
    println!("(the paper's example instance uses D = 64, k = 6)");
    println!();

    let rows = figure_9(&diameters);
    let mut table = Table::new(&[
        "D",
        "k",
        "requests",
        "predicted arrow (kD)",
        "measured arrow",
        "opt lower bound",
        "measured ratio",
        "log D / log log D",
    ]);
    for row in &rows {
        table.push(vec![
            row.diameter.to_string(),
            row.layers.to_string(),
            row.requests.to_string(),
            f(row.predicted_arrow_cost),
            f(row.measured_arrow_cost),
            f(row.opt_lower_bound),
            f(row.ratio),
            f(row.predicted_ratio_shape),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's observation: arrow's cost tracks k·D while the optimum stays O(D), so \
         the ratio grows with the diameter like log D / log log D."
    );
}
