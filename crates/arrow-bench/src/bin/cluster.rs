//! Regenerate the committed process-tier (cluster) throughput baseline.
//!
//! ```text
//! cargo build --release -p arrow-cluster          # the arrowd binary
//! cargo run --release -p arrow-bench --bin cluster -- [--smoke] [out_path]
//! ```
//!
//! Default (baseline) profile — the acceptance scenario:
//!
//! * **closed loop** — 16 `arrowd` OS processes on a balanced binary spanning
//!   tree, K = 4 objects under a Zipf-shaped assignment (object 0 hottest),
//!   3,600 acquires total, every per-object queuing order validated across the
//!   sixteen process-local journals;
//! * **churn** — the same 3,600-acquire scenario with fault tolerance on: one
//!   non-root daemon is `SIGKILL`ed mid-run (a real dead PID), the harness
//!   broadcasts the detection epoch and restarts it, and the 15 survivors must
//!   complete all 3,375 of their acquires (≥ the 3,200-acquire floor) with the
//!   churn order contract intact.
//!
//! Both rows report wall-clock throughput, grant-latency percentiles from the
//! merged per-process `AcquireNanos` histogram, and per-process CPU seconds
//! and peak RSS scraped from `/proc/<pid>` — numbers the in-process tiers
//! cannot honestly produce, because there every "node" shares one address
//! space. Writes `BENCH_cluster_throughput.json` (default: the current
//! directory — run from the repository root to refresh the committed file).
//!
//! `--smoke` runs a reduced profile (4 processes, K = 2, closed loop only) and
//! writes no file — CI uses it to catch process-tier regressions in seconds.
//!
//! `--demo` is the README's one-command walkthrough: 8 `arrowd` processes,
//! K = 4 Zipf objects, with the per-process `/proc` accounting printed as a
//! table. Also writes no file.

use arrow_bench::meta::BenchMeta;
use arrow_cluster::{locate_arrowd, Cluster, ClusterConfig, ClusterReport, WorkOutcome};
use arrow_core::prelude::ObjectId;
use arrow_trace::HistMetric;
use netgraph::{generators, NodeId, RootedTree};
use std::time::{Duration, Instant};

fn tree(n: usize) -> RootedTree {
    RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
}

/// Zipf-shaped per-(node, object) assignment: object `o` gets
/// `⌈base / (o + 1)⌉` acquires per node, so the hottest object carries the
/// contention the way directory workloads actually concentrate it.
fn zipf_work(n: usize, k: usize, base: usize) -> Vec<(NodeId, ObjectId, usize)> {
    let mut work = Vec::new();
    for v in 0..n {
        for o in 0..k {
            work.push((v, ObjectId(o as u32), base.div_ceil(o + 1)));
        }
    }
    work
}

/// One measured cluster run, ready for a JSON row.
struct ClusterRow {
    workload: &'static str,
    processes: usize,
    objects: usize,
    /// Acquires granted (journaled) across the whole cluster.
    acquisitions: usize,
    wall_seconds: f64,
    acquisitions_per_sec: f64,
    acquire_p50_ms: f64,
    acquire_p99_ms: f64,
    queue_frames: u64,
    token_frames: u64,
    token_regenerations: usize,
    valid_orders: usize,
    per_process: Vec<ProcRow>,
}

struct ProcRow {
    node: NodeId,
    cpu_seconds: f64,
    rss_kb: u64,
    peak_rss_kb: u64,
}

fn proc_rows(report: &ClusterReport) -> Vec<ProcRow> {
    report
        .per_node()
        .iter()
        .filter_map(|nr| {
            let u = nr.usage.as_ref()?;
            Some(ProcRow {
                node: nr.node,
                cpu_seconds: u.cpu_seconds(),
                rss_kb: u.rss_kb,
                peak_rss_kb: u.peak_rss_kb,
            })
        })
        .collect()
}

fn row_from_report(
    workload: &'static str,
    n: usize,
    k: usize,
    wall: Duration,
    valid_orders: usize,
    report: &ClusterReport,
) -> ClusterRow {
    let acquisitions = report.metrics().get(arrow_trace::Metric::Acquisitions) as usize;
    let lat = report.metrics().hist(HistMetric::AcquireNanos);
    let to_ms = |nanos: Option<u64>| nanos.unwrap_or(0) as f64 / 1e6;
    let wall_seconds = wall.as_secs_f64();
    ClusterRow {
        workload,
        processes: n,
        objects: k,
        acquisitions,
        wall_seconds,
        acquisitions_per_sec: acquisitions as f64 / wall_seconds.max(1e-9),
        acquire_p50_ms: to_ms(lat.quantile(0.50)),
        acquire_p99_ms: to_ms(lat.quantile(0.99)),
        queue_frames: report.metrics().get(arrow_trace::Metric::QueueFrames),
        token_frames: report.metrics().get(arrow_trace::Metric::TokenFrames),
        token_regenerations: report.token_regenerations(),
        valid_orders,
        per_process: proc_rows(report),
    }
}

fn print_row(r: &ClusterRow) {
    println!(
        "  {:>11} {:>2} procs K={}: {:>5} acquisitions, {:.3}s, {:>7.0} acq/sec, \
         p50 {:.2} ms, p99 {:.2} ms, {} regenerations, {} valid orders",
        r.workload,
        r.processes,
        r.objects,
        r.acquisitions,
        r.wall_seconds,
        r.acquisitions_per_sec,
        r.acquire_p50_ms,
        r.acquire_p99_ms,
        r.token_regenerations,
        r.valid_orders
    );
    let cpu: f64 = r.per_process.iter().map(|p| p.cpu_seconds).sum();
    let peak = r
        .per_process
        .iter()
        .map(|p| p.peak_rss_kb)
        .max()
        .unwrap_or(0);
    println!(
        "  {:>11} per-process: {:.2}s CPU total across {} daemons, peak RSS {} KiB",
        "",
        cpu,
        r.per_process.len(),
        peak
    );
}

/// Fault-free closed loop: every daemon completes its whole assignment, every
/// per-object order must assemble into one unbroken chain across journals.
fn run_closed_loop(arrowd: &std::path::Path, n: usize, k: usize, base: usize) -> ClusterRow {
    let cfg = ClusterConfig::new(arrowd, tree(n), k);
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");
    let work = zipf_work(n, k, base);
    let total: usize = work.iter().map(|&(_, _, c)| c).sum();

    let t0 = Instant::now();
    cluster
        .start_workload(&work, Duration::from_secs(60), 1)
        .expect("workload starts");
    for (v, outcome) in cluster.await_done(Duration::from_secs(600)) {
        assert!(
            matches!(outcome, WorkOutcome::Done { failed: 0, .. }),
            "node {v} must complete its assignment, got {outcome:?}"
        );
    }
    let wall = t0.elapsed();

    let report = cluster.shutdown().expect("graceful shutdown");
    assert!(report.failures().is_empty(), "healthy cluster");
    let orders = report
        .validated_orders()
        .expect("per-object orders validate");
    let ordered: usize = orders.iter().map(|(_, o)| o.len()).sum();
    assert_eq!(ordered, total, "every acquire appears in a validated order");
    row_from_report("closed-loop", n, k, wall, orders.len(), &report)
}

/// The churn scenario: same assignment with fault tolerance on, one non-root
/// daemon `SIGKILL`ed mid-run, detection epoch broadcast, victim restarted.
/// Survivors must complete everything; the churn order contract must hold.
fn run_churn(
    arrowd: &std::path::Path,
    n: usize,
    k: usize,
    base: usize,
    floor: usize,
) -> ClusterRow {
    let victim: NodeId = n / 2;
    let cfg = ClusterConfig::new(arrowd, tree(n), k).with_fault_tolerance();
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");
    let work = zipf_work(n, k, base);
    let survivor_total: usize = work
        .iter()
        .filter(|&&(v, _, _)| v != victim)
        .map(|&(_, _, c)| c)
        .sum();
    assert!(
        survivor_total >= floor,
        "scenario must keep >= {floor} acquires on surviving processes"
    );

    let t0 = Instant::now();
    cluster
        .start_workload(&work, Duration::from_secs(1), 600)
        .expect("workload starts");
    // Early enough to land while thousands of acquires are still in flight
    // (the fault-free run takes ~4x this long even on a fast machine).
    std::thread::sleep(Duration::from_millis(80));
    cluster.kill(victim).expect("SIGKILL lands");
    cluster
        .broadcast_epoch(1)
        .expect("detection bump reaches survivors");
    cluster
        .restart(victim)
        .expect("victim restarts and rejoins");
    let mut completed = 0usize;
    for (v, outcome) in cluster.await_done(Duration::from_secs(600)) {
        match outcome {
            WorkOutcome::Done {
                completed: c,
                failed: 0,
                ..
            } => completed += c as usize,
            // The victim's workload died with its first incarnation.
            WorkOutcome::Idle | WorkOutcome::Dead if v == victim => {}
            other => panic!("node {v} did not complete through the churn: {other:?}"),
        }
    }
    let wall = t0.elapsed();
    assert!(
        completed >= survivor_total.min(floor),
        "survivors completed only {completed} of the {floor}-acquire floor"
    );

    let report = cluster.shutdown().expect("graceful shutdown");
    report
        .validate_churn(1)
        .expect("churn order contract holds across the kill/restart cycle");
    assert!(
        report.token_regenerations() >= 1,
        "the SIGKILL must land mid-run so the epoch bump regenerates a live token \
         (it landed after the workload drained — lower the kill delay)"
    );
    // validate_churn checked fork-freedom per epoch and the final epoch's
    // chains; count the objects seen so the row records coverage.
    let objects_seen = {
        let mut objs: Vec<u32> = report.records().iter().map(|r| r.obj.0).collect();
        objs.sort_unstable();
        objs.dedup();
        objs.len()
    };
    row_from_report("churn", n, k, wall, objects_seen, &report)
}

fn json_report(rows: &[ClusterRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"workload\": \"arrowd OS processes over loopback TCP, balanced binary tree; \
         closed loop = Zipf per-(node, object) assignments driven to completion, churn = same \
         assignment surviving one SIGKILL + epoch bump + restart of a non-root daemon\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"processes\": {}, \"objects\": {}, \
             \"acquisitions\": {}, \"wall_seconds\": {:.6}, \"acquisitions_per_sec\": {:.0}, \
             \"acquire_p50_ms\": {:.3}, \"acquire_p99_ms\": {:.3}, \"queue_frames\": {}, \
             \"token_frames\": {}, \"token_regenerations\": {}, \"valid_orders\": {},\n     \
             \"per_process\": [\n",
            r.workload,
            r.processes,
            r.objects,
            r.acquisitions,
            r.wall_seconds,
            r.acquisitions_per_sec,
            r.acquire_p50_ms,
            r.acquire_p99_ms,
            r.queue_frames,
            r.token_frames,
            r.token_regenerations,
            r.valid_orders
        ));
        for (j, p) in r.per_process.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"node\": {}, \"cpu_seconds\": {:.2}, \"rss_kb\": {}, \
                 \"peak_rss_kb\": {}}}{}\n",
                p.node,
                p.cpu_seconds,
                p.rss_kb,
                p.peak_rss_kb,
                if j + 1 == r.per_process.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut smoke = false;
    let mut demo = false;
    let mut out_path = "BENCH_cluster_throughput.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--demo" => demo = true,
            flag if flag.starts_with('-') => {
                eprintln!("usage: cluster [--smoke | --demo] [out_path] (unknown flag {flag})");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let arrowd = match locate_arrowd() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if demo {
        // The README walkthrough: one command, eight real daemon processes.
        println!("8-process arrow directory demo (one arrowd OS process per tree node):");
        let row = run_closed_loop(&arrowd, 8, 4, 6);
        print_row(&row);
        println!("  per-process accounting (/proc/<pid>):");
        println!("    node  cpu_seconds  rss_kb  peak_rss_kb");
        for p in &row.per_process {
            println!(
                "    {:>4}  {:>11.2}  {:>6}  {:>11}",
                p.node, p.cpu_seconds, p.rss_kb, p.peak_rss_kb
            );
        }
        println!(
            "every per-object queuing order validated across 8 process-local journals \
             (no baseline written)"
        );
        return;
    }

    if smoke {
        // CI profile: 4 real processes, seconds-scale, full order validation.
        println!("process-tier smoke (4 arrowd processes, K = 2):");
        let row = run_closed_loop(&arrowd, 4, 2, 6);
        print_row(&row);
        assert_eq!(row.valid_orders, 2, "every object produced a valid order");
        assert_eq!(row.per_process.len(), 4, "every daemon's /proc was scraped");
        println!("smoke OK (no baseline written)");
        return;
    }

    // The acceptance shape: 16 processes, K = 4, (108 + 54 + 36 + 27) = 225
    // acquires per node = 3,600 total; the churn row keeps 15 x 225 = 3,375
    // acquires on survivors — over the 3,200-acquire floor.
    let (n, k, base, floor) = (16usize, 4usize, 108usize, 3_200usize);
    println!("process-tier baseline ({n} arrowd processes, K = {k}, Zipf base {base}):");
    let closed = run_closed_loop(&arrowd, n, k, base);
    print_row(&closed);
    assert_eq!(closed.valid_orders, k);
    assert!(closed.acquisitions >= floor);

    let churn = run_churn(&arrowd, n, k, base, floor);
    print_row(&churn);

    let rows = vec![closed, churn];
    let doc = BenchMeta::capture().inject(&json_report(&rows));
    std::fs::write(&out_path, doc).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
