//! Regenerate the committed socket-tier throughput baseline.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin bench_net -- [out_path]
//! ```
//!
//! Runs the arrow-net closed-loop kernel — 64 socket peers on a balanced binary
//! spanning tree, no injected latency — for K = 1, 4, 8 and 16 objects. Every
//! `queue()` and token frame crosses a real loopback TCP connection; every
//! per-object queuing order is validated at shutdown (the measurement panics
//! otherwise). Writes `BENCH_net_throughput.json` (default: the current directory —
//! run from the repository root to refresh the committed file).

use arrow_bench::net_throughput::{net_sweep, NetReportJson};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net_throughput.json".to_string());

    let nodes = 64;
    let workers_per_object = 4;
    let acquires_per_worker = 50;
    let seed = 1;
    let objects_list = [1usize, 4, 8, 16];

    // Warm-up pass (binds ports, spins the thread pools once), then the measurement.
    let _ = net_sweep(nodes, &[1], workers_per_object, 10, seed);
    let rows = net_sweep(
        nodes,
        &objects_list,
        workers_per_object,
        acquires_per_worker,
        seed,
    );

    println!(
        "socket-tier throughput ({nodes} loopback TCP peers, {workers_per_object} workers/object \
         x {acquires_per_worker} acquires):"
    );
    for r in &rows {
        println!(
            "  K = {:>3} objects: {:>6} acquisitions, {:.3}s, {:>8.0} acq/sec, \
             p50 {:.2} ms, p99 {:.2} ms, {} conns, {} KiB on the wire, {} valid orders",
            r.objects,
            r.acquisitions,
            r.wall_seconds,
            r.acquisitions_per_sec,
            r.acquire_p50_ms,
            r.acquire_p99_ms,
            r.connections,
            r.bytes_sent / 1024,
            r.valid_orders
        );
        assert_eq!(
            r.valid_orders, r.objects,
            "K = {}: every object must produce a valid order",
            r.objects
        );
    }

    let report = NetReportJson { rows };
    std::fs::write(&out_path, report.to_json()).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
