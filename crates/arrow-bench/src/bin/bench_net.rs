//! Regenerate the committed socket-tier throughput baseline.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin bench_net -- [--smoke] [out_path]
//! ```
//!
//! Default (baseline) profile:
//!
//! * **closed loop** — 64 socket peers on a balanced binary spanning tree, K = 1,
//!   4, 8 and 16 objects, 4 worker threads per object × 50 acquires, pipeline
//!   window 16 (each worker keeps 16 acquires in flight and reaps grants FIFO);
//!   best of 5 runs per row, since wall-clock socket timings on small machines
//!   are scheduling-noisy;
//! * **large scale** — 256 peers × K = 64 objects, closed loop (2 workers/object
//!   × 50 acquires) *and* an open-loop burst of 3,200 Zipf-distributed requests
//!   (s = 1.1, object 0 hottest) issued without waiting for completions. The
//!   burst size keeps the worst-case lazily-dialed token-channel count (two file
//!   descriptors per connection, since every peer lives in this one process)
//!   inside common `ulimit -n` budgets.
//!
//! Every `queue()` and token frame crosses a real loopback TCP connection; every
//! per-object queuing order is validated at shutdown (the measurement panics
//! otherwise). Writes `BENCH_net_throughput.json` (default: the current directory
//! — run from the repository root to refresh the committed file).
//!
//! `--smoke` runs a reduced-scale profile (16 nodes, K = 2, plus a tiny open-loop
//! burst) and writes no file — CI uses it to catch socket-tier regressions that
//! compile but would tank the batched hot path.

use arrow_bench::net_throughput::{measure_net_open_loop, net_sweep, NetReportJson, NetRow};

fn print_rows(rows: &[NetRow]) {
    for r in rows {
        println!(
            "  {:>14} n={:>3} K={:>3}: {:>6} acquisitions, {:.3}s, {:>8.0} acq/sec, \
             p50 {:.2} ms, p99 {:.2} ms, {:.1} frames/write, {} conns, {} KiB out / {} KiB in, \
             {} valid orders",
            r.workload,
            r.nodes,
            r.objects,
            r.acquisitions,
            r.wall_seconds,
            r.acquisitions_per_sec,
            r.acquire_p50_ms,
            r.acquire_p99_ms,
            r.frames_per_write,
            r.connections,
            r.bytes_sent / 1024,
            r.bytes_received / 1024,
            r.valid_orders
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_net_throughput.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            flag if flag.starts_with('-') => {
                eprintln!("usage: bench_net [--smoke] [out_path] (unknown flag {flag})");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    if smoke {
        // CI profile: small enough for a shared runner, still exercising the
        // pipelined closed loop, the open-loop burst and full order validation.
        println!("socket-tier smoke (16 peers, K = 2):");
        let mut rows = net_sweep(16, &[2], 2, 10, 4, 1);
        rows.push(measure_net_open_loop(16, 2, 200, 1.1, 1));
        print_rows(&rows);
        for r in &rows {
            assert!(r.valid_orders >= 1, "no object produced a valid order");
            assert!(
                r.frames_per_write >= 1.0,
                "writer accounting broken: {} frames/write",
                r.frames_per_write
            );
        }
        println!("smoke OK (no baseline written)");
        return;
    }

    let nodes = 64;
    let workers_per_object = 4;
    let acquires_per_worker = 50;
    let pipeline = 16;
    let seed = 1;
    let objects_list = [1usize, 4, 8, 16];

    // Warm-up pass (binds ports, spins the thread pools once), then the
    // measurement: best of three runs per row — wall-clock socket timings on a
    // small (possibly single-core) machine are scheduling-noisy, and the
    // baseline should pin what the runtime can do, not what the scheduler did
    // to one run.
    let _ = net_sweep(nodes, &[1], workers_per_object, 10, pipeline, seed);
    let mut rows = net_sweep(
        nodes,
        &objects_list,
        workers_per_object,
        acquires_per_worker,
        pipeline,
        seed,
    );
    for _ in 0..4 {
        let rerun = net_sweep(
            nodes,
            &objects_list,
            workers_per_object,
            acquires_per_worker,
            pipeline,
            seed,
        );
        for (best, candidate) in rows.iter_mut().zip(rerun) {
            if candidate.acquisitions_per_sec > best.acquisitions_per_sec {
                *best = candidate;
            }
        }
    }

    println!(
        "socket-tier throughput ({nodes} loopback TCP peers, {workers_per_object} workers/object \
         x {acquires_per_worker} acquires, pipeline {pipeline}, best of 5):"
    );
    print_rows(&rows);
    for r in &rows {
        assert_eq!(
            r.valid_orders, r.objects,
            "K = {}: every object must produce a valid order",
            r.objects
        );
    }

    // Large scale: 256 peers, 64 objects — closed loop and the open-loop burst.
    println!("large scale (256 peers, K = 64):");
    let big_closed = net_sweep(256, &[64], 2, 50, pipeline, seed);
    let big_open = measure_net_open_loop(256, 64, 3_200, 1.1, seed);
    print_rows(&big_closed);
    print_rows(std::slice::from_ref(&big_open));
    assert_eq!(big_closed[0].valid_orders, 64);
    rows.extend(big_closed);
    rows.push(big_open);

    let report = NetReportJson { rows };
    std::fs::write(&out_path, report.to_json()).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
