//! Regenerate the committed socket-tier throughput baseline.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin bench_net -- [--smoke] [out_path]
//! ```
//!
//! Default (baseline) profile:
//!
//! * **closed loop** — 64 socket peers on a balanced binary spanning tree, K = 1,
//!   4, 8 and 16 objects, 4 worker threads per object × 50 acquires, pipeline
//!   window 16 (each worker keeps 16 acquires in flight and reaps grants FIFO);
//!   best of 5 runs per row, since wall-clock socket timings on small machines
//!   are scheduling-noisy;
//! * **large scale** — 256 peers × K = 64 objects, closed loop (2 workers/object
//!   × 50 acquires) *and* an open-loop burst of 3,200 Zipf-distributed requests
//!   (s = 1.1, object 0 hottest) issued without waiting for completions. The
//!   burst is sized against the process's soft `RLIMIT_NOFILE` (read from
//!   `/proc/self/limits`): every peer lives in this one process, so each
//!   lazily-dialed token channel costs two file descriptors on top of the fixed
//!   reactor footprint (one listener per node, two descriptors per eager tree
//!   link, and an epoll instance plus eventfd waker per reactor shard), and the
//!   worst case is one new channel per burst request. A limit too low for even
//!   a minimal burst is a clear up-front error, not a mid-run `EMFILE` panic;
//! * **scale ceiling** — 1,024 peers × K = 8 objects, closed loop. The sharded
//!   reactor keeps thread count O(shards) regardless of node count, so the only
//!   real resource this row needs is descriptors — it runs behind the same
//!   `RLIMIT_NOFILE` guard.
//!
//! Every `queue()` and token frame crosses a real loopback TCP connection; every
//! per-object queuing order is validated at shutdown (the measurement panics
//! otherwise). Writes `BENCH_net_throughput.json` (default: the current directory
//! — run from the repository root to refresh the committed file).
//!
//! `--smoke` runs a reduced-scale profile (16 nodes, K = 2, plus a tiny open-loop
//! burst) and writes no file — CI uses it to catch socket-tier regressions that
//! compile but would tank the batched hot path.
//!
//! `--trace [FILE]` switches to the causal-trace study instead of the baseline
//! sweep: one closed-loop run executes with wall-clock recording probes on every
//! node (64 peers × K = 16 — the acceptance shape — or the reduced smoke shape
//! with `--smoke`), an untraced twin measures the tracing overhead, and the
//! reconstructed per-request traces are checked for complete hop chains,
//! per-phase latency breakdowns and a per-request stretch distribution whose max
//! is held to the Theorem 3.19 bound. The run is exported as Chrome trace-event
//! JSON (default `bench_net_trace.json`) — open it at <https://ui.perfetto.dev>.

use arrow_bench::meta::BenchMeta;
use arrow_bench::net_throughput::{
    measure_net, measure_net_open_loop, measure_net_traced, net_sweep, NetReportJson, NetRow,
};
use arrow_net::NetConfig;
use arrow_trace::TraceRecorder;
use netgraph::{generators, RootedTree};
use std::sync::Arc;

/// The soft "Max open files" limit of this process (RLIMIT_NOFILE), read from
/// `/proc/self/limits`. `None` when the file is missing (non-Linux) or the line
/// does not parse — callers fall back to the requested scale with a note rather
/// than guessing a limit.
fn nofile_soft_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let rest = text
        .lines()
        .find_map(|l| l.strip_prefix("Max open files"))?;
    let soft = rest.split_whitespace().next()?;
    if soft == "unlimited" {
        return Some(u64::MAX);
    }
    soft.parse().ok()
}

/// Descriptors held by things that are not token channels: stdio, the
/// baseline file, allocator/runtime internals, transient accept queues.
const FD_MARGIN: u64 = 64;

/// The descriptors a freshly spawned `nodes`-peer mesh pins before any lazy
/// token channel is dialed: one listener per node, two per eager tree link
/// (both endpoints live in this process), and — per reactor shard — an epoll
/// instance plus its eventfd inbox waker, with [`FD_MARGIN`] on top.
fn fixed_descriptors(nodes: usize, cfg: &NetConfig) -> u64 {
    let shards = cfg.effective_shards(nodes) as u64;
    nodes as u64 + 2 * (nodes as u64 - 1) + 2 * shards + FD_MARGIN
}

/// Require `needed` descriptors under the soft `RLIMIT_NOFILE` for the row
/// named `what`, or exit with a clear up-front error instead of a mid-run
/// `EMFILE` panic. An unreadable limit passes with a note.
fn require_descriptors(needed: u64, what: &str) {
    match nofile_soft_limit() {
        None => println!(
            "note: cannot read the open-files limit from /proc/self/limits; \
             assuming the {what} row's {needed} descriptors fit"
        ),
        Some(limit) if limit < needed => {
            eprintln!(
                "error: the open-files soft limit ({limit}) is too low for the \
                 {what} socket benchmark row, which needs {needed} descriptors. \
                 Raise it (`ulimit -n {needed}`) or run with --smoke."
            );
            std::process::exit(2);
        }
        Some(_) => {}
    }
}

/// Fit the open-loop burst to the file-descriptor budget. Every peer lives in
/// this one process, so each connection costs **two** descriptors, and the
/// large-scale profile's worst case is: the fixed reactor footprint
/// ([`fixed_descriptors`] — listeners, eager tree links, per-shard epoll and
/// waker), then up to one lazily-dialed token channel per burst request (token
/// handoffs between nodes that never spoke before). Returns the largest burst
/// ≤ `target` whose worst case fits under the soft limit, or exits with a
/// clear error when even a minimal burst cannot fit.
fn sized_burst(nodes: usize, cfg: &NetConfig, target: usize) -> usize {
    /// Below this the open-loop row stops being a meaningful measurement.
    const MIN_BURST: usize = 256;
    let Some(limit) = nofile_soft_limit() else {
        println!(
            "note: cannot read the open-files limit from /proc/self/limits; \
             assuming the default burst of {target} fits"
        );
        return target;
    };
    let fixed = fixed_descriptors(nodes, cfg);
    let needed_min = fixed + 2 * MIN_BURST as u64;
    if limit < needed_min {
        eprintln!(
            "error: the open-files soft limit ({limit}) is too low for the \
             large-scale socket benchmark: {nodes} in-process peers need at \
             least {needed_min} descriptors ({nodes} listeners + {} eager tree \
             links x 2 + 2 per reactor shard ({} shards) + a {MIN_BURST}-request \
             burst x 2 + {FD_MARGIN} margin). Raise it (`ulimit -n {needed_min}`) \
             or run with --smoke.",
            nodes - 1,
            cfg.effective_shards(nodes)
        );
        std::process::exit(2);
    }
    let burst = (((limit - fixed) / 2) as usize).min(target);
    if burst < target {
        println!(
            "note: open-files soft limit {limit} caps the open-loop burst at \
             {burst} requests (target {target}); raise `ulimit -n` for the full \
             committed profile"
        );
    }
    burst
}

fn print_rows(rows: &[NetRow]) {
    for r in rows {
        println!(
            "  {:>14} n={:>3} K={:>3}: {:>6} acquisitions, {:.3}s, {:>8.0} acq/sec, \
             p50 {:.2} ms, p99 {:.2} ms, {:.1} frames/write, {} conns, {} KiB out / {} KiB in, \
             {} valid orders",
            r.workload,
            r.nodes,
            r.objects,
            r.acquisitions,
            r.wall_seconds,
            r.acquisitions_per_sec,
            r.acquire_p50_ms,
            r.acquire_p99_ms,
            r.frames_per_write,
            r.connections,
            r.bytes_sent / 1024,
            r.bytes_received / 1024,
            r.valid_orders
        );
    }
}

/// The `--trace` study: one traced closed-loop run (every node carrying a
/// wall-clock recording probe) next to an untraced twin of the same shape, so
/// the tracing overhead is a measured number rather than a claim. The traced
/// run's events are reconstructed into per-request causal chains and held to
/// the acceptance contract: every issued acquire leaves a complete hop chain,
/// every request gets a phase breakdown (transit / queue-wait / grant-wait)
/// and a stretch value, and the maximum observed stretch sits under the
/// Theorem 3.19 bound for this instance. The run is then exported as Chrome
/// trace-event JSON.
fn trace_study(smoke: bool, trace_path: &str) {
    let (nodes, objects, workers, acquires, pipeline, seed) = if smoke {
        (16usize, 2usize, 2usize, 10usize, 4usize, 1u64)
    } else {
        (64, 16, 4, 50, 16, 1)
    };
    let runs = if smoke { 1 } else { 3 };
    println!(
        "socket-tier causal trace study ({nodes} peers, K = {objects}, {workers} workers/object \
         x {acquires} acquires, pipeline {pipeline}, best of {runs}):"
    );

    // Untraced twin first (after a warm-up that binds ports and spins the
    // thread pools): same shape, `NoProbe` monomorphization — the overhead
    // baseline the traced run is compared against.
    if !smoke {
        let _ = net_sweep(nodes, &[1], workers, 10, pipeline, seed);
    }
    let mut plain = measure_net(nodes, objects, workers, acquires, pipeline, seed);
    for _ in 1..runs {
        let r = measure_net(nodes, objects, workers, acquires, pipeline, seed);
        if r.acquisitions_per_sec > plain.acquisitions_per_sec {
            plain = r;
        }
    }

    let traced_run = || {
        let recorder = Arc::new(TraceRecorder::new());
        let row = measure_net_traced(nodes, objects, workers, acquires, pipeline, seed, &recorder);
        let events = Arc::try_unwrap(recorder)
            .expect("probes flushed when the runtime shut down")
            .finish();
        (row, arrow_trace::analysis::reconstruct(&events))
    };
    let (traced, traces) = {
        let mut best = traced_run();
        for _ in 1..runs {
            let cand = traced_run();
            if cand.0.acquisitions_per_sec > best.0.acquisitions_per_sec {
                best = cand;
            }
        }
        best
    };

    println!("untraced twin:");
    print_rows(std::slice::from_ref(&plain));
    println!("traced run:");
    print_rows(std::slice::from_ref(&traced));
    let overhead = if traced.acquisitions_per_sec > 0.0 {
        (plain.acquisitions_per_sec / traced.acquisitions_per_sec - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "tracing overhead: {overhead:+.1}% closed-loop throughput \
         ({:.0} acq/sec untraced vs {:.0} traced)",
        plain.acquisitions_per_sec, traced.acquisitions_per_sec
    );

    // Score the traces against the measurement geometry. The graph here IS its
    // spanning tree (balanced binary), so d_G = d_T: every per-request stretch
    // must come out 1.0, and the tree stretch for the Theorem 3.19 constant is
    // s = 1.
    let expected = objects * workers * acquires;
    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(nodes), 0);
    let weight = |u: usize, v: usize| {
        if tree.parent(u) == Some(v) {
            tree.parent_edge_weight(u)
        } else {
            tree.parent_edge_weight(v)
        }
    };
    let direct = |u: usize, v: usize| tree.distance(u, v);
    let report = arrow_trace::analysis::report(traces, &weight, &direct);
    assert_eq!(
        report.traces.len(),
        expected,
        "every issued acquire must leave a reconstructed trace"
    );
    assert_eq!(
        report.complete, expected,
        "every request's hop chain must reconstruct completely"
    );

    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut counted = 0usize;
    for t in &report.traces {
        if let Some(p) = t.phases() {
            sums.0 += p.transit;
            sums.1 += p.queue_wait;
            sums.2 += p.grant_wait;
            sums.3 += p.total;
            counted += 1;
        }
    }
    assert_eq!(
        counted, expected,
        "every request must have a phase breakdown"
    );
    let mean_ms = |total: f64| 1e3 * total / counted.max(1) as f64;
    println!(
        "  phase means over {counted} requests: transit {:.3} ms, queue-wait {:.3} ms, \
         grant-wait {:.3} ms, total {:.3} ms",
        mean_ms(sums.0),
        mean_ms(sums.1),
        mean_ms(sums.2),
        mean_ms(sums.3)
    );

    let bound = queuing_analysis::theory::upper_bound_constant(1.0, tree.diameter());
    println!(
        "  stretch: mean {:.3}, max {:.3} over {} requests \
         (Theorem 3.19 bound for s = 1, D = {:.0}: {:.1})",
        report.mean_stretch,
        report.max_stretch,
        report.stretches.len(),
        tree.diameter(),
        bound
    );
    assert!(
        (report.max_stretch - 1.0).abs() < 1e-6,
        "the graph is the tree, so observed stretch must be exactly 1.0 (got {})",
        report.max_stretch
    );
    assert!(
        report.max_stretch <= bound,
        "max observed stretch {} exceeds the Theorem 3.19 bound {bound}",
        report.max_stretch
    );

    // Chrome trace-event JSON: wall-clock probes stamp seconds, Chrome `ts`
    // fields are microseconds.
    let json = arrow_trace::chrome::export(&report.traces, 1e6);
    let events = arrow_trace::chrome::parse_check(&json).expect("chrome export must parse");
    std::fs::write(trace_path, &json).expect("failed to write trace file");
    println!(
        "trace written to {trace_path} ({} requests, {events} events; \
         load at https://ui.perfetto.dev)",
        report.traces.len()
    );
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_net_throughput.json".to_string();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            // Optional value: bare `--trace` uses the default file, so the CI
            // invocation stays `bench_net --smoke --trace`.
            "--trace" => {
                let path = match args.peek() {
                    Some(next) if !next.starts_with('-') => args.next().unwrap(),
                    _ => "bench_net_trace.json".to_string(),
                };
                trace_path = Some(path);
            }
            flag if flag.starts_with('-') => {
                eprintln!(
                    "usage: bench_net [--smoke] [--trace [FILE]] [out_path] (unknown flag {flag})"
                );
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    if let Some(path) = trace_path {
        trace_study(smoke, &path);
        return;
    }

    if smoke {
        // CI profile: small enough for a shared runner, still exercising the
        // pipelined closed loop, the open-loop burst and full order validation.
        println!("socket-tier smoke (16 peers, K = 2):");
        let mut rows = net_sweep(16, &[2], 2, 10, 4, 1);
        rows.push(measure_net_open_loop(16, 2, 200, 1.1, 1));
        print_rows(&rows);
        for r in &rows {
            assert!(r.valid_orders >= 1, "no object produced a valid order");
            assert!(
                r.frames_per_write >= 1.0,
                "writer accounting broken: {} frames/write",
                r.frames_per_write
            );
        }
        println!("smoke OK (no baseline written)");
        return;
    }

    let nodes = 64;
    let workers_per_object = 4;
    let acquires_per_worker = 50;
    let pipeline = 16;
    let seed = 1;
    let objects_list = [1usize, 4, 8, 16];

    // Warm-up pass (binds ports, spins the thread pools once), then the
    // measurement: best of three runs per row — wall-clock socket timings on a
    // small (possibly single-core) machine are scheduling-noisy, and the
    // baseline should pin what the runtime can do, not what the scheduler did
    // to one run.
    let _ = net_sweep(nodes, &[1], workers_per_object, 10, pipeline, seed);
    let mut rows = net_sweep(
        nodes,
        &objects_list,
        workers_per_object,
        acquires_per_worker,
        pipeline,
        seed,
    );
    for _ in 0..4 {
        let rerun = net_sweep(
            nodes,
            &objects_list,
            workers_per_object,
            acquires_per_worker,
            pipeline,
            seed,
        );
        for (best, candidate) in rows.iter_mut().zip(rerun) {
            if candidate.acquisitions_per_sec > best.acquisitions_per_sec {
                *best = candidate;
            }
        }
    }

    println!(
        "socket-tier throughput ({nodes} loopback TCP peers, {workers_per_object} workers/object \
         x {acquires_per_worker} acquires, pipeline {pipeline}, best of 5):"
    );
    print_rows(&rows);
    for r in &rows {
        assert_eq!(
            r.valid_orders, r.objects,
            "K = {}: every object must produce a valid order",
            r.objects
        );
    }

    // Large scale: 256 peers, 64 objects — closed loop and the open-loop burst,
    // with the burst sized to the process's descriptor budget (RLIMIT_NOFILE).
    println!("large scale (256 peers, K = 64):");
    let cfg = NetConfig::instant();
    let burst = sized_burst(256, &cfg, 3_200);
    let big_closed = net_sweep(256, &[64], 2, 50, pipeline, seed);
    let big_open = measure_net_open_loop(256, 64, burst, 1.1, seed);
    print_rows(&big_closed);
    print_rows(std::slice::from_ref(&big_open));
    assert_eq!(big_closed[0].valid_orders, 64);
    rows.extend(big_closed);
    rows.push(big_open);

    // Scale ceiling: 1,024 peers in this one process. The sharded reactor's
    // thread count is O(shards) no matter the node count, so the only scarce
    // resource is descriptors — the closed loop's lazy token channels are
    // bounded by one per (granter, origin) pair, K x workers of them at worst.
    let ceiling_nodes = 1_024;
    let ceiling_objects = 8;
    let ceiling_workers = 1;
    require_descriptors(
        fixed_descriptors(ceiling_nodes, &cfg) + 2 * (ceiling_objects * ceiling_workers) as u64,
        "scale-ceiling (1024 peers)",
    );
    println!("scale ceiling ({ceiling_nodes} peers, K = {ceiling_objects}):");
    let ceiling = net_sweep(
        ceiling_nodes,
        &[ceiling_objects],
        ceiling_workers,
        25,
        pipeline,
        seed,
    );
    print_rows(&ceiling);
    assert_eq!(ceiling[0].valid_orders, ceiling_objects);
    rows.extend(ceiling);

    let report = NetReportJson { rows };
    let doc = BenchMeta::capture().inject(&report.to_json());
    std::fs::write(&out_path, doc).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
