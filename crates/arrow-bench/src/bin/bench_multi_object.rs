//! Regenerate the committed multi-object throughput baseline.
//!
//! ```text
//! cargo run --release -p arrow-bench --bin bench_multi_object -- [out_path]
//! ```
//!
//! Runs the multi-object directory kernel (256-node complete graph, balanced binary
//! spanning tree, 10,000 Zipf-skewed open-loop requests) for K = 1, 4, 16 and 64
//! objects sharing the tree, verifies that every object's queue independently
//! validates as a total order, and writes `BENCH_multi_object_throughput.json`
//! (default: the current directory — run from the repository root to refresh the
//! committed file).

use arrow_bench::meta::BenchMeta;
use arrow_bench::multi_object::{multi_object_sweep, MultiObjectReport};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_multi_object_throughput.json".to_string());

    let nodes = 256;
    let requests = 10_000;
    let seed = 1;
    let objects_list = [1usize, 4, 16, 64];

    // Warm-up pass (also populates the instance caches), then the measured sweep.
    let _ = multi_object_sweep(nodes, &objects_list, requests, seed, 50);
    let rows = multi_object_sweep(nodes, &objects_list, requests, seed, 500);

    println!("multi-object directory throughput ({nodes} nodes, {requests} Zipf requests):");
    for r in &rows {
        println!(
            "  K = {:>3} objects: {:>8} events/run, {:.3}s, {:>10.0} events/sec, {} valid per-object orders",
            r.objects, r.sim_events, r.wall_seconds, r.events_per_sec, r.valid_orders
        );
        // Zipf sampling is not guaranteed to touch every object; the measurement
        // itself already panics unless every touched object's order validates, so
        // only a sanity bound is asserted here.
        assert!(
            r.valid_orders >= 1 && r.valid_orders <= r.objects,
            "K = {}: implausible valid-order count {}",
            r.objects,
            r.valid_orders
        );
    }

    let report = MultiObjectReport { rows };
    let doc = BenchMeta::capture().inject(&report.to_json());
    std::fs::write(&out_path, doc).expect("failed to write baseline file");
    println!("baseline written to {out_path}");
}
