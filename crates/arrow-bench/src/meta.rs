//! Provenance metadata for the committed `BENCH_*.json` baselines.
//!
//! A baseline number without its generating context is unreviewable: a later
//! regeneration cannot tell "the code got faster" apart from "someone ran it
//! on a bigger machine". Every baseline writer therefore embeds a `meta`
//! block — the generating command line, the git revision, the UTC date and
//! the core count — as the first member of the report document.

use std::process::Command;

/// Provenance of one baseline regeneration.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// The generating command line (argv, space-joined).
    pub command: String,
    /// Short git revision at generation time (`"unknown"` outside a checkout).
    pub git_rev: String,
    /// UTC generation date, RFC 3339 (falls back to seconds since the epoch
    /// when the `date` utility is unavailable).
    pub date: String,
    /// Cores available to the generating process.
    pub cores: usize,
}

/// First line of a command's stdout, or `None` on any failure.
fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchMeta {
    /// Capture the current process's provenance.
    pub fn capture() -> Self {
        let command = std::env::args().collect::<Vec<_>>().join(" ");
        let git_rev = command_line("git", &["rev-parse", "--short", "HEAD"])
            .unwrap_or_else(|| "unknown".to_string());
        let date = command_line("date", &["-u", "+%Y-%m-%dT%H:%M:%SZ"]).unwrap_or_else(|| {
            let secs = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            format!("@{secs}")
        });
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BenchMeta {
            command,
            git_rev,
            date,
            cores,
        }
    }

    /// Render as the `"meta"` member of a report object (two-space indent, no
    /// trailing comma).
    pub fn to_json_entry(&self) -> String {
        format!(
            "  \"meta\": {{\n    \"command\": \"{}\",\n    \"git_rev\": \"{}\",\n    \
             \"date\": \"{}\",\n    \"cores\": {}\n  }}",
            json_escape(&self.command),
            json_escape(&self.git_rev),
            json_escape(&self.date),
            self.cores
        )
    }

    /// Insert this meta block as the first member of a report document (all the
    /// hand-written `to_json` renderers open with `{\n`).
    ///
    /// # Panics
    /// If `report_json` does not open with `{\n`.
    pub fn inject(&self, report_json: &str) -> String {
        let rest = report_json
            .strip_prefix("{\n")
            .expect("report documents open with '{\\n'");
        format!("{{\n{},\n{rest}", self.to_json_entry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_plausible_provenance() {
        let meta = BenchMeta::capture();
        assert!(meta.cores >= 1);
        assert!(!meta.command.is_empty());
        assert!(!meta.date.is_empty());
        assert!(!meta.git_rev.is_empty());
    }

    #[test]
    fn inject_puts_meta_first_and_keeps_the_report_members() {
        let meta = BenchMeta {
            command: "bench_x --full \"quoted\"".to_string(),
            git_rev: "abc1234".to_string(),
            date: "2026-01-01T00:00:00Z".to_string(),
            cores: 8,
        };
        let doc = meta.inject("{\n  \"rows\": []\n}\n");
        assert!(
            doc.starts_with("{\n  \"meta\": {\n    \"command\": \"bench_x --full \\\"quoted\\\"\"")
        );
        assert!(doc.contains("\"git_rev\": \"abc1234\""));
        assert!(doc.contains("\"cores\": 8"));
        assert!(doc.ends_with("  \"rows\": []\n}\n"));
    }
}
