//! # arrow-bench — the experiment harness
//!
//! One function per figure of the paper's evaluation (plus the theory-validation
//! sweeps), shared between the runnable binaries (`src/bin/*.rs`, which print the
//! tables) and the Criterion benchmarks (`benches/*.rs`, which time the kernels).
//!
//! | Experiment | Paper | Binary | Function |
//! |---|---|---|---|
//! | Total latency, arrow vs. centralized | Figure 10 | `fig10_latency` | [`experiments::figure_10`] |
//! | Hops per queuing operation | Figure 11 | `fig11_hops` | [`experiments::figure_11`] |
//! | Adversarial lower-bound instance | Figure 9 / Thm 4.1 | `fig9_lower_bound` | [`experiments::figure_9`] |
//! | Competitive-ratio validation | Thm 3.19 | `competitive_ratio` | [`experiments::ratio_sweep`] |
//! | Synchronous vs. asynchronous | Thm 3.21 | `async_vs_sync` | [`experiments::async_vs_sync`] |
//! | Multi-object directory throughput | directory setting (Sec. 1) | `bench_multi_object` | [`multi_object::multi_object_sweep`] |
//! | Socket-tier throughput (loopback TCP) | Section 5 platform | `bench_net` | [`net_throughput::net_sweep`] |
//!
//! ## Quick example
//!
//! Run a miniature Theorem 3.19 validation sweep — every measured competitive
//! ratio must certify the bound (or be flagged degenerate, never silently
//! clamped):
//!
//! ```
//! use arrow_bench::ratio_sweep;
//!
//! let rows = ratio_sweep(8, 6, 1);
//! assert!(!rows.is_empty());
//! for row in &rows {
//!     assert!(
//!         row.report.within_bound(),
//!         "{}: ratio {} exceeds the Theorem 3.19 bound {}",
//!         row.label, row.report.ratio, row.report.theorem_bound
//!     );
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod meta;
pub mod multi_object;
pub mod net_throughput;
pub mod table;
pub mod throughput;

pub use experiments::{
    async_vs_sync, figure_10, figure_11, figure_9, ratio_sweep, Fig10Row, Fig11Row, Fig9Row,
    RatioRow, SyncAsyncRow,
};
pub use multi_object::{
    measure_multi_object, multi_object_sweep, MultiObjectReport, MultiObjectRow,
};
pub use net_throughput::{measure_net, net_sweep, NetReportJson, NetRow};
pub use table::Table;
pub use throughput::{measure_sim_throughput, ThroughputReport};
