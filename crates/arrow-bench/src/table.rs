//! Minimal fixed-width table printing for the experiment binaries.

/// A simple text table: a header row plus data rows, rendered with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must have the same number of cells as the header).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimal places (experiment output convention).
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["n", "latency"]);
        t.push(vec!["2".into(), "1.5".into()]);
        t.push(vec!["64".into(), "123.456".into()]);
        let s = t.render();
        assert!(s.contains("latency"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(2.0), "2.000");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
