//! The experiments of the paper's evaluation section, one function per figure.
//!
//! All functions are deterministic given their arguments (seeds included in the
//! arguments where randomness is involved), so the binaries and the benchmarks report
//! reproducible numbers.
//!
//! Every sweep is parallelized over its independent grid points (processor counts,
//! diameters, seeds, topology×workload combinations) with rayon. Results are
//! index-addressed — each grid point computes its row independently and rows are
//! collected in input order — so the output is bit-identical to the serial
//! evaluation regardless of thread count or scheduling. The `*_serial` variants run
//! the same row functions without the thread pool; the determinism regression tests
//! compare the two.

use arrow_core::prelude::*;
use desim::SimTime;
use queuing_analysis::lower_bound;
use queuing_analysis::{measure_ratio, RatioReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Map `items` through `f`, in parallel (deterministic, order-preserving) or
/// serially. Both paths produce identical output; the serial path exists as the
/// reference for the determinism regression tests.
fn map_rows<T: Send, R: Send>(items: Vec<T>, parallel: bool, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    if parallel {
        items.into_par_iter().map(f).collect()
    } else {
        items.into_iter().map(f).collect()
    }
}

/// One row of the Figure 10 reproduction (total latency vs. number of processors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Number of processors.
    pub processors: usize,
    /// Requests issued per processor.
    pub requests_per_node: u64,
    /// Arrow: virtual time to complete all enqueues.
    pub arrow_makespan: f64,
    /// Centralized: virtual time to complete all enqueues.
    pub centralized_makespan: f64,
    /// Arrow: mean per-request completion latency.
    pub arrow_mean_latency: f64,
    /// Centralized: mean per-request completion latency.
    pub centralized_mean_latency: f64,
}

fn figure_10_row(n: usize, requests_per_node: u64, local_service_time: f64) -> Fig10Row {
    let instance = Instance::complete_uniform(n, SpanningTreeKind::BalancedBinary);
    let spec = ClosedLoopSpec {
        requests_per_node,
        local_service_time,
    };
    let workload = Workload::ClosedLoop(spec);
    let arrow = run(
        &instance,
        &workload,
        &RunConfig::experiment(ProtocolKind::Arrow, local_service_time),
    );
    let central = run(
        &instance,
        &workload,
        &RunConfig::experiment(ProtocolKind::Centralized, local_service_time),
    );
    Fig10Row {
        processors: n,
        requests_per_node,
        arrow_makespan: arrow.makespan,
        centralized_makespan: central.makespan,
        arrow_mean_latency: arrow.mean_completion_latency,
        centralized_mean_latency: central.mean_completion_latency,
    }
}

/// Reproduce Figure 10: closed-loop workload on a complete graph with a balanced
/// binary spanning tree, arrow vs. centralized, sweeping the processor count.
///
/// `requests_per_node` is 100,000 in the paper; the default harness uses a smaller
/// value because the reported quantities (per-request latency, relative makespan
/// growth) are steady-state properties that do not depend on the total count.
pub fn figure_10(
    processor_counts: &[usize],
    requests_per_node: u64,
    local_service_time: f64,
) -> Vec<Fig10Row> {
    map_rows(processor_counts.to_vec(), true, |n| {
        figure_10_row(n, requests_per_node, local_service_time)
    })
}

/// Serial reference implementation of [`figure_10`] (identical output).
#[doc(hidden)]
pub fn figure_10_serial(
    processor_counts: &[usize],
    requests_per_node: u64,
    local_service_time: f64,
) -> Vec<Fig10Row> {
    map_rows(processor_counts.to_vec(), false, |n| {
        figure_10_row(n, requests_per_node, local_service_time)
    })
}

/// One row of the Figure 11 reproduction (average hops per queuing operation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Number of processors.
    pub processors: usize,
    /// Requests issued per processor.
    pub requests_per_node: u64,
    /// Average inter-processor `queue()` messages per request for arrow.
    pub arrow_hops_per_request: f64,
    /// Average protocol messages per request for the centralized protocol
    /// (2 per remote request in the paper).
    pub centralized_hops_per_request: f64,
}

fn figure_11_row(n: usize, requests_per_node: u64, local_service_time: f64) -> Fig11Row {
    let instance = Instance::complete_uniform(n, SpanningTreeKind::BalancedBinary);
    let spec = ClosedLoopSpec {
        requests_per_node,
        local_service_time,
    };
    let workload = Workload::ClosedLoop(spec);
    let arrow = run(
        &instance,
        &workload,
        &RunConfig::experiment(ProtocolKind::Arrow, local_service_time),
    );
    let central = run(
        &instance,
        &workload,
        &RunConfig::experiment(ProtocolKind::Centralized, local_service_time),
    );
    Fig11Row {
        processors: n,
        requests_per_node,
        arrow_hops_per_request: arrow.hops_per_request,
        centralized_hops_per_request: central.hops_per_request,
    }
}

/// Reproduce Figure 11: the average number of inter-processor messages per queuing
/// operation under the same closed-loop workload as Figure 10.
pub fn figure_11(
    processor_counts: &[usize],
    requests_per_node: u64,
    local_service_time: f64,
) -> Vec<Fig11Row> {
    map_rows(processor_counts.to_vec(), true, |n| {
        figure_11_row(n, requests_per_node, local_service_time)
    })
}

/// Serial reference implementation of [`figure_11`] (identical output).
#[doc(hidden)]
pub fn figure_11_serial(
    processor_counts: &[usize],
    requests_per_node: u64,
    local_service_time: f64,
) -> Vec<Fig11Row> {
    map_rows(processor_counts.to_vec(), false, |n| {
        figure_11_row(n, requests_per_node, local_service_time)
    })
}

/// One row of the Figure 9 / Theorem 4.1 lower-bound experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Path length (tree diameter) `D`.
    pub diameter: usize,
    /// Number of time layers `k`.
    pub layers: usize,
    /// Number of requests in the adversarial instance.
    pub requests: usize,
    /// The paper's predicted arrow cost `k · D`.
    pub predicted_arrow_cost: f64,
    /// Arrow's measured total latency.
    pub measured_arrow_cost: f64,
    /// Certified lower bound on the optimal cost.
    pub opt_lower_bound: f64,
    /// Measured competitive ratio (arrow / optimal lower bound).
    pub ratio: f64,
    /// The theoretical lower-bound shape `log D / log log D`.
    pub predicted_ratio_shape: f64,
}

fn figure_9_row(d: usize) -> Fig9Row {
    let k = (d.max(4) as f64).log2().round() as usize;
    let (instance, schedule) = lower_bound::theorem_4_1_instance(d, k);
    let report = measure_ratio(
        &instance,
        &schedule,
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    Fig9Row {
        diameter: d,
        layers: k,
        requests: schedule.len(),
        predicted_arrow_cost: lower_bound::predicted_arrow_cost(d, k),
        measured_arrow_cost: report.arrow_cost,
        opt_lower_bound: report.opt_lower_bound,
        ratio: report.ratio,
        predicted_ratio_shape: queuing_analysis::theory::lower_bound_shape(1.0, d as f64) - 1.0,
    }
}

/// Reproduce the Figure 9 construction for a sweep of diameters and measure the
/// competitive ratio the instance actually forces.
///
/// The number of time layers follows the paper's own example (`D = 64, k = 6`, i.e.
/// `k = log₂ D`); the asymptotic analysis uses the slightly smaller
/// `k = log D / log log D` ([`lower_bound::recommended_layers`]), which only separates
/// from a constant at diameters far beyond what a table can show.
pub fn figure_9(diameters: &[usize]) -> Vec<Fig9Row> {
    map_rows(diameters.to_vec(), true, figure_9_row)
}

/// Serial reference implementation of [`figure_9`] (identical output).
#[doc(hidden)]
pub fn figure_9_serial(diameters: &[usize]) -> Vec<Fig9Row> {
    map_rows(diameters.to_vec(), false, figure_9_row)
}

/// One row of the competitive-ratio validation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRow {
    /// Human-readable description of the topology / tree / workload combination.
    pub label: String,
    /// The detailed measurement.
    pub report: RatioReport,
}

/// Build the `(label, instance, schedule)` grid of the ratio sweep. Instances are
/// shared per topology (behind `Arc`), so the cached distance matrix and stretch
/// report are computed once per topology and reused by all four workloads.
fn ratio_sweep_tasks(
    nodes: usize,
    requests: usize,
    seed: u64,
) -> Vec<(String, Arc<Instance>, RequestSchedule)> {
    use netgraph::generators;
    use netgraph::spanning::build_spanning_tree;

    let horizon = 3.0 * nodes as f64;

    // Topology / tree combinations.
    let complete = generators::complete(nodes, 1.0);
    let side = (nodes as f64).sqrt().ceil() as usize;
    let grid = generators::grid(side, side);
    let cycle = generators::cycle(nodes.max(3));
    let combos: Vec<(String, Arc<Instance>)> = vec![
        (
            "complete + balanced binary tree".into(),
            Arc::new(Instance::new(
                complete.clone(),
                build_spanning_tree(&complete, 0, SpanningTreeKind::BalancedBinary),
            )),
        ),
        (
            "complete + star tree".into(),
            Arc::new(Instance::new(
                complete.clone(),
                build_spanning_tree(&complete, 0, SpanningTreeKind::Star),
            )),
        ),
        (
            "grid + shortest-path tree".into(),
            Arc::new(Instance::new(
                grid.clone(),
                build_spanning_tree(&grid, 0, SpanningTreeKind::ShortestPath),
            )),
        ),
        (
            "grid + minimum-communication tree".into(),
            Arc::new(Instance::new(
                grid.clone(),
                build_spanning_tree(&grid, 0, SpanningTreeKind::MinimumCommunication),
            )),
        ),
        (
            "cycle + shortest-path tree (max stretch)".into(),
            Arc::new(Instance::new(
                cycle.clone(),
                build_spanning_tree(&cycle, 0, SpanningTreeKind::ShortestPath),
            )),
        ),
    ];

    let mut tasks = Vec::new();
    for (label, instance) in combos {
        let n = instance.node_count();
        let workloads: Vec<(String, RequestSchedule)> = vec![
            (
                "one-shot burst".into(),
                workload::one_shot_burst(&(0..n).collect::<Vec<_>>(), SimTime::ZERO),
            ),
            (
                "uniform random".into(),
                workload::uniform_random(n, requests, horizon, seed),
            ),
            (
                "hotspot".into(),
                workload::hotspot(n, &[0, n - 1], 0.7, requests, horizon, seed + 1),
            ),
            (
                "sequential".into(),
                workload::sequential_round_robin(
                    &(0..n).collect::<Vec<_>>(),
                    requests.min(3 * n),
                    2.0 * n as f64,
                ),
            ),
        ];
        for (wl_label, schedule) in workloads {
            if schedule.is_empty() {
                continue;
            }
            tasks.push((
                format!("{label}, {wl_label}"),
                Arc::clone(&instance),
                schedule,
            ));
        }
    }
    tasks
}

fn ratio_sweep_with(nodes: usize, requests: usize, seed: u64, parallel: bool) -> Vec<RatioRow> {
    let tasks = ratio_sweep_tasks(nodes, requests, seed);
    map_rows(tasks, parallel, |(label, instance, schedule)| {
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        RatioRow { label, report }
    })
}

/// Theorem 3.19 validation: measure arrow's competitive ratio across topologies,
/// spanning trees and workload shapes, and compare with the theorem's bound.
pub fn ratio_sweep(nodes: usize, requests: usize, seed: u64) -> Vec<RatioRow> {
    ratio_sweep_with(nodes, requests, seed, true)
}

/// Serial reference implementation of [`ratio_sweep`] (identical output).
#[doc(hidden)]
pub fn ratio_sweep_serial(nodes: usize, requests: usize, seed: u64) -> Vec<RatioRow> {
    ratio_sweep_with(nodes, requests, seed, false)
}

/// One row of the synchronous-vs-asynchronous comparison (Theorem 3.21).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncAsyncRow {
    /// Workload label.
    pub label: String,
    /// Arrow's cost under synchronous (worst-case) delays.
    pub sync_cost: f64,
    /// Arrow's cost under random asynchronous delays (≤ the link weight).
    pub async_cost: f64,
    /// Competitive ratio in the synchronous model.
    pub sync_ratio: f64,
    /// Competitive ratio in the asynchronous model (against the same lower bound).
    pub async_ratio: f64,
    /// The theorem bound both must respect.
    pub theorem_bound: f64,
}

fn async_vs_sync_with(
    nodes: usize,
    requests: usize,
    seeds: &[u64],
    parallel: bool,
) -> Vec<SyncAsyncRow> {
    let instance = Arc::new(Instance::complete_uniform(
        nodes,
        SpanningTreeKind::BalancedBinary,
    ));
    // Schedules are generated up front (cheap) so empty seeds can be skipped while
    // keeping output order identical to the input seed order.
    let tasks: Vec<(u64, RequestSchedule)> = seeds
        .iter()
        .map(|&seed| {
            (
                seed,
                workload::uniform_random(nodes, requests, 2.0 * nodes as f64, seed),
            )
        })
        .filter(|(_, schedule)| !schedule.is_empty())
        .collect();
    map_rows(tasks, parallel, |(seed, schedule)| {
        let sync = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        let asynchronous = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(seed),
        );
        SyncAsyncRow {
            label: format!("uniform random, seed {seed}"),
            sync_cost: sync.arrow_cost,
            async_cost: asynchronous.arrow_cost,
            sync_ratio: sync.ratio,
            async_ratio: asynchronous.ratio,
            theorem_bound: sync.theorem_bound,
        }
    })
}

/// Section 3.8 validation: run the same request sets under worst-case (synchronous)
/// and random asynchronous delays; both executions must respect the same
/// `O(s · log D)` bound (Theorem 3.21). The asynchronous ordering may differ, so the
/// costs are reported side by side rather than compared directly.
pub fn async_vs_sync(nodes: usize, requests: usize, seeds: &[u64]) -> Vec<SyncAsyncRow> {
    async_vs_sync_with(nodes, requests, seeds, true)
}

/// Serial reference implementation of [`async_vs_sync`] (identical output).
#[doc(hidden)]
pub fn async_vs_sync_serial(nodes: usize, requests: usize, seeds: &[u64]) -> Vec<SyncAsyncRow> {
    async_vs_sync_with(nodes, requests, seeds, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_10_shows_centralized_degrading_faster_than_arrow() {
        let rows = figure_10(&[2, 8, 24], 30, 0.2);
        assert_eq!(rows.len(), 3);
        // The paper's headline shape: as the system grows, the centralized protocol's
        // makespan grows much faster than arrow's.
        let growth = |a: &Fig10Row, b: &Fig10Row| {
            (
                b.arrow_makespan / a.arrow_makespan,
                b.centralized_makespan / a.centralized_makespan,
            )
        };
        let (arrow_growth, central_growth) = growth(&rows[0], &rows[2]);
        assert!(
            central_growth > arrow_growth,
            "centralized should degrade faster: arrow x{arrow_growth:.2}, centralized x{central_growth:.2}"
        );
    }

    #[test]
    fn figure_11_hops_stay_bounded() {
        let rows = figure_11(&[4, 16], 30, 0.2);
        for row in &rows {
            assert!(row.arrow_hops_per_request >= 0.0);
            // The spanning tree has logarithmic depth, so hops per request are far
            // below the worst case (the tree diameter).
            assert!(row.arrow_hops_per_request < 2.0 * (row.processors as f64).log2() + 1.0);
            // The centralized protocol pays ~2 messages per remote request.
            assert!(row.centralized_hops_per_request <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn figure_9_ratio_exceeds_one_and_matches_prediction_order() {
        let rows = figure_9(&[16, 32]);
        for row in &rows {
            assert!(row.ratio > 1.0, "ratio {}", row.ratio);
            assert!(row.measured_arrow_cost > 0.0);
            assert!(row.opt_lower_bound > 0.0);
            // The measured cost should be in the ballpark of the predicted k·D
            // (within a factor of ~3 given tie-breaking and boundary effects).
            assert!(row.measured_arrow_cost >= row.predicted_arrow_cost / 3.0);
            assert!(row.measured_arrow_cost <= row.predicted_arrow_cost * 3.0);
        }
    }

    #[test]
    fn ratio_sweep_respects_the_theorem_everywhere() {
        let rows = ratio_sweep(9, 20, 1);
        assert!(rows.len() >= 15);
        for row in &rows {
            // certifies_bound, not within_bound: these workloads must produce a
            // positive lower bound, so every row positively corroborates the
            // theorem (a degenerate row slipping in here would be a sweep bug).
            assert!(
                row.report.certifies_bound(),
                "{}: ratio {} vs bound {} (degenerate: {})",
                row.label,
                row.report.ratio,
                row.report.theorem_bound,
                row.report.opt_bound_degenerate
            );
        }
    }

    #[test]
    fn async_and_sync_executions_both_respect_the_bound() {
        let rows = async_vs_sync(8, 24, &[1, 2]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.sync_cost > 0.0 && row.async_cost > 0.0);
            assert!(row.sync_ratio <= row.theorem_bound, "{}", row.label);
            assert!(row.async_ratio <= row.theorem_bound, "{}", row.label);
        }
    }
}
