//! Criterion benchmark behind **Figure 9 / Theorem 4.1**: the adversarial lower-bound
//! instance, sweeping the path diameter. The measured competitive ratios are printed
//! alongside the timing.

use arrow_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use queuing_analysis::lower_bound::{recommended_layers, theorem_4_1_instance};
use queuing_analysis::measure_ratio;

fn lower_bound_ratio(diameter: usize) -> f64 {
    let k = recommended_layers(diameter);
    let (instance, schedule) = theorem_4_1_instance(diameter, k);
    measure_ratio(
        &instance,
        &schedule,
        &RunConfig::analysis(ProtocolKind::Arrow),
    )
    .ratio
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_lower_bound_instance");
    for &d in &[16usize, 64, 256] {
        let ratio = lower_bound_ratio(d);
        println!("fig9 D={d}: measured competitive ratio {ratio:.3}");
        group.bench_with_input(
            BenchmarkId::new("arrow_on_adversarial_path", d),
            &d,
            |b, &d| b.iter(|| lower_bound_ratio(d)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
