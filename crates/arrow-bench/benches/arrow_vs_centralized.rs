//! Criterion benchmark behind **Figure 10**: wall-clock time to simulate the
//! closed-loop arrow vs. centralized workload at several system sizes, plus the
//! simulated makespans (printed once per size so `cargo bench` output can be used to
//! regenerate the figure's series).

use arrow_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn closed_loop(protocol: ProtocolKind, n: usize, requests_per_node: u64) -> QueuingOutcome {
    let service = 0.2;
    let instance = Instance::complete_uniform(n, SpanningTreeKind::BalancedBinary);
    let spec = ClosedLoopSpec {
        requests_per_node,
        local_service_time: service,
    };
    run(
        &instance,
        &Workload::ClosedLoop(spec),
        &RunConfig::experiment(protocol, service),
    )
}

fn bench_fig10(c: &mut Criterion) {
    let requests_per_node = 200;
    let mut group = c.benchmark_group("fig10_closed_loop");
    for &n in &[8usize, 16, 32, 64] {
        // Print the simulated series (the actual Figure 10 quantities) once.
        let arrow = closed_loop(ProtocolKind::Arrow, n, requests_per_node);
        let central = closed_loop(ProtocolKind::Centralized, n, requests_per_node);
        println!(
            "fig10 n={n}: arrow makespan {:.2}, centralized makespan {:.2} (simulated time units)",
            arrow.makespan, central.makespan
        );
        group.bench_with_input(BenchmarkId::new("arrow", n), &n, |b, &n| {
            b.iter(|| closed_loop(ProtocolKind::Arrow, n, requests_per_node))
        });
        group.bench_with_input(BenchmarkId::new("centralized", n), &n, |b, &n| {
            b.iter(|| closed_loop(ProtocolKind::Centralized, n, requests_per_node))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig10
}
criterion_main!(benches);
