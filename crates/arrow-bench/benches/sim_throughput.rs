//! Benchmark of raw simulator throughput: full arrow protocol runs on the paper's
//! experiment topology, reported as wall-clock per run (the events/sec number for the
//! committed baseline comes from the `bench_baseline` binary, which times the same
//! kernel via `arrow_bench::throughput`).

use arrow_bench::throughput::throughput_workload;
use arrow_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for &(nodes, requests) in &[(64usize, 2_000usize), (256, 5_000), (512, 10_000)] {
        let (instance, schedule) = throughput_workload(nodes, requests, 1);
        let config = RunConfig::analysis(ProtocolKind::Arrow);
        // Warm the cached distance structures so the bench times the simulator.
        let warm = run_schedule(&instance, &schedule, &config);
        println!(
            "sim_throughput n={nodes} requests={requests}: {} events per run",
            warm.sim_events
        );
        group.bench_with_input(
            BenchmarkId::new("arrow", format!("n{nodes}_r{requests}")),
            &nodes,
            |b, _| b.iter(|| run_schedule(&instance, &schedule, &config)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_throughput
}
criterion_main!(benches);
