//! Criterion benchmarks of the analysis kernels themselves: the nearest-neighbour TSP
//! construction, the Held–Karp exact optimum, the Manhattan-MST bound and the time
//! compression transformation. These are the building blocks every competitive-ratio
//! measurement uses, so their throughput determines how large the validation sweeps
//! can go.

use arrow_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::SimTime;
use netgraph::{generators, RootedTree};
use queuing_analysis::cost::RequestSet;
use queuing_analysis::{compress_schedule, held_karp_path, mst_weight, nearest_neighbor_path};

fn request_set(n_requests: usize) -> (RequestSchedule, RootedTree) {
    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(63), 0);
    let schedule = workload::uniform_random(63, n_requests, 50.0, 7);
    let _ = SimTime::ZERO;
    (schedule, tree)
}

fn bench_nn_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_nearest_neighbor_path");
    for &n in &[50usize, 200, 800] {
        let (schedule, tree) = request_set(n);
        let rs = RequestSet::new(&schedule, &tree);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| nearest_neighbor_path(&rs, RequestSet::cost_t))
        });
    }
    group.finish();
}

fn bench_held_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_held_karp_exact");
    for &n in &[8usize, 12, 15] {
        let (schedule, tree) = request_set(n);
        let rs = RequestSet::new(&schedule, &tree);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| held_karp_path(&rs, RequestSet::cost_opt))
        });
    }
    group.finish();
}

fn bench_mst_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_manhattan_mst");
    for &n in &[100usize, 400, 1600] {
        let (schedule, tree) = request_set(n);
        let rs = RequestSet::new(&schedule, &tree);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mst_weight(&rs, RequestSet::cost_manhattan))
        });
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_time_compression");
    for &n in &[50usize, 200] {
        let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(63), 0);
        // Bursty schedule with dead time so the transformation has work to do.
        let schedule = workload::bursty_phases(63, 5, n / 5, 500.0, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compress_schedule(&schedule, &tree))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nn_path, bench_held_karp, bench_mst_bound, bench_compression
}
criterion_main!(benches);
