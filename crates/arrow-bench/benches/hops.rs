//! Criterion benchmark behind **Figure 11**: hops per queuing operation of the arrow
//! protocol under the closed-loop workload, across system sizes.

use arrow_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn arrow_hops(n: usize, requests_per_node: u64) -> f64 {
    let service = 0.2;
    let instance = Instance::complete_uniform(n, SpanningTreeKind::BalancedBinary);
    let spec = ClosedLoopSpec {
        requests_per_node,
        local_service_time: service,
    };
    let outcome = run(
        &instance,
        &Workload::ClosedLoop(spec),
        &RunConfig::experiment(ProtocolKind::Arrow, service),
    );
    outcome.hops_per_request
}

fn bench_fig11(c: &mut Criterion) {
    let requests_per_node = 200;
    let mut group = c.benchmark_group("fig11_hops_per_request");
    for &n in &[8usize, 16, 32, 64, 76] {
        let hops = arrow_hops(n, requests_per_node);
        println!("fig11 n={n}: {hops:.3} inter-processor queue() messages per request");
        group.bench_with_input(BenchmarkId::new("arrow", n), &n, |b, &n| {
            b.iter(|| arrow_hops(n, requests_per_node))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11
}
criterion_main!(benches);
