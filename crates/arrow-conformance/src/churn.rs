//! The churn path of the sweep: fault-injected cases across all three tiers.
//!
//! A [`ReplayCase`] with a non-empty fault list cannot be held to the fault-free
//! invariant suite — requests may be delayed across recovery epochs, each epoch
//! builds its own order chain, and a crashed node rejects acquires until it is
//! restarted and re-adopted by an epoch bump. What *is* checkable, identically on
//! every tier, is the **churn contract**:
//!
//! * **liveness** — every request a worker issued is eventually granted (workers
//!   retry through crashes with a bounded per-attempt timeout; exhausting the
//!   retry budget is a violation, not a hang);
//! * **per-epoch order integrity** — the epoch-stamped successor records form
//!   fork-free chains per `(object, epoch)` group, and the final epoch forms one
//!   complete chain per object from the virtual root
//!   ([`validate_churn_records`]);
//! * **terminal convergence** — the run drains at the schedule's final epoch
//!   (`fault count` bumps), i.e. recovery actually caught every injected fault.
//!
//! The simulator replays the fault schedule in virtual time
//! ([`run_schedule_faulted`]); the thread and socket tiers pace the same schedule
//! on the wall clock through their fault handles ([`FaultHandle`](arrow_core::live::FaultHandle),
//! [`arrow_net::NetFaultHandle`]) while replay workers run the case's
//! `(node, object)` acquire sequences with retries. Because a live grant can be
//! lost to a crash *after* injection has finished (no further epoch bump will
//! re-issue it), a worker whose attempt times out after the injector is done
//! re-broadcasts the final epoch — an idempotent recovery nudge, exactly the
//! timeout-as-detection rule a real deployment would use.
//!
//! Each tier also reports how many **token regenerations** it observed (order
//! records chained behind the virtual root in a bumped epoch — evidence the
//! directory rebuilt a token that churn destroyed), which the sweep surfaces so a
//! fault run visibly exercised recovery rather than dodging it.

use crate::case::ReplayCase;
use crate::invariants::{InvariantKind, Violation};
use arrow_core::driver::acquire_sequences;
use arrow_core::live::ArrowRuntime;
use arrow_core::prelude::*;
use arrow_net::{NetConfig, NetRuntime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-attempt grant timeout for live-tier churn workers. Long enough for a
/// token to cross an instant-latency mesh even under injection, short enough
/// that a worker stuck behind a crash re-checks (and possibly re-heals) quickly.
const ATTEMPT_TIMEOUT_MS: u64 = 300;

/// Retry budget per acquire. `ATTEMPT_TIMEOUT_MS × MAX_ATTEMPTS` (60 s) bounds
/// the sweep's worst case; a genuinely lost token fails the liveness contract
/// long before a CI timeout would.
const MAX_ATTEMPTS: u32 = 200;

/// Wall-clock duration of one fault-schedule tick in the live tiers — long
/// enough that protocol traffic actually flows between consecutive faults.
const TICK: Duration = Duration::from_millis(15);

/// What one tier observed running a churn case.
struct TierChurn {
    violations: Vec<Violation>,
    token_regenerations: u64,
}

fn churn_violation(tier: &str, detail: String) -> Violation {
    Violation {
        invariant: InvariantKind::ChurnContract,
        tier: tier.to_string(),
        detail,
    }
}

/// Run one fault-injected case through every applicable tier. Returns the tiers
/// run, all violations, and the total token regenerations observed across tiers.
pub fn run_churn_case(
    case: &ReplayCase,
    include_thread: bool,
    include_net: bool,
) -> (Vec<String>, Vec<Violation>, u64) {
    let instance = case.spec.build_instance();
    let schedule = case.schedule();
    let faults = case.fault_schedule();
    let mut tiers_run = Vec::new();
    let mut violations = Vec::new();
    let mut regenerations = 0u64;

    if let Err(e) = faults.validate(instance.tree()) {
        // A bad schedule (hand-edited replay, shrink bug) fails the case up
        // front on every tier rather than panicking inside one of them.
        violations.push(churn_violation("schedule", e));
        return (tiers_run, violations, regenerations);
    }
    if let Some(r) = schedule
        .requests()
        .iter()
        .find(|r| r.node >= instance.node_count())
    {
        violations.push(churn_violation(
            "schedule",
            format!("schedule names node {} outside the instance", r.node),
        ));
        return (tiers_run, violations, regenerations);
    }

    // The simulator config also drives the live tiers' retry pacing: the churn
    // runners read the (lowered) grant timeout as their per-attempt budget.
    let cfg = case
        .spec
        .run_config(ProtocolKind::Arrow)
        .with_grant_timeout_ms(ATTEMPT_TIMEOUT_MS);

    // Tier 1: deterministic virtual-time churn on the simulator.
    tiers_run.push("sim".to_string());
    match run_schedule_faulted(&instance, &schedule, &cfg, &faults) {
        Err(e) => violations.push(churn_violation("sim", e.to_string())),
        Ok(outcome) => {
            if let Err(e) = outcome.validate() {
                violations.push(churn_violation("sim", e.to_string()));
            }
            regenerations += outcome.token_regenerations();
        }
    }

    // Tiers 2 and 3: the same schedule paced on the wall clock.
    if include_thread {
        tiers_run.push("thread".to_string());
        let t = run_thread_churn(&instance, &schedule, &faults, &cfg);
        violations.extend(t.violations);
        regenerations += t.token_regenerations;
    }
    if include_net {
        tiers_run.push("net".to_string());
        let t = run_net_churn(&instance, &schedule, &faults, &cfg);
        violations.extend(t.violations);
        regenerations += t.token_regenerations;
    }
    (tiers_run, violations, regenerations)
}

/// Thread-tier churn: in-process runtime + wall-clock fault injection.
fn run_thread_churn(
    instance: &Instance,
    schedule: &RequestSchedule,
    faults: &FaultSchedule,
    cfg: &RunConfig,
) -> TierChurn {
    let tier = "thread";
    let final_epoch = faults.final_epoch();
    let attempt = cfg.grant_timeout();
    let k = schedule.object_id_bound().max(1);
    let rt = ArrowRuntime::spawn_multi(instance.tree(), k);
    let fh = rt.fault_handle();
    let injector_done = Arc::new(AtomicBool::new(false));
    let injector = {
        let fh = fh.clone();
        let tree = instance.tree().clone();
        let faults = faults.clone();
        let done = Arc::clone(&injector_done);
        std::thread::spawn(move || {
            fh.run_schedule(&faults, &tree, TICK);
            done.store(true, Ordering::SeqCst);
        })
    };
    let mut workers = Vec::new();
    for ((node, obj), count) in acquire_sequences(schedule) {
        let h = rt.handle(node);
        let fh = fh.clone();
        let done = Arc::clone(&injector_done);
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            for _ in 0..count {
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    if attempts > MAX_ATTEMPTS {
                        return Err(format!(
                            "node {node} {obj}: no grant within {MAX_ATTEMPTS} attempts"
                        ));
                    }
                    match h.acquire_object_timeout(obj, attempt) {
                        Some(req) => {
                            h.release_object(obj, req);
                            break;
                        }
                        None => {
                            // Crashed-node rejection or a grant lost to churn:
                            // once injection is over a timeout doubles as fault
                            // detection, and re-broadcasting the final epoch is
                            // an idempotent heal.
                            if done.load(Ordering::SeqCst) {
                                fh.broadcast_epoch(final_epoch);
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            }
            Ok(())
        }));
    }
    let mut violations = Vec::new();
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(detail)) => violations.push(churn_violation(tier, detail)),
            Err(_) => violations.push(churn_violation(
                tier,
                "a churn replay worker panicked".to_string(),
            )),
        }
    }
    injector.join().ok();
    let report = rt.shutdown_report();
    if let Err(e) = validate_churn_records(report.records(), final_epoch) {
        violations.push(churn_violation(tier, e.to_string()));
    }
    let token_regenerations = report
        .records()
        .iter()
        .filter(|r| r.epoch > 0 && r.predecessor.is_root())
        .count() as u64;
    TierChurn {
        violations,
        token_regenerations,
    }
}

/// Socket-tier churn: loopback-TCP runtime in fault-tolerant mode (an
/// unreachable peer drops the frame for epoch recovery to compensate, instead of
/// failing the whole mesh) + wall-clock fault injection severing real links.
fn run_net_churn(
    instance: &Instance,
    schedule: &RequestSchedule,
    faults: &FaultSchedule,
    cfg: &RunConfig,
) -> TierChurn {
    let tier = "net";
    let final_epoch = faults.final_epoch();
    let attempt = cfg.grant_timeout();
    let k = schedule.object_id_bound().max(1);
    let net_cfg = NetConfig::instant()
        .with_fault_tolerance()
        .with_dial_retries(1);
    let rt = NetRuntime::spawn_multi(instance.tree(), k, net_cfg);
    let fh = rt.fault_handle();
    let injector_done = Arc::new(AtomicBool::new(false));
    let injector = {
        let fh = fh.clone();
        let tree = instance.tree().clone();
        let faults = faults.clone();
        let done = Arc::clone(&injector_done);
        std::thread::spawn(move || {
            fh.run_schedule(&faults, &tree, TICK);
            done.store(true, Ordering::SeqCst);
        })
    };
    let mut workers = Vec::new();
    for ((node, obj), count) in acquire_sequences(schedule) {
        let h = rt.handle(node);
        let fh = fh.clone();
        let done = Arc::clone(&injector_done);
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            for _ in 0..count {
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    if attempts > MAX_ATTEMPTS {
                        return Err(format!(
                            "node {node} {obj}: no grant within {MAX_ATTEMPTS} attempts"
                        ));
                    }
                    match h.try_acquire_object_timeout(obj, attempt) {
                        Ok(req) => {
                            h.release_object(obj, req);
                            break;
                        }
                        Err(_) => {
                            if done.load(Ordering::SeqCst) {
                                fh.broadcast_epoch(final_epoch);
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            }
            Ok(())
        }));
    }
    let mut violations = Vec::new();
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(detail)) => violations.push(churn_violation(tier, detail)),
            Err(_) => violations.push(churn_violation(
                tier,
                "a churn replay worker panicked".to_string(),
            )),
        }
    }
    injector.join().ok();
    let report = rt.shutdown();
    if let Err(e) = report.validate_churn(final_epoch) {
        violations.push(churn_violation(tier, e.to_string()));
    }
    // In fault-tolerant mode the failure list should stay empty: transient
    // acquire rejections surface to workers (who retry), not the mesh.
    for f in report.failures() {
        violations.push(churn_violation(
            tier,
            format!("node {}: {}", f.node, f.description),
        ));
    }
    let token_regenerations = report.token_regenerations() as u64;
    TierChurn {
        violations,
        token_regenerations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseSpec, GraphKind, WorkloadKind};

    fn fault_spec(seed: u64) -> CaseSpec {
        CaseSpec {
            seed,
            nodes: 7,
            graph: GraphKind::Complete,
            tree: SpanningTreeKind::BalancedBinary,
            objects: 2,
            requests: 10,
            workload: WorkloadKind::Zipf,
            sync: SyncMode::Synchronous,
            async_lo: 0.05,
        }
    }

    #[test]
    fn a_faulted_case_passes_the_churn_contract_on_all_three_tiers() {
        let case = ReplayCase::generate_with_faults(fault_spec(3), 2);
        assert!(!case.faults.is_empty());
        let (tiers, violations, _regens) = run_churn_case(&case, true, true);
        assert_eq!(tiers, ["sim", "thread", "net"]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn an_invalid_fault_schedule_is_a_violation_not_a_panic() {
        let mut case = ReplayCase::generate(fault_spec(4));
        // Crash without a restart: terminally dirty, rejected by validation.
        case.faults = vec![FaultEvent {
            at: 1,
            action: FaultAction::CrashNode(3),
        }];
        let (tiers, violations, _) = run_churn_case(&case, true, true);
        assert!(tiers.is_empty());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, InvariantKind::ChurnContract);
        assert!(violations[0].detail.contains("still crashed"));
    }
}
