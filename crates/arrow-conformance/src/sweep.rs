//! The differential sweep: seeded cases × tiers × invariants.
//!
//! For every generated [`ReplayCase`] the sweep runs, where applicable:
//!
//! 1. **sim** — the arrow protocol on the deterministic simulator (traced), held
//!    to every invariant including per-link FIFO and the Theorem 3.19 latency
//!    bound (sync, single-object);
//! 2. **sim-centralized** — the centralized baseline on the same schedule, as a
//!    differential reference (same exactly-once/token/multiset contracts);
//! 3. **thread** — the in-process thread runtime;
//! 4. **net** — the socket runtime over loopback TCP.
//!
//! Any violation (or typed [`RunError`]) fails the case; failing cases are
//! shrunk ([`crate::shrink::shrink`]) and can be written out as one-command
//! replay files.
//!
//! With [`SweepOptions::fault_episodes`] `> 0` every case additionally carries a
//! seeded fault schedule (crashes, restarts, link drops) and runs the churn
//! contract ([`crate::churn`]) on the sim, thread and net tiers instead of the
//! fault-free suite; the report then also counts observed token regenerations.

use crate::case::{CaseSpec, GraphKind, ReplayCase, WorkloadKind};
use crate::invariants::{self, InvariantKind, Violation};
use crate::net_driver::NetDriver;
use arrow_core::driver::{Driver, SimDriver, ThreadDriver};
use arrow_core::prelude::*;
use desim::{SimConfig, SimRng};
use netgraph::spanning::SpanningTreeKind;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// What a sweep should run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Number of generated cases.
    pub cases: usize,
    /// Master seed; case `i` derives its spec from `master_seed + i`.
    pub master_seed: u64,
    /// Maximum node budget per case.
    pub max_nodes: usize,
    /// Maximum request budget per case.
    pub max_requests: usize,
    /// Run the thread tier.
    pub include_thread: bool,
    /// Run the socket tier.
    pub include_net: bool,
    /// Shrink failing cases before reporting them.
    pub shrink_failures: bool,
    /// Directory to write replay files for failing cases into (created on first
    /// failure); `None` disables replay files.
    pub replay_dir: Option<PathBuf>,
    /// Maximum fault episodes injected per case (`0` = fault-free sweep). When
    /// positive, every case carries a seeded [`arrow_core::prelude::FaultSchedule`]
    /// and is held to the churn contract ([`crate::churn`]) instead of the
    /// fault-free invariant suite.
    pub fault_episodes: usize,
    /// Directory for causal-trace exports (`--trace`): every fault-free case's
    /// sim tier is re-run with recording probes, held to the
    /// [`InvariantKind::TraceCoverage`] contract (every issued request leaves a
    /// complete hop chain whose cost matches the validated order's `c_A`
    /// adjacency), and written as Chrome trace-event JSON
    /// (`case-<seed>.trace.json`, see [`crate::trace`]). `None` disables
    /// tracing.
    pub trace_dir: Option<PathBuf>,
}

impl SweepOptions {
    /// The fast CI profile: 32 shrunk-size cases, every tier, fixed seed block.
    pub fn smoke() -> Self {
        SweepOptions {
            cases: 32,
            master_seed: 0xC0FFEE,
            max_nodes: 12,
            max_requests: 24,
            include_thread: true,
            include_net: true,
            shrink_failures: true,
            replay_dir: None,
            fault_episodes: 0,
            trace_dir: None,
        }
    }

    /// A deeper profile for local runs: more and larger cases, same contracts.
    pub fn full() -> Self {
        SweepOptions {
            cases: 256,
            master_seed: 0xC0FFEE,
            max_nodes: 48,
            max_requests: 160,
            include_thread: true,
            include_net: true,
            shrink_failures: true,
            replay_dir: Some(PathBuf::from("conformance-failures")),
            fault_episodes: 0,
            trace_dir: None,
        }
    }
}

/// Result of one case: which tiers ran and what they violated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    /// Index of the case within the sweep.
    pub index: usize,
    /// The (possibly shrunk) case.
    pub case: ReplayCase,
    /// Names of the tiers that executed.
    pub tiers_run: Vec<String>,
    /// Violations across all tiers (empty = case passed).
    pub violations: Vec<Violation>,
    /// Path of the replay file written for this failure, if any.
    pub replay_path: Option<String>,
}

/// Summary of a whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Cases executed.
    pub cases: usize,
    /// Total requests across all cases.
    pub total_requests: usize,
    /// Per-tier execution counts `(tier, cases run)`.
    pub tier_counts: Vec<(String, usize)>,
    /// Failing cases (shrunk when enabled), with their violations.
    pub failures: Vec<CaseResult>,
    /// Total fault events injected across all cases (0 for a fault-free sweep).
    pub fault_events: usize,
    /// Token regenerations observed across all cases and tiers: order chains
    /// rebuilt behind the virtual root in a recovery epoch — direct evidence the
    /// sweep destroyed and regenerated tokens rather than merely surviving
    /// benign faults.
    pub token_regenerations: u64,
}

impl SweepReport {
    /// True if every case passed every invariant on every tier.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Derive case `i`'s spec from the sweep options (deterministic in
/// `master_seed + i`): a seeded walk over the topology/workload/synchrony menus.
pub fn derive_spec(opts: &SweepOptions, i: usize) -> CaseSpec {
    let seed = opts.master_seed.wrapping_add(i as u64);
    let mut rng = SimRng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let graph = GraphKind::ALL[rng.index(GraphKind::ALL.len())];
    // Star/BalancedBinary require a complete graph; pick trees per graph.
    let tree = if graph == GraphKind::Complete {
        [
            SpanningTreeKind::ShortestPath,
            SpanningTreeKind::Star,
            SpanningTreeKind::BalancedBinary,
            SpanningTreeKind::MinimumCommunication,
        ][rng.index(4)]
    } else {
        [
            SpanningTreeKind::ShortestPath,
            SpanningTreeKind::MinimumWeight,
            SpanningTreeKind::MinimumCommunication,
        ][rng.index(3)]
    };
    let objects = [1, 1, 2, 4][rng.index(4)];
    let workload = if objects > 1 {
        WorkloadKind::Zipf
    } else {
        WorkloadKind::ALL[rng.index(WorkloadKind::ALL.len())]
    };
    let nodes = 4 + rng.index(opts.max_nodes.saturating_sub(3).max(1));
    let requests = 4 + rng.index(opts.max_requests.saturating_sub(3).max(1));
    let sync = if rng.index(2) == 0 {
        SyncMode::Synchronous
    } else {
        SyncMode::Asynchronous
    };
    CaseSpec {
        seed,
        nodes,
        graph,
        tree,
        objects,
        requests,
        workload,
        sync,
        async_lo: SimConfig::DEFAULT_ASYNC_LO,
    }
}

fn violations_from_error(tier: &str, err: &RunError) -> Vec<Violation> {
    vec![Violation {
        invariant: InvariantKind::RunFailed,
        tier: tier.to_string(),
        detail: err.to_string(),
    }]
}

/// Run one case through every applicable tier and collect violations.
pub fn run_case(case: &ReplayCase, opts: &SweepOptions) -> (Vec<String>, Vec<Violation>) {
    let (tiers, violations, _) = run_case_counted(case, opts);
    (tiers, violations)
}

/// [`run_case`] plus the number of token regenerations observed (always `0` on
/// the fault-free path; the sweep surfaces the total so a fault run visibly
/// exercised recovery).
pub fn run_case_counted(
    case: &ReplayCase,
    opts: &SweepOptions,
) -> (Vec<String>, Vec<Violation>, u64) {
    if !case.faults.is_empty() {
        // Fault-injected case: the churn contract replaces the fault-free suite
        // (no centralized baseline, no latency bound — epochs reshape both).
        return crate::churn::run_churn_case(case, opts.include_thread, opts.include_net);
    }
    let (tiers, violations) = run_case_fault_free(case, opts);
    (tiers, violations, 0)
}

fn run_case_fault_free(case: &ReplayCase, opts: &SweepOptions) -> (Vec<String>, Vec<Violation>) {
    let instance = case.spec.build_instance();
    let schedule = case.schedule();
    let expected = invariants::request_multiset(&schedule);
    let mut tiers_run = Vec::new();
    let mut violations = Vec::new();
    let n = instance.node_count();

    // Tier 1: simulator, traced, arrow.
    let arrow_cfg = case.spec.run_config(ProtocolKind::Arrow);
    tiers_run.push("sim".to_string());
    match run_schedule_traced(&instance, &schedule, &arrow_cfg) {
        Err(e) => violations.extend(violations_from_error("sim", &e)),
        Ok((outcome, trace)) => {
            violations.extend(invariants::check_exactly_once("sim", &outcome));
            violations.extend(invariants::check_token_conservation("sim", &outcome));
            violations.extend(invariants::check_message_sanity("sim", &outcome, n));
            violations.extend(invariants::check_per_link_fifo("sim", &trace));
            violations.extend(invariants::check_cross_tier("sim", &expected, &outcome));
            if case.spec.sync == SyncMode::Synchronous && schedule.object_id_bound() == 1 {
                violations.extend(invariants::check_latency_bound(
                    "sim",
                    &instance,
                    &schedule,
                    outcome.total_latency,
                ));
            }
        }
    }

    // Tier 1b: the centralized baseline as a differential reference.
    let central_cfg = case.spec.run_config(ProtocolKind::Centralized);
    tiers_run.push("sim-centralized".to_string());
    match SimDriver.run(&instance, &schedule, &central_cfg) {
        Err(e) => violations.extend(violations_from_error("sim-centralized", &e)),
        Ok(outcome) => {
            violations.extend(invariants::check_exactly_once("sim-centralized", &outcome));
            violations.extend(invariants::check_token_conservation(
                "sim-centralized",
                &outcome,
            ));
            violations.extend(invariants::check_message_sanity(
                "sim-centralized",
                &outcome,
                n,
            ));
            violations.extend(invariants::check_cross_tier(
                "sim-centralized",
                &expected,
                &outcome,
            ));
        }
    }

    // Tiers 2 and 3: the live runtimes (arrow only; ids/times are theirs, the
    // request multiset and the queuing contracts are not).
    let live_drivers: Vec<(&'static str, Box<dyn Driver>)> = {
        let mut drivers: Vec<(&'static str, Box<dyn Driver>)> = Vec::new();
        if opts.include_thread {
            drivers.push(("thread", Box::new(ThreadDriver)));
        }
        if opts.include_net {
            drivers.push(("net", Box::new(NetDriver::default())));
        }
        drivers
    };
    for (tier, driver) in live_drivers {
        if !driver.supports(&arrow_cfg) {
            continue;
        }
        tiers_run.push(tier.to_string());
        match driver.run(&instance, &schedule, &arrow_cfg) {
            Err(e) => violations.extend(violations_from_error(tier, &e)),
            Ok(outcome) => {
                violations.extend(invariants::check_exactly_once(tier, &outcome));
                violations.extend(invariants::check_token_conservation(tier, &outcome));
                violations.extend(invariants::check_message_sanity(tier, &outcome, n));
                violations.extend(invariants::check_cross_tier(tier, &expected, &outcome));
            }
        }
    }

    (tiers_run, violations)
}

/// Run the full differential sweep described by `opts`.
pub fn run_sweep(opts: &SweepOptions) -> SweepReport {
    let mut total_requests = 0usize;
    let mut tier_counts: Vec<(String, usize)> = Vec::new();
    let mut failures = Vec::new();
    let mut fault_events = 0usize;
    let mut token_regenerations = 0u64;
    for i in 0..opts.cases {
        let spec = derive_spec(opts, i);
        let case = if opts.fault_episodes > 0 {
            ReplayCase::generate_with_faults(spec, opts.fault_episodes)
        } else {
            ReplayCase::generate(spec)
        };
        total_requests += case.requests.len();
        fault_events += case.faults.len();
        let (tiers_run, mut violations, regens) = run_case_counted(&case, opts);
        token_regenerations += regens;
        if let Some(dir) = &opts.trace_dir {
            // Probed re-run of the sim tier: coverage failures fail the sweep
            // like any other invariant (fault cases are skipped inside).
            let (trace_violations, _) = crate::trace::trace_case(&case, Some(dir));
            violations.extend(trace_violations);
        }
        for tier in &tiers_run {
            match tier_counts.iter_mut().find(|(t, _)| t == tier) {
                Some((_, c)) => *c += 1,
                None => tier_counts.push((tier.clone(), 1)),
            }
        }
        if violations.is_empty() {
            continue;
        }
        let reported_case = if opts.shrink_failures {
            crate::shrink::shrink(&case, |candidate| !run_case(candidate, opts).1.is_empty())
        } else {
            case.clone()
        };
        // Re-derive the violations only when shrinking actually changed the case,
        // so the report matches the replay file exactly; otherwise the violations
        // in hand already describe it — no need for another multi-tier run.
        let final_violations = if reported_case == case {
            violations
        } else {
            let (_, shrunk_violations) = run_case(&reported_case, opts);
            if shrunk_violations.is_empty() {
                // Nondeterministic (live-tier) failure that did not reproduce on
                // the confirmation run: report the original observation.
                violations
            } else {
                shrunk_violations
            }
        };
        let replay_path = opts.replay_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("case-{}.replay", reported_case.spec.seed));
            let _ = std::fs::write(&path, reported_case.to_replay_text());
            // Attach the causal trace of the (shrunk) failing case next to its
            // replay file, so the repro ships with the hop-level story.
            // Best effort: a fault-injected or crashing case simply has none.
            let _ = crate::trace::trace_case(&reported_case, Some(dir));
            path.display().to_string()
        });
        failures.push(CaseResult {
            index: i,
            case: reported_case,
            tiers_run,
            violations: final_violations,
            replay_path,
        });
    }
    SweepReport {
        cases: opts.cases,
        total_requests,
        tier_counts,
        failures,
        fault_events,
        token_regenerations,
    }
}

/// Re-run one replay file's case (the one-command repro path of the
/// `conformance` binary). Returns the tiers run and any violations.
pub fn run_replay(
    text: &str,
    opts: &SweepOptions,
) -> Result<(Vec<String>, Vec<Violation>), String> {
    let case = ReplayCase::from_replay_text(text)?;
    Ok(run_case(&case, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_spec_is_deterministic_and_in_budget() {
        let opts = SweepOptions::smoke();
        for i in 0..16 {
            let a = derive_spec(&opts, i);
            let b = derive_spec(&opts, i);
            assert_eq!(a, b);
            assert!(a.nodes <= opts.max_nodes, "case {i}: {} nodes", a.nodes);
            assert!(a.requests <= opts.max_requests);
            assert!(a.objects >= 1);
            if a.objects > 1 {
                assert_eq!(a.workload, WorkloadKind::Zipf);
            }
        }
    }

    #[test]
    fn a_single_smoke_case_passes_all_tiers() {
        let opts = SweepOptions::smoke();
        let case = ReplayCase::generate(derive_spec(&opts, 0));
        let (tiers, violations) = run_case(&case, &opts);
        assert!(tiers.iter().any(|t| t == "sim"));
        assert!(tiers.iter().any(|t| t == "thread"));
        assert!(tiers.iter().any(|t| t == "net"));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn sim_only_mini_sweep_passes() {
        let mut opts = SweepOptions::smoke();
        opts.cases = 6;
        opts.include_thread = false;
        opts.include_net = false;
        let report = run_sweep(&opts);
        assert!(report.all_passed(), "{:?}", report.failures);
        assert_eq!(report.cases, 6);
        assert!(report.total_requests > 0);
        assert!(report
            .tier_counts
            .iter()
            .any(|(t, c)| t == "sim" && *c == 6));
    }
}
