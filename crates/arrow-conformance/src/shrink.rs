//! Automatic case shrinking: make a failing case as small as it will go while the
//! failure keeps reproducing.
//!
//! A delta-debugging-style loop over the explicit request list (drop halves, then
//! quarters, … down to single requests), followed by a node-count reduction pass
//! (rebuild the topology with just enough nodes to cover the surviving requests).
//! The predicate is arbitrary — the sweep passes "re-running the case still
//! produces at least one violation" — and every accepted step re-runs it, so the
//! shrunk case is a genuine repro, not a guess.

use crate::case::ReplayCase;

/// Upper bound on predicate evaluations, so a flaky failure cannot spin the
/// shrinker forever (live tiers are nondeterministic; a failure that reproduces
/// only sometimes will simply shrink less).
const MAX_CHECKS: usize = 200;

/// Shrink `case` while `fails` keeps returning true for the candidate. Returns
/// the smallest reproducing case found (possibly the input itself).
pub fn shrink(case: &ReplayCase, mut fails: impl FnMut(&ReplayCase) -> bool) -> ReplayCase {
    let mut current = case.clone();
    let mut checks = 0usize;

    // Pass 1: drop request chunks, halving the chunk size until single requests.
    let mut chunk = current.requests.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.requests.len() && checks < MAX_CHECKS {
            let end = (start + chunk).min(current.requests.len());
            let mut candidate = current.clone();
            candidate.requests.drain(start..end);
            if candidate.requests.is_empty() {
                start = end;
                continue;
            }
            checks += 1;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if checks >= MAX_CHECKS {
            break;
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = chunk.div_ceil(2).max(1);
        }
    }

    // Pass 2: shrink the node budget to just cover the surviving requests.
    let max_node = current
        .requests
        .iter()
        .map(|&(node, _, _)| node)
        .max()
        .unwrap_or(0);
    if max_node + 1 < current.spec.nodes && checks < MAX_CHECKS {
        let mut candidate = current.clone();
        candidate.spec.nodes = (max_node + 1).max(2);
        if fails(&candidate) {
            current = candidate;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseSpec, GraphKind, WorkloadKind};
    use arrow_core::prelude::SyncMode;
    use netgraph::spanning::SpanningTreeKind;

    fn case_with_requests(n: usize) -> ReplayCase {
        let spec = CaseSpec {
            seed: 1,
            nodes: 12,
            graph: GraphKind::Complete,
            tree: SpanningTreeKind::BalancedBinary,
            objects: 1,
            requests: n,
            workload: WorkloadKind::UniformRandom,
            sync: SyncMode::Synchronous,
            async_lo: 0.05,
        };
        ReplayCase::generate(spec)
    }

    #[test]
    fn shrinks_to_the_single_triggering_request() {
        // "Failure" = any request at node 5 present.
        let case = case_with_requests(24);
        assert!(case.requests.iter().any(|&(node, _, _)| node == 5));
        let shrunk = shrink(&case, |c| c.requests.iter().any(|&(n, _, _)| n == 5));
        assert_eq!(shrunk.requests.len(), 1, "{:?}", shrunk.requests);
        assert_eq!(shrunk.requests[0].0, 5);
        // Node budget shrank too (nodes above 5 are unused).
        assert_eq!(shrunk.spec.nodes, 6);
    }

    #[test]
    fn shrinking_a_non_reproducing_case_returns_it_unchanged() {
        let case = case_with_requests(8);
        let shrunk = shrink(&case, |_| false);
        assert_eq!(shrunk, case);
    }

    #[test]
    fn shrinking_needs_pairs_when_the_failure_needs_two_requests() {
        // Failure requires at least two requests from distinct nodes.
        let case = case_with_requests(20);
        let shrunk = shrink(&case, |c| {
            let mut nodes: Vec<usize> = c.requests.iter().map(|&(n, _, _)| n).collect();
            nodes.sort_unstable();
            nodes.dedup();
            nodes.len() >= 2
        });
        assert_eq!(shrunk.requests.len(), 2, "{:?}", shrunk.requests);
    }
}
