//! Automatic case shrinking: make a failing case as small as it will go while the
//! failure keeps reproducing.
//!
//! A delta-debugging-style loop over the explicit request list (drop halves, then
//! quarters, … down to single requests), followed by a node-count reduction pass
//! (rebuild the topology with just enough nodes to cover the surviving requests).
//! The predicate is arbitrary — the sweep passes "re-running the case still
//! produces at least one violation" — and every accepted step re-runs it, so the
//! shrunk case is a genuine repro, not a guess.
//!
//! Fault-injected cases get an extra leading pass over the fault schedule. Events
//! cannot be dropped one at a time — removing a crash while keeping its restart
//! (or a drop while keeping its restore) produces a schedule
//! [`FaultSchedule::validate`](arrow_core::prelude::FaultSchedule::validate)
//! rejects — so the shrinker works at **episode**
//! granularity: events are grouped by their recovery target (the crashed node,
//! or the dropped link a partition lowers to) and whole groups are dropped while
//! the failure keeps reproducing. Every candidate — including the node-reduction
//! pass, which could otherwise orphan a fault's target — is additionally gated on
//! schedule validity against the candidate's own tree, so a shrunk replay file
//! always re-runs.

use crate::case::ReplayCase;
use arrow_core::prelude::{FaultAction, FaultEvent};
use netgraph::NodeId;

/// Upper bound on predicate evaluations, so a flaky failure cannot spin the
/// shrinker forever (live tiers are nondeterministic; a failure that reproduces
/// only sometimes will simply shrink less).
const MAX_CHECKS: usize = 200;

/// The recovery target a fault event belongs to: crash/restart episodes key on
/// the node, link episodes on the normalized edge (a tree partition is keyed on
/// the parent edge it lowers to, pairing it with its `RestoreLink`). Dropping
/// *all* events of one target leaves every other target's alternation history
/// untouched, so validity is preserved episode by episode.
#[derive(PartialEq, Eq, Clone, Copy)]
enum FaultTarget {
    Node(NodeId),
    Link(NodeId, NodeId),
}

fn fault_target(event: &FaultEvent, case: &ReplayCase) -> FaultTarget {
    match event.action {
        FaultAction::CrashNode(v) | FaultAction::RestartNode(v) => FaultTarget::Node(v),
        FaultAction::DropLink(u, v) | FaultAction::RestoreLink(u, v) => {
            FaultTarget::Link(u.min(v), u.max(v))
        }
        FaultAction::PartitionTree(v) => {
            let instance = case.spec.build_instance();
            match instance.tree().parent(v) {
                Some(p) => FaultTarget::Link(v.min(p), v.max(p)),
                // Root or out-of-range target: an invalid schedule; key on the
                // node so the group is still well-defined.
                None => FaultTarget::Node(v),
            }
        }
    }
}

/// True if the candidate's fault schedule (possibly empty) is valid against the
/// candidate's own tree — the gate every shrink step must pass so the shrunk
/// case remains runnable.
fn faults_valid(case: &ReplayCase) -> bool {
    case.faults.is_empty()
        || case
            .fault_schedule()
            .validate(case.spec.build_instance().tree())
            .is_ok()
}

/// Shrink `case` while `fails` keeps returning true for the candidate. Returns
/// the smallest reproducing case found (possibly the input itself).
pub fn shrink(case: &ReplayCase, mut fails: impl FnMut(&ReplayCase) -> bool) -> ReplayCase {
    let mut current = case.clone();
    let mut checks = 0usize;

    // Pass 0: drop whole fault episodes (ddmin over recovery targets) while the
    // failure keeps reproducing. Removing the last group turns the case
    // fault-free, which is accepted only if the failure survives without churn.
    loop {
        let mut progressed = false;
        let mut tried: Vec<FaultTarget> = Vec::new();
        let mut i = 0;
        while i < current.faults.len() && checks < MAX_CHECKS {
            let target = fault_target(&current.faults[i], &current);
            if tried.contains(&target) {
                i += 1;
                continue;
            }
            tried.push(target);
            let mut candidate = current.clone();
            candidate
                .faults
                .retain(|e| fault_target(e, &current) != target);
            if !faults_valid(&candidate) {
                i += 1;
                continue;
            }
            checks += 1;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Restart the scan: indices shifted under us.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !progressed || checks >= MAX_CHECKS {
            break;
        }
    }

    // Pass 1: drop request chunks, halving the chunk size until single requests.
    let mut chunk = current.requests.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.requests.len() && checks < MAX_CHECKS {
            let end = (start + chunk).min(current.requests.len());
            let mut candidate = current.clone();
            candidate.requests.drain(start..end);
            if candidate.requests.is_empty() {
                start = end;
                continue;
            }
            checks += 1;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if checks >= MAX_CHECKS {
            break;
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = chunk.div_ceil(2).max(1);
        }
    }

    // Pass 2: shrink the node budget to just cover the surviving requests.
    let max_node = current
        .requests
        .iter()
        .map(|&(node, _, _)| node)
        .max()
        .unwrap_or(0);
    if max_node + 1 < current.spec.nodes && checks < MAX_CHECKS {
        let mut candidate = current.clone();
        candidate.spec.nodes = (max_node + 1).max(2);
        // A smaller tree must still host every fault target (and keep the
        // schedule's root/alternation contract) or the shrunk file won't re-run.
        if faults_valid(&candidate) && fails(&candidate) {
            current = candidate;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseSpec, GraphKind, WorkloadKind};
    use arrow_core::prelude::SyncMode;
    use netgraph::spanning::SpanningTreeKind;

    fn case_with_requests(n: usize) -> ReplayCase {
        let spec = CaseSpec {
            seed: 1,
            nodes: 12,
            graph: GraphKind::Complete,
            tree: SpanningTreeKind::BalancedBinary,
            objects: 1,
            requests: n,
            workload: WorkloadKind::UniformRandom,
            sync: SyncMode::Synchronous,
            async_lo: 0.05,
        };
        ReplayCase::generate(spec)
    }

    #[test]
    fn shrinks_to_the_single_triggering_request() {
        // "Failure" = any request at node 5 present.
        let case = case_with_requests(24);
        assert!(case.requests.iter().any(|&(node, _, _)| node == 5));
        let shrunk = shrink(&case, |c| c.requests.iter().any(|&(n, _, _)| n == 5));
        assert_eq!(shrunk.requests.len(), 1, "{:?}", shrunk.requests);
        assert_eq!(shrunk.requests[0].0, 5);
        // Node budget shrank too (nodes above 5 are unused).
        assert_eq!(shrunk.spec.nodes, 6);
    }

    #[test]
    fn shrinking_a_non_reproducing_case_returns_it_unchanged() {
        let case = case_with_requests(8);
        let shrunk = shrink(&case, |_| false);
        assert_eq!(shrunk, case);
    }

    #[test]
    fn fault_episodes_shrink_whole_groups_and_stay_valid() {
        let mut case = case_with_requests(6);
        case.spec.graph = GraphKind::Complete;
        case.spec.tree = SpanningTreeKind::BalancedBinary;
        // Three episodes: a crash/restart of node 3, a link drop/restore of the
        // 1–4 tree edge, and a partition of node 5 (restored via its parent edge).
        case.faults = vec![
            FaultEvent {
                at: 1,
                action: FaultAction::CrashNode(3),
            },
            FaultEvent {
                at: 2,
                action: FaultAction::DropLink(1, 4),
            },
            FaultEvent {
                at: 3,
                action: FaultAction::PartitionTree(5),
            },
            FaultEvent {
                at: 4,
                action: FaultAction::RestartNode(3),
            },
            FaultEvent {
                at: 5,
                action: FaultAction::RestoreLink(4, 1),
            },
            FaultEvent {
                at: 6,
                action: FaultAction::RestoreLink(5, 2),
            },
        ];
        assert!(faults_valid(&case));
        // "Failure" = the crash of node 3 is present; everything else can go.
        let shrunk = shrink(&case, |c| {
            c.faults
                .iter()
                .any(|e| e.action == FaultAction::CrashNode(3))
        });
        assert_eq!(shrunk.faults.len(), 2, "{:?}", shrunk.faults);
        assert!(matches!(shrunk.faults[0].action, FaultAction::CrashNode(3)));
        assert!(matches!(
            shrunk.faults[1].action,
            FaultAction::RestartNode(3)
        ));
        assert!(faults_valid(&shrunk));
        // A failure independent of churn shrinks to a fault-free case.
        let fault_free = shrink(&case, |c| !c.requests.is_empty());
        assert!(fault_free.faults.is_empty());
    }

    #[test]
    fn node_reduction_never_orphans_a_fault_target() {
        let mut case = case_with_requests(4);
        case.spec.graph = GraphKind::Complete;
        case.spec.tree = SpanningTreeKind::BalancedBinary;
        // Requests all live on low nodes, but the fault targets node 10: the
        // node budget must not shrink below the fault's reach.
        case.requests = vec![(1, 0, 0), (2, 1, 0)];
        case.faults = vec![
            FaultEvent {
                at: 1,
                action: FaultAction::CrashNode(10),
            },
            FaultEvent {
                at: 2,
                action: FaultAction::RestartNode(10),
            },
        ];
        assert!(faults_valid(&case));
        let shrunk = shrink(&case, |c| !c.faults.is_empty());
        assert_eq!(shrunk.spec.nodes, 12, "kept the tree large enough");
        assert!(faults_valid(&shrunk));
    }

    #[test]
    fn shrinking_needs_pairs_when_the_failure_needs_two_requests() {
        // Failure requires at least two requests from distinct nodes.
        let case = case_with_requests(20);
        let shrunk = shrink(&case, |c| {
            let mut nodes: Vec<usize> = c.requests.iter().map(|&(n, _, _)| n).collect();
            nodes.sort_unstable();
            nodes.dedup();
            nodes.len() >= 2
        });
        assert_eq!(shrunk.requests.len(), 2, "{:?}", shrunk.requests);
    }
}
