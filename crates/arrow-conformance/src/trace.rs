//! Causal-trace integration: probed conformance runs, coverage validation and
//! Chrome trace-event export.
//!
//! `conformance --trace [DIR]` re-runs every fault-free case's sim tier with
//! recording probes ([`arrow_trace::TraceRecorder::sim_probe`]), reconstructs
//! the per-request causal chains, and holds them to the
//! [`InvariantKind::TraceCoverage`] contract:
//!
//! * every issued request leaves a trace with a **complete** hop chain
//!   (origin → … → predecessor's origin, every hop receive observed);
//! * each chain's tree-path cost equals the `c_A` adjacency
//!   `d_T(predecessor origin, origin)` of the **validated queuing order** — the
//!   same quantity the paper charges arrow for that request (equation (1)), so
//!   the trace plane and the order validators must agree exactly;
//!
//! and writes `case-<seed>.trace.json` (Chrome trace-event JSON, Perfetto-
//! loadable) into the trace directory. The same export is attached next to the
//! replay file of every failing fault-free case, so a violation ships with the
//! causal story of the run that produced it.
//!
//! Fault-injected cases are not traced: epoch recovery legitimately truncates
//! and re-issues chains, so completeness is not a contract there.

use crate::case::ReplayCase;
use crate::invariants::{InvariantKind, Violation};
use arrow_core::prelude::*;
use arrow_trace::analysis::{self, RequestTrace};
use arrow_trace::TraceRecorder;
use netgraph::RootedTree;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Chrome `ts` fields are microseconds; render one simulator time unit as one
/// millisecond so sub-unit async jitter stays visible at Perfetto's default
/// zoom.
pub const SIM_US_PER_UNIT: f64 = 1_000.0;

/// Run a case's sim tier with recording probes and reconstruct the per-request
/// causal traces alongside the validated outcome.
pub fn trace_sim_case(case: &ReplayCase) -> Result<(QueuingOutcome, Vec<RequestTrace>), RunError> {
    let instance = case.spec.build_instance();
    let schedule = case.schedule();
    let mut cfg = case.spec.run_config(ProtocolKind::Arrow);
    // The sim tier emits `ProbeEvent::Granted` when the requester learns its
    // request completed — which, for a remote origin, is the `Found`
    // acknowledgement. Without acks only locally-queued requests would ever
    // look granted and every remote chain would reconstruct as incomplete.
    cfg.ack_to_requester = true;
    let recorder = Arc::new(TraceRecorder::new());
    let outcome = arrow_core::run::run_schedule_probed(&instance, &schedule, &cfg, |v| {
        recorder.sim_probe(v)
    })?;
    let events = Arc::try_unwrap(recorder)
        .expect("sim probes flushed when the run returned")
        .finish();
    Ok((outcome, analysis::reconstruct(&events)))
}

/// Weight of the traversed tree edge `(u, v)` (direction-agnostic: one endpoint
/// is the other's parent).
fn edge_weight(tree: &RootedTree, u: usize, v: usize) -> f64 {
    if tree.parent(u) == Some(v) {
        tree.parent_edge_weight(u)
    } else {
        tree.parent_edge_weight(v)
    }
}

/// Check reconstructed traces against the validated queuing orders: every
/// request covered, every chain complete, every chain's path cost equal to the
/// order's `c_A` adjacency (`d_T` between consecutive origins, starting from
/// the root that holds each object's token initially).
pub fn check_trace_coverage(
    tier: &str,
    tree: &RootedTree,
    outcome: &QueuingOutcome,
    traces: &[RequestTrace],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut fail = |detail: String| {
        violations.push(Violation {
            invariant: InvariantKind::TraceCoverage,
            tier: tier.to_string(),
            detail,
        });
    };
    if traces.len() != outcome.request_count() {
        fail(format!(
            "{} traces reconstructed for {} issued requests",
            traces.len(),
            outcome.request_count()
        ));
    }
    let by_key: HashMap<(u32, u64), &RequestTrace> =
        traces.iter().map(|t| ((t.obj, t.req), t)).collect();
    let weight = |u: usize, v: usize| edge_weight(tree, u, v);
    for (obj, order) in &outcome.orders {
        // Every object's token starts at the tree root (the virtual root
        // request r0), so the first chain's cost is charged from there.
        let mut pred_origin = tree.root();
        for id in order.order() {
            let Some(t) = by_key.get(&(obj.0, id.0)) else {
                fail(format!("no trace for object {} request {}", obj.0, id.0));
                continue;
            };
            if !t.complete() {
                fail(format!(
                    "incomplete hop chain for object {} request {} ({} hops observed)",
                    obj.0,
                    id.0,
                    t.hops.len()
                ));
                pred_origin = t.origin;
                continue;
            }
            let queued_at = t.queued.as_ref().expect("complete implies queued").node;
            if queued_at != pred_origin {
                fail(format!(
                    "object {} request {} queued at node {queued_at}, but the validated \
                     order puts its predecessor's origin at node {pred_origin}",
                    obj.0, id.0
                ));
            }
            let want = tree.distance(pred_origin, t.origin);
            let got = t.path_cost(&weight);
            if (got - want).abs() > 1e-6 {
                fail(format!(
                    "object {} request {}: traced path cost {got} != c_A adjacency {want} \
                     (d_T({pred_origin}, {}))",
                    obj.0, id.0, t.origin
                ));
            }
            pred_origin = t.origin;
        }
    }
    violations
}

/// Export traces as Chrome trace-event JSON into `dir/case-<seed>.trace.json`,
/// validating that the emitted document parses. Returns the written path.
pub fn write_case_trace(
    dir: &Path,
    seed: u64,
    traces: &[RequestTrace],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = arrow_trace::chrome::export(traces, SIM_US_PER_UNIT);
    arrow_trace::chrome::parse_check(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let path = dir.join(format!("case-{}.trace.json", seed));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Trace one fault-free case end to end: probed sim run, coverage check, and
/// (when `dir` is given) Chrome JSON export. Returns the violations and the
/// written trace path. Fault-injected cases return no violations and no file.
pub fn trace_case(case: &ReplayCase, dir: Option<&Path>) -> (Vec<Violation>, Option<PathBuf>) {
    if !case.faults.is_empty() {
        return (Vec::new(), None);
    }
    match trace_sim_case(case) {
        Err(e) => (
            vec![Violation {
                invariant: InvariantKind::TraceCoverage,
                tier: "sim".to_string(),
                detail: format!("probed sim run failed: {e}"),
            }],
            None,
        ),
        Ok((outcome, traces)) => {
            let instance = case.spec.build_instance();
            let violations = check_trace_coverage("sim", instance.tree(), &outcome, &traces);
            let path = dir.and_then(|d| match write_case_trace(d, case.spec.seed, &traces) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!(
                        "warning: could not write trace for case {}: {e}",
                        case.spec.seed
                    );
                    None
                }
            });
            (violations, path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net_driver::NetDriver;
    use crate::sweep::{derive_spec, SweepOptions};
    use arrow_core::driver::ThreadDriver;

    fn traces_via<F>(run: F) -> (QueuingOutcome, Vec<RequestTrace>)
    where
        F: FnOnce(&Arc<TraceRecorder>) -> Result<QueuingOutcome, RunError>,
    {
        let recorder = Arc::new(TraceRecorder::new());
        let outcome = run(&recorder).expect("probed replay succeeded");
        let events = Arc::try_unwrap(recorder)
            .expect("probes flushed at shutdown")
            .finish();
        (outcome, analysis::reconstruct(&events))
    }

    /// Satellite property: across seeded conformance cases and all three tiers,
    /// every trace-reconstructed hop path must cost exactly the `c_A` adjacency
    /// of the validated queuing order (the check inside
    /// [`check_trace_coverage`]) — the trace plane and the order validators
    /// measure the same protocol.
    #[test]
    fn traced_path_cost_matches_queuing_order_c_a_on_all_tiers() {
        let opts = SweepOptions::smoke();
        for i in 0..4 {
            let case = ReplayCase::generate(derive_spec(&opts, i));
            let instance = case.spec.build_instance();
            let schedule = case.schedule();
            let cfg = case.spec.run_config(ProtocolKind::Arrow);

            // Tier 1: deterministic simulator.
            let (outcome, traces) = trace_sim_case(&case).expect("sim case runs");
            let v = check_trace_coverage("sim", instance.tree(), &outcome, &traces);
            assert!(v.is_empty(), "case {i} (sim): {v:?}");

            // Tier 2: thread runtime (wall-clock probes).
            let (outcome, traces) = traces_via(|rec| {
                ThreadDriver.run_probed(&instance, &schedule, &cfg, |v| rec.wall_probe(v))
            });
            let v = check_trace_coverage("thread", instance.tree(), &outcome, &traces);
            assert!(v.is_empty(), "case {i} (thread): {v:?}");

            // Tier 3: socket runtime.
            let (outcome, traces) = traces_via(|rec| {
                NetDriver::default().run_probed(&instance, &schedule, &cfg, |v| rec.wall_probe(v))
            });
            let v = check_trace_coverage("net", instance.tree(), &outcome, &traces);
            assert!(v.is_empty(), "case {i} (net): {v:?}");
        }
    }

    #[test]
    fn trace_case_writes_a_parseable_chrome_export() {
        let opts = SweepOptions::smoke();
        let case = ReplayCase::generate(derive_spec(&opts, 0));
        let dir = std::env::temp_dir().join(format!("arrow-trace-test-{}", std::process::id()));
        let (violations, path) = trace_case(&case, Some(&dir));
        assert!(violations.is_empty(), "{violations:?}");
        let path = path.expect("trace file written");
        let text = std::fs::read_to_string(&path).unwrap();
        let events = arrow_trace::chrome::parse_check(&text).unwrap();
        assert!(events > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coverage_check_flags_a_missing_request() {
        let opts = SweepOptions::smoke();
        let case = ReplayCase::generate(derive_spec(&opts, 1));
        let instance = case.spec.build_instance();
        let (outcome, mut traces) = trace_sim_case(&case).expect("sim case runs");
        assert!(check_trace_coverage("sim", instance.tree(), &outcome, &traces).is_empty());
        traces.pop();
        let v = check_trace_coverage("sim", instance.tree(), &outcome, &traces);
        assert!(
            v.iter()
                .all(|v| v.invariant == InvariantKind::TraceCoverage && v.tier == "sim"),
            "{v:?}"
        );
        assert!(!v.is_empty());
    }
}
