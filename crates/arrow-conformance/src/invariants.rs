//! The shared invariant suite every tier's outcome is checked against.
//!
//! A [`QueuingOutcome`] that reaches this module already passed per-object order
//! *assembly* (the checked run paths return [`arrow_core::RunError`] otherwise);
//! the suite re-derives the paper's observable contracts independently, so a bug
//! in the assembly code itself cannot silently vouch for the protocol:
//!
//! * **exactly-once queuing** — every request of the schedule appears in exactly
//!   one object's order, exactly once, and no order contains foreign requests;
//! * **token conservation** — per object, the successor records form one chain:
//!   each request has exactly one predecessor record, the virtual root grants
//!   exactly once, and no request grants two successors (a duplicated or lost
//!   token would show up precisely here);
//! * **message-count sanity** — protocol messages stay within the structural
//!   bounds of the protocol (arrow: a `queue()` walks tree edges, so at most
//!   `n - 1` hops per request; centralized: at most two messages per request);
//! * **per-link FIFO** — on simulator outcomes with a trace, messages on each
//!   directed link are delivered in send order (the arrow protocol's correctness
//!   assumes FIFO links);
//! * **latency bound** — on synchronous single-object arrow simulator outcomes,
//!   the measured competitive ratio respects the Theorem 3.19 bound (via
//!   [`queuing_analysis::measure_ratio`]; degenerate instances are skipped).

use arrow_core::prelude::*;
use desim::{Trace, TraceEvent};
use queuing_analysis::measure_ratio_with_cost;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which invariant a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// The run itself failed (typed [`arrow_core::RunError`] from a tier).
    RunFailed,
    /// Exactly-once queuing across per-object orders.
    ExactlyOnce,
    /// Per-object token-chain conservation.
    TokenConservation,
    /// Structural message-count bounds.
    MessageSanity,
    /// Per-link FIFO delivery (simulator traces only).
    PerLinkFifo,
    /// Theorem 3.19 competitive-ratio bound (sync single-object arrow only).
    LatencyBound,
    /// Cross-tier agreement on the per-object request multiset.
    CrossTier,
    /// Causal-trace coverage (`--trace` runs): every issued request must leave a
    /// complete reconstructed hop chain whose tree-path cost equals the `c_A`
    /// adjacency of the validated queuing order (see [`crate::trace`]).
    TraceCoverage,
    /// The churn contract on fault-injected cases: every issued request granted,
    /// every `(object, epoch)` order chain fork-free, the final epoch one
    /// complete chain per object (see [`arrow_core::prelude::ChurnOutcome`]).
    ChurnContract,
}

/// One invariant violation observed while checking a tier's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: InvariantKind,
    /// Which tier produced the outcome (`sim`, `sim-centralized`, `thread`, `net`).
    pub tier: String,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl Violation {
    fn new(invariant: InvariantKind, tier: &str, detail: String) -> Self {
        Violation {
            invariant,
            tier: tier.to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {:?}: {}", self.tier, self.invariant, self.detail)
    }
}

/// Exactly-once queuing: the union of all per-object orders is precisely the set
/// of scheduled request ids, with no duplicates across or within orders.
pub fn check_exactly_once(tier: &str, outcome: &QueuingOutcome) -> Vec<Violation> {
    let mut violations = Vec::new();
    let scheduled: HashSet<RequestId> = outcome.schedule.requests().iter().map(|r| r.id).collect();
    let mut queued: HashSet<RequestId> = HashSet::new();
    for (obj, order) in &outcome.orders {
        for &id in order.order() {
            if !queued.insert(id) {
                violations.push(Violation::new(
                    InvariantKind::ExactlyOnce,
                    tier,
                    format!("request {id} queued more than once (seen again in {obj})"),
                ));
            }
            if !scheduled.contains(&id) {
                violations.push(Violation::new(
                    InvariantKind::ExactlyOnce,
                    tier,
                    format!("{obj} queued unscheduled request {id}"),
                ));
            }
        }
    }
    for id in scheduled.difference(&queued) {
        violations.push(Violation::new(
            InvariantKind::ExactlyOnce,
            tier,
            format!("scheduled request {id} never queued"),
        ));
    }
    violations
}

/// Token conservation per object: walking the records, the virtual root grants
/// exactly once (if the object saw requests), every queued request is granted to
/// exactly one successor or is the final tail, and predecessor/successor sets
/// tile the order without forks.
pub fn check_token_conservation(tier: &str, outcome: &QueuingOutcome) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (obj, order) in &outcome.orders {
        if order.is_empty() {
            continue;
        }
        let ids: Vec<RequestId> = order.order().to_vec();
        // Expected: predecessors = {ROOT} ∪ ids[..len-1], each used exactly once.
        let mut pred_counts: HashMap<RequestId, usize> = HashMap::new();
        for &id in &ids {
            match order.predecessor_of(id) {
                Some(pred) => *pred_counts.entry(pred).or_insert(0) += 1,
                None => violations.push(Violation::new(
                    InvariantKind::TokenConservation,
                    tier,
                    format!("{obj}: request {id} has no predecessor record"),
                )),
            }
        }
        if pred_counts.get(&RequestId::ROOT) != Some(&1) {
            violations.push(Violation::new(
                InvariantKind::TokenConservation,
                tier,
                format!(
                    "{obj}: the virtual root granted {} times (expected once)",
                    pred_counts.get(&RequestId::ROOT).copied().unwrap_or(0)
                ),
            ));
        }
        for (&pred, &count) in &pred_counts {
            if count > 1 {
                violations.push(Violation::new(
                    InvariantKind::TokenConservation,
                    tier,
                    format!("{obj}: request {pred} granted {count} successors (token fork)"),
                ));
            }
        }
        let tail = *ids.last().expect("non-empty order");
        for &id in &ids {
            let grants = pred_counts.get(&id).copied().unwrap_or(0);
            if id == tail && grants != 0 {
                violations.push(Violation::new(
                    InvariantKind::TokenConservation,
                    tier,
                    format!("{obj}: tail request {id} granted a successor"),
                ));
            }
            if id != tail && grants != 1 {
                violations.push(Violation::new(
                    InvariantKind::TokenConservation,
                    tier,
                    format!("{obj}: non-tail request {id} granted {grants} successors"),
                ));
            }
        }
    }
    violations
}

/// Structural message-count bounds: an arrow `queue()` travels tree edges without
/// revisiting one (path reversal), so a request costs at most `n - 1` hops; the
/// centralized protocol costs at most two messages per request.
pub fn check_message_sanity(tier: &str, outcome: &QueuingOutcome, n: usize) -> Vec<Violation> {
    let mut violations = Vec::new();
    let requests = outcome.request_count() as u64;
    let bound = match outcome.protocol {
        ProtocolKind::Arrow => requests * (n.saturating_sub(1) as u64),
        ProtocolKind::Centralized => 2 * requests,
    };
    if outcome.protocol_messages > bound {
        violations.push(Violation::new(
            InvariantKind::MessageSanity,
            tier,
            format!(
                "{} protocol messages for {requests} requests on {n} nodes (bound {bound})",
                outcome.protocol_messages
            ),
        ));
    }
    if !outcome.hops_per_request.is_finite() || outcome.hops_per_request < 0.0 {
        violations.push(Violation::new(
            InvariantKind::MessageSanity,
            tier,
            format!("hops_per_request = {}", outcome.hops_per_request),
        ));
    }
    violations
}

/// Per-link FIFO: on each directed link, scheduled delivery times never decrease
/// in send order (the simulator's latency models must preserve this; the arrow
/// protocol is incorrect without it).
pub fn check_per_link_fifo(tier: &str, trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut last_delivery: HashMap<(usize, usize), desim::SimTime> = HashMap::new();
    for event in trace.events() {
        if let TraceEvent::Send {
            from,
            to,
            delivery,
            label,
            ..
        } = event
        {
            if let Some(&prev) = last_delivery.get(&(*from, *to)) {
                if *delivery < prev {
                    violations.push(Violation::new(
                        InvariantKind::PerLinkFifo,
                        tier,
                        format!(
                            "link {from}->{to}: {label} scheduled for {delivery} after a \
                             frame scheduled for {prev}"
                        ),
                    ));
                }
            }
            last_delivery.insert((*from, *to), *delivery);
        }
    }
    violations
}

/// Theorem 3.19: on synchronous single-object arrow analysis runs, the measured
/// competitive ratio (against a certified lower bound on the optimum) stays under
/// the constant-explicit theorem bound. Degenerate instances (zero lower bound)
/// are skipped — there is nothing to certify. Takes the already-measured arrow
/// cost ([`QueuingOutcome::total_latency`]) so the deterministic simulation is
/// not executed a second time just to certify the bound.
pub fn check_latency_bound(
    tier: &str,
    instance: &Instance,
    schedule: &RequestSchedule,
    arrow_cost: f64,
) -> Vec<Violation> {
    let report = measure_ratio_with_cost(instance, schedule, arrow_cost);
    // within_bound is vacuously true on degenerate instances — exactly the skip
    // this invariant wants (nothing can be certified against a zero bound).
    if report.within_bound() {
        return Vec::new();
    }
    vec![Violation::new(
        InvariantKind::LatencyBound,
        tier,
        format!(
            "ratio {:.3} exceeds theorem bound {:.3} (stretch {:.2}, diameter {:.2})",
            report.ratio, report.theorem_bound, report.stretch, report.tree_diameter
        ),
    )]
}

/// Per-object request multiset of an outcome: `(object, node) -> count`. Live
/// tiers reassign ids and times, but the multiset of issuing `(node, object)`
/// pairs must survive every tier unchanged.
pub fn request_multiset(schedule: &RequestSchedule) -> HashMap<(u32, usize), usize> {
    let mut counts = HashMap::new();
    for r in schedule.requests() {
        *counts.entry((r.obj.0, r.node)).or_insert(0) += 1;
    }
    counts
}

/// Cross-tier agreement: a tier's outcome must carry exactly the case's request
/// multiset (per object and issuing node).
pub fn check_cross_tier(
    tier: &str,
    expected: &HashMap<(u32, usize), usize>,
    outcome: &QueuingOutcome,
) -> Vec<Violation> {
    let got = request_multiset(&outcome.schedule);
    if &got == expected {
        return Vec::new();
    }
    let mut keys: HashSet<(u32, usize)> = expected.keys().copied().collect();
    keys.extend(got.keys().copied());
    let mut diffs = Vec::new();
    for key in keys {
        let want = expected.get(&key).copied().unwrap_or(0);
        let have = got.get(&key).copied().unwrap_or(0);
        if want != have {
            diffs.push(format!(
                "o{} at node {}: expected {want}, got {have}",
                key.0, key.1
            ));
        }
    }
    diffs.sort();
    vec![Violation::new(
        InvariantKind::CrossTier,
        tier,
        format!("request multiset diverged: {}", diffs.join("; ")),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::order::OrderRecord;
    use arrow_core::run::outcome_from_records;
    use desim::SimTime;
    use netgraph::spanning::SpanningTreeKind;

    fn valid_outcome() -> QueuingOutcome {
        let instance = Instance::complete_uniform(6, SpanningTreeKind::BalancedBinary);
        let schedule = workload::uniform_random(6, 8, 8.0, 3);
        run_schedule(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        )
    }

    #[test]
    fn valid_outcomes_pass_every_structural_invariant() {
        let outcome = valid_outcome();
        assert!(check_exactly_once("sim", &outcome).is_empty());
        assert!(check_token_conservation("sim", &outcome).is_empty());
        assert!(check_message_sanity("sim", &outcome, 6).is_empty());
        let expected = request_multiset(&outcome.schedule);
        assert!(check_cross_tier("sim", &expected, &outcome).is_empty());
    }

    #[test]
    fn forged_outcome_trips_token_conservation() {
        // Hand-build records where one request grants two successors — a token
        // fork. QueuingOrder::from_records already rejects it, so forge the check
        // input through a *valid* chain and then corrupt the multiset check
        // instead: here we verify the low-level helpers see through a missing
        // request.
        let schedule = RequestSchedule::from_pairs(&[(1, SimTime::ZERO), (2, SimTime::ZERO)]);
        let records: Vec<OrderRecord> = [(0u64, 1u64), (1, 2)]
            .iter()
            .map(|&(p, s)| OrderRecord {
                predecessor: RequestId(p),
                successor: RequestId(s),
                obj: ObjectId::DEFAULT,
                at_node: 0,
                informed_at: SimTime::from_units(1),
                epoch: 0,
            })
            .collect();
        let outcome = outcome_from_records(
            ProtocolKind::Arrow,
            schedule.requests().to_vec(),
            records,
            2,
            2,
            SimTime::from_units(2),
        )
        .unwrap();
        assert!(check_token_conservation("sim", &outcome).is_empty());
        // A diverged multiset is caught by the cross-tier check.
        let mut expected = request_multiset(&outcome.schedule);
        *expected.entry((0, 1)).or_insert(0) += 1;
        let violations = check_cross_tier("thread", &expected, &outcome);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, InvariantKind::CrossTier);
    }

    #[test]
    fn fifo_check_flags_reordered_sends() {
        let mut trace = Trace::enabled();
        trace.push(TraceEvent::Send {
            time: SimTime::ZERO,
            from: 0,
            to: 1,
            delivery: SimTime::from_units(5),
            label: "a".into(),
        });
        trace.push(TraceEvent::Send {
            time: SimTime::from_units(1),
            from: 0,
            to: 1,
            delivery: SimTime::from_units(3),
            label: "b".into(),
        });
        let violations = check_per_link_fifo("sim", &trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, InvariantKind::PerLinkFifo);
        // Reordering across *different* links is fine.
        let mut ok = Trace::enabled();
        ok.push(TraceEvent::Send {
            time: SimTime::ZERO,
            from: 0,
            to: 1,
            delivery: SimTime::from_units(5),
            label: "a".into(),
        });
        ok.push(TraceEvent::Send {
            time: SimTime::from_units(1),
            from: 0,
            to: 2,
            delivery: SimTime::from_units(3),
            label: "b".into(),
        });
        assert!(check_per_link_fifo("sim", &ok).is_empty());
    }

    #[test]
    fn message_sanity_flags_impossible_counts() {
        let mut outcome = valid_outcome();
        outcome.protocol_messages = u64::MAX / 2;
        let violations = check_message_sanity("sim", &outcome, 6);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, InvariantKind::MessageSanity);
    }

    #[test]
    fn latency_bound_holds_on_the_papers_platform() {
        let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
        let schedule = workload::one_shot_burst(&(0..10).collect::<Vec<_>>(), SimTime::ZERO);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome = run_schedule(&instance, &schedule, &cfg);
        let violations = check_latency_bound("sim", &instance, &schedule, outcome.total_latency);
        assert!(violations.is_empty(), "{violations:?}");
        // An absurd measured cost must trip the bound.
        let tripped = check_latency_bound("sim", &instance, &schedule, 1e9);
        assert_eq!(tripped.len(), 1);
        assert_eq!(tripped[0].invariant, InvariantKind::LatencyBound);
    }
}
