//! The socket-tier [`Driver`]: replay a schedule over a real loopback-TCP mesh.
//!
//! Mirrors [`arrow_core::driver::ThreadDriver`] exactly — one worker per
//! `(node, object)` pair, acquires in schedule order — but every protocol message
//! crosses a real socket through [`arrow_net::NetRuntime`], with the latency law
//! derived from the case's [`RunConfig`] via [`NetConfig::from_run_config`].
//! Transport failures (an unreachable peer after the dial retry budget) come back
//! as [`RunError::Transport`], not panics, so a conformance sweep records them as
//! ordinary failures.

use arrow_core::driver::{acquire_sequences, Driver};
use arrow_core::prelude::*;
use arrow_net::{NetConfig, NetRuntime};
use arrow_trace::{NoProbe, Probe};
use desim::SimTime;
use netgraph::NodeId;
use std::time::Duration;

/// Tier 3: the socket runtime (loopback TCP peers, wire codec, latency injection).
#[derive(Debug, Clone, Copy)]
pub struct NetDriver {
    /// Wall-clock duration of one simulated time unit for latency injection.
    /// [`Duration::ZERO`] (the default) disables injection — conformance sweeps
    /// care about ordering contracts, not wall-clock latency, and instant links
    /// keep a 32-case sweep in CI territory.
    pub unit_latency: Duration,
}

impl Default for NetDriver {
    fn default() -> Self {
        NetDriver {
            unit_latency: Duration::ZERO,
        }
    }
}

impl NetDriver {
    /// Like [`Driver::run`], with a recording probe per node (typically
    /// [`arrow_trace::TraceRecorder::wall_probe`]) so the replay leaves a causal
    /// event trace behind. [`NetRuntime::shutdown`] joins the node threads — and
    /// drops (flushes) the probes — inside this call, so the recorder holds every
    /// event once this returns.
    pub fn run_probed<P: Probe>(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
        probe_for: impl FnMut(NodeId) -> P,
    ) -> Result<QueuingOutcome, RunError> {
        debug_assert!(self.supports(config));
        if let Some(r) = schedule
            .requests()
            .iter()
            .find(|r| r.node >= instance.node_count())
        {
            return Err(RunError::Transport {
                node: r.node,
                description: format!("schedule names node {} outside the instance", r.node),
            });
        }
        let k = schedule.object_id_bound();
        let cfg = if self.unit_latency.is_zero() {
            NetConfig::instant()
        } else {
            NetConfig::from_run_config(config, self.unit_latency)
        };
        let grant_timeout = config.grant_timeout();
        let rt = NetRuntime::spawn_multi_probed(instance.tree(), k, cfg, probe_for);
        let mut workers = Vec::new();
        for ((node, obj), count) in acquire_sequences(schedule) {
            let h = rt.handle(node);
            workers.push(std::thread::spawn(move || -> Result<(), RunError> {
                for _ in 0..count {
                    // Bounded wait: a grant that never arrives (lost token) must
                    // become a recorded failure, not a hung sweep. A timeout maps
                    // to the typed starvation error; a transport failure keeps
                    // its own variant.
                    let req = h
                        .try_acquire_object_timeout(obj, grant_timeout)
                        .map_err(|f| {
                            if f.description.contains("not granted within") {
                                RunError::GrantTimeout {
                                    node: f.node,
                                    obj,
                                    waited_ms: grant_timeout.as_millis() as u64,
                                }
                            } else {
                                RunError::Transport {
                                    node: f.node,
                                    description: f.description,
                                }
                            }
                        })?;
                    h.release_object(obj, req);
                }
                Ok(())
            }));
        }
        let mut first_failure: Option<RunError> = None;
        for w in workers {
            match w.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_failure.get_or_insert(e);
                }
                Err(_) => {
                    first_failure.get_or_insert(RunError::Transport {
                        node: 0,
                        description: "a replay worker thread panicked".to_string(),
                    });
                }
            }
        }
        let report = rt.shutdown();
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        if let Some(f) = report.failures().first() {
            return Err(RunError::Transport {
                node: f.node,
                description: f.description.clone(),
            });
        }
        let stats = report.stats();
        let makespan = report
            .records()
            .iter()
            .map(|r| r.informed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        outcome_from_records(
            ProtocolKind::Arrow,
            report.schedule().requests().to_vec(),
            report.records().to_vec(),
            stats.queue_frames,
            stats.queue_frames + stats.token_frames,
            makespan,
        )
    }
}

impl Driver for NetDriver {
    fn name(&self) -> &'static str {
        "net"
    }

    fn supports(&self, config: &RunConfig) -> bool {
        config.protocol == ProtocolKind::Arrow
    }

    fn run(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
    ) -> Result<QueuingOutcome, RunError> {
        self.run_probed(instance, schedule, config, |_| NoProbe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::driver::acquire_sequences;
    use netgraph::spanning::SpanningTreeKind;

    #[test]
    fn net_driver_replays_a_multi_object_schedule_over_sockets() {
        let instance = Instance::complete_uniform(6, SpanningTreeKind::BalancedBinary);
        let triples: Vec<(usize, SimTime, ObjectId)> = (0..10)
            .map(|i| {
                (
                    i % 6,
                    SimTime::from_units(i as u64),
                    ObjectId((i % 2) as u32),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_object_pairs(&triples);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome = NetDriver::default()
            .run(&instance, &schedule, &cfg)
            .unwrap();
        assert_eq!(outcome.request_count(), 10);
        assert_eq!(
            acquire_sequences(&outcome.schedule),
            acquire_sequences(&schedule)
        );
        let total: usize = outcome.orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn net_driver_rejects_out_of_range_nodes() {
        let instance = Instance::complete_uniform(4, SpanningTreeKind::BalancedBinary);
        let schedule = RequestSchedule::from_pairs(&[(7, SimTime::ZERO)]);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let err = NetDriver::default()
            .run(&instance, &schedule, &cfg)
            .unwrap_err();
        assert!(matches!(err, RunError::Transport { node: 7, .. }));
    }
}
