//! # arrow-conformance — the cross-tier conformance harness
//!
//! The repository executes the arrow protocol of the paper in three independent
//! tiers — the discrete-event simulator, the in-process thread runtime and the
//! loopback-TCP socket runtime — plus the centralized baseline. This crate is the
//! correctness backstop that keeps them honest: it generates seeded random cases
//! (topology × spanning tree × workload × object count × synchrony), runs each
//! case through every applicable tier behind the shared
//! [`arrow_core::driver::Driver`] seam, and checks one invariant suite on every
//! outcome:
//!
//! * per-object queuing-order validity (via the typed checked run paths),
//! * exactly-once queuing,
//! * token conservation (one unbroken grant chain per object, no forks),
//! * per-link FIFO delivery (simulator traces),
//! * structural message-count bounds,
//! * the Theorem 3.19 competitive-ratio bound where the analysis applies
//!   (synchronous, single object, arrow, non-degenerate lower bound).
//!
//! Every failure is turned into a **replay file** ([`case::ReplayCase`]) — a tiny
//! text artifact that pins the exact topology and request list — after automatic
//! **shrinking** ([`shrink::shrink`]) dropped every request and node not needed to
//! reproduce. `cargo run -p arrow-bench --bin conformance -- --replay <file>`
//! re-runs it as a one-command repro.
//!
//! The `conformance` binary in `arrow-bench` drives [`sweep::run_sweep`]; CI runs
//! the fixed-seed smoke profile ([`sweep::SweepOptions::smoke`]) on every change.
//!
//! ## Quick example
//!
//! Derive one seeded case, round-trip it through the replay text format, and
//! check it on the simulator tier:
//!
//! ```
//! use arrow_conformance::{derive_spec, run_case, ReplayCase, SweepOptions};
//!
//! let mut opts = SweepOptions::smoke();
//! opts.include_thread = false; // sim tier only: doctests stay fast
//! opts.include_net = false;
//!
//! let case = ReplayCase::generate(derive_spec(&opts, 0));
//! let text = case.to_replay_text();
//! assert_eq!(ReplayCase::from_replay_text(&text).unwrap(), case);
//!
//! let (tiers, violations) = run_case(&case, &opts);
//! assert!(tiers.iter().any(|t| t == "sim"));
//! assert!(violations.is_empty(), "{violations:?}");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod case;
pub mod churn;
pub mod invariants;
pub mod net_driver;
pub mod shrink;
pub mod sweep;
pub mod trace;

pub use case::{CaseSpec, GraphKind, ReplayCase, WorkloadKind};
pub use churn::run_churn_case;
pub use invariants::{InvariantKind, Violation};
pub use net_driver::NetDriver;
pub use shrink::shrink;
pub use sweep::{
    derive_spec, run_case, run_case_counted, run_replay, run_sweep, CaseResult, SweepOptions,
    SweepReport,
};
pub use trace::{check_trace_coverage, trace_case, trace_sim_case, write_case_trace};
