//! Seeded conformance cases and the replay file format.
//!
//! A [`CaseSpec`] is a small, fully serializable description of one conformance
//! case: topology × spanning tree × workload × object count × synchrony, all
//! derived deterministically from plain fields. A [`ReplayCase`] additionally pins
//! the *explicit* request list, so a case that was shrunk (requests dropped until
//! the failure stopped reproducing) replays byte-for-byte without regenerating —
//! the replay file *is* the repro.
//!
//! # The replay file format
//!
//! The replay format is a deliberately boring line-based text file (the workspace's
//! serde is an offline no-op facade, and a format this small does not want a
//! dependency anyway):
//!
//! ```text
//! arrow-conformance-replay v1
//! seed 42
//! nodes 12
//! graph complete
//! tree balanced-binary
//! objects 3
//! requests 24
//! workload zipf
//! sync async
//! async-lo 0.05
//! req 7 1500000 2
//! ...
//! ```
//!
//! ## Line grammar
//!
//! One `key value` (or `req a b c`) statement per line, in this order:
//!
//! | Line | Value | Meaning |
//! |---|---|---|
//! | `arrow-conformance-replay v1` | — | Magic header; the only accepted version is `v1`. |
//! | `seed N` | `u64` | The case's derivation seed. After shrinking it only labels the case (requests are explicit below), but topology randomness (`random-tree`, `erdos-renyi`) still derives from it. |
//! | `nodes N` | `usize` | Node budget handed to the graph builder. The *actual* node count can differ (e.g. a grid rounds to its side lengths); `req` lines refer to actual node ids. |
//! | `graph KIND` | `complete` \| `path` \| `cycle` \| `grid` \| `random-tree` \| `erdos-renyi` | Communication graph family ([`GraphKind`]). |
//! | `tree KIND` | `shortest-path` \| `minimum-weight` \| `star` \| `balanced-binary` \| `minimum-communication` | Spanning-tree constructor ([`netgraph::spanning::SpanningTreeKind`]). |
//! | `objects K` | `usize ≥ 1` | Number of directory objects. `req` lines must only name objects `< K`. |
//! | `requests N` | `usize` | Number of `req` lines that follow (checked exactly). |
//! | `workload KIND` | `burst` \| `poisson` \| `uniform` \| `zipf` \| `sequential` | The generator the requests came from ([`WorkloadKind`]); informational once requests are explicit. |
//! | `sync MODE` | `sync` \| `async` | Timing model for the simulator tier and the socket tier's latency law. |
//! | `async-lo F` | `f64` in `[0, 1]` | The asynchronous model's delay floor (only meaningful with `sync async`). |
//! | `faults N` | `usize` | Number of `fault` lines that follow (checked exactly). Optional; omitted entirely for fault-free cases. |
//! | `fault EVENT` | [`FaultEvent`] text form | One fault event, e.g. `fault 3 crash 5` or `fault 4 drop 1 2` — `<tick> crash\|restart\|partition <node>` or `<tick> drop\|restore <u> <v>`. A case with fault lines runs the churn contract instead of the fault-free invariants. |
//! | `req NODE SUBTICKS OBJ` | `usize u64 u32` | One request: issuing node, issue time in [`desim::SimTime`] subticks, object id. Repeated exactly `requests` times; request ids are assigned densely in time order at load. |
//!
//! Unknown keys, missing keys, out-of-order `req` counts and non-numeric values
//! are hard parse errors ([`ReplayCase::from_replay_text`] returns a message
//! naming the offending line).
//!
//! ## One-command repro walkthrough
//!
//! When a sweep case fails, the harness shrinks it (drops requests, then nodes,
//! while the violation still reproduces) and writes
//! `conformance-failures/case-<seed>.replay`. To reproduce:
//!
//! ```text
//! cargo run --release -p arrow-bench --bin conformance -- \
//!     --replay conformance-failures/case-42.replay
//! ```
//!
//! which re-runs exactly the pinned topology and request list through every
//! tier the current options include and prints each invariant violation (exit
//! code 1) or `PASS` (exit code 0). Because the requests are explicit, the
//! file stays a faithful repro even if workload generators change; only the
//! seeded *topology* builders must stay stable. `conformance --help` prints a
//! compact version of this format summary.

use arrow_core::prelude::*;
use desim::{SimConfig, SimTime};
use netgraph::spanning::{build_spanning_tree, SpanningTreeKind};
use netgraph::{generators, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Which communication graph the case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphKind {
    /// Complete graph with unit weights (the paper's experimental platform).
    Complete,
    /// Path graph (worst-case diameter).
    Path,
    /// Cycle (the tree must cut one edge: stretch > 1).
    Cycle,
    /// 2D grid, as square as the node budget allows.
    Grid,
    /// Uniform random tree (`G = T`, stretch 1 — the Theorem 4.1 regime).
    RandomTree,
    /// Connected Erdős–Rényi graph with a seeded edge probability.
    ErdosRenyi,
}

impl GraphKind {
    /// All kinds, in a fixed order the sweep's seeded picker indexes into.
    pub const ALL: [GraphKind; 6] = [
        GraphKind::Complete,
        GraphKind::Path,
        GraphKind::Cycle,
        GraphKind::Grid,
        GraphKind::RandomTree,
        GraphKind::ErdosRenyi,
    ];

    fn token(self) -> &'static str {
        match self {
            GraphKind::Complete => "complete",
            GraphKind::Path => "path",
            GraphKind::Cycle => "cycle",
            GraphKind::Grid => "grid",
            GraphKind::RandomTree => "random-tree",
            GraphKind::ErdosRenyi => "erdos-renyi",
        }
    }

    fn from_token(s: &str) -> Option<Self> {
        GraphKind::ALL.into_iter().find(|k| k.token() == s)
    }
}

/// Which workload generator produces the case's request schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Everyone requests at once (PODC'01 one-shot burst).
    Burst,
    /// Independent Poisson arrivals per node.
    Poisson,
    /// Uniformly random (node, time) pairs.
    UniformRandom,
    /// Zipf-skewed object popularity over `objects` objects (the directory
    /// setting; the only multi-object generator the sweep uses).
    Zipf,
    /// Widely spaced round-robin requests (the sequential Demmer–Herlihy regime).
    Sequential,
}

impl WorkloadKind {
    /// All kinds, in a fixed order the sweep's seeded picker indexes into.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Burst,
        WorkloadKind::Poisson,
        WorkloadKind::UniformRandom,
        WorkloadKind::Zipf,
        WorkloadKind::Sequential,
    ];

    fn token(self) -> &'static str {
        match self {
            WorkloadKind::Burst => "burst",
            WorkloadKind::Poisson => "poisson",
            WorkloadKind::UniformRandom => "uniform",
            WorkloadKind::Zipf => "zipf",
            WorkloadKind::Sequential => "sequential",
        }
    }

    fn from_token(s: &str) -> Option<Self> {
        WorkloadKind::ALL.into_iter().find(|k| k.token() == s)
    }
}

fn tree_token(kind: SpanningTreeKind) -> &'static str {
    match kind {
        SpanningTreeKind::ShortestPath => "shortest-path",
        SpanningTreeKind::MinimumWeight => "minimum-weight",
        SpanningTreeKind::Star => "star",
        SpanningTreeKind::BalancedBinary => "balanced-binary",
        SpanningTreeKind::MinimumCommunication => "minimum-communication",
    }
}

fn tree_from_token(s: &str) -> Option<SpanningTreeKind> {
    [
        SpanningTreeKind::ShortestPath,
        SpanningTreeKind::MinimumWeight,
        SpanningTreeKind::Star,
        SpanningTreeKind::BalancedBinary,
        SpanningTreeKind::MinimumCommunication,
    ]
    .into_iter()
    .find(|&k| tree_token(k) == s)
}

/// One conformance case, fully determined by its plain fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Seed for every randomized choice the case makes (workload, async delays).
    pub seed: u64,
    /// Target node count (grids round up to the nearest rows × cols shape; read
    /// the built instance's `node_count` rather than assuming this exact value).
    pub nodes: usize,
    /// Communication graph.
    pub graph: GraphKind,
    /// Spanning tree built over it (rooted at node 0).
    pub tree: SpanningTreeKind,
    /// Number of directory objects (1 = the classic single-queue setting).
    pub objects: usize,
    /// Target request count.
    pub requests: usize,
    /// Workload shape.
    pub workload: WorkloadKind,
    /// Synchronous or asynchronous message timing.
    pub sync: SyncMode,
    /// Async latency floor (fraction of the link weight; ignored when synchronous).
    pub async_lo: f64,
}

impl CaseSpec {
    /// Build the case's communication graph.
    pub fn build_graph(&self) -> Graph {
        let n = self.nodes.max(2);
        match self.graph {
            GraphKind::Complete => generators::complete(n, 1.0),
            GraphKind::Path => generators::path(n),
            GraphKind::Cycle => generators::cycle(n.max(3)),
            GraphKind::Grid => {
                let rows = (n as f64).sqrt().floor().max(1.0) as usize;
                let cols = n.div_ceil(rows);
                generators::grid(rows, cols)
            }
            GraphKind::RandomTree => generators::random_tree(n, self.seed),
            GraphKind::ErdosRenyi => generators::erdos_renyi_connected(n, 0.3, self.seed),
        }
    }

    /// Build the case's instance: graph plus spanning tree rooted at node 0. Tree
    /// kinds with structural requirements (star, balanced-binary) silently fall
    /// back to the shortest-path tree on graphs that cannot host them — the sweep
    /// generator avoids those combinations, but a hand-edited replay file must not
    /// panic in graph setup before the protocol even runs.
    pub fn build_instance(&self) -> Instance {
        let graph = self.build_graph();
        let kind = match self.tree {
            SpanningTreeKind::Star | SpanningTreeKind::BalancedBinary
                if self.graph != GraphKind::Complete =>
            {
                SpanningTreeKind::ShortestPath
            }
            kind => kind,
        };
        let tree = build_spanning_tree(&graph, 0, kind);
        Instance::new(graph, tree)
    }

    /// Generate the case's request schedule for an instance with `n` nodes.
    pub fn build_schedule(&self, n: usize) -> RequestSchedule {
        let count = self.requests.max(1);
        match self.workload {
            WorkloadKind::Burst => {
                let nodes: Vec<NodeId> = (0..count.min(n)).map(|i| i % n).collect();
                workload::one_shot_burst(&nodes, SimTime::ZERO)
            }
            WorkloadKind::Poisson => {
                // Scale the horizon so the expected request count lands near the
                // target, then truncate deterministically.
                let horizon = (count as f64 / n as f64).max(1.0) * 2.0;
                let schedule = workload::poisson(n, 2.0, horizon, self.seed);
                truncate(schedule, count)
            }
            WorkloadKind::UniformRandom => {
                workload::uniform_random(n, count, count as f64, self.seed)
            }
            WorkloadKind::Zipf => {
                workload::zipf_objects(n, self.objects.max(1), 1.1, count, count as f64, self.seed)
            }
            WorkloadKind::Sequential => {
                let nodes: Vec<NodeId> = (0..n).collect();
                // Gap larger than any tree diameter at sweep sizes: sequential.
                workload::sequential_round_robin(&nodes, count, 4.0 * n as f64)
            }
        }
    }

    /// The simulator configuration the case runs under (analysis mode: the model
    /// the theorems are stated in).
    pub fn run_config(&self, protocol: ProtocolKind) -> RunConfig {
        let mut cfg = RunConfig::analysis(protocol);
        if self.sync == SyncMode::Asynchronous {
            cfg = cfg.asynchronous(self.seed).with_async_floor(self.async_lo);
        }
        cfg
    }
}

/// Keep only the `count` earliest requests (ids are reassigned densely).
fn truncate(schedule: RequestSchedule, count: usize) -> RequestSchedule {
    if schedule.len() <= count {
        return schedule;
    }
    let triples: Vec<(NodeId, SimTime, ObjectId)> = schedule
        .requests()
        .iter()
        .take(count)
        .map(|r| (r.node, r.time, r.obj))
        .collect();
    RequestSchedule::from_object_pairs(&triples)
}

/// A case with its request list made explicit, so shrinking and replay never
/// depend on regenerating the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayCase {
    /// The generating spec (topology, synchrony, seed).
    pub spec: CaseSpec,
    /// Explicit requests as `(node, issue time in subticks, object id)` triples.
    pub requests: Vec<(NodeId, u64, u32)>,
    /// Explicit fault events injected during the run (empty = fault-free case).
    /// A non-empty list switches the case onto the churn contract: epoch-based
    /// recovery, per-epoch order validation, liveness-with-retries.
    pub faults: Vec<FaultEvent>,
}

impl ReplayCase {
    /// Generate the explicit case for a spec (build the instance once to learn the
    /// true node count, then materialize the workload).
    pub fn generate(spec: CaseSpec) -> Self {
        let instance = spec.build_instance();
        let schedule = spec.build_schedule(instance.node_count());
        let requests = schedule
            .requests()
            .iter()
            .map(|r| (r.node, r.time.subticks(), r.obj.0))
            .collect();
        ReplayCase {
            spec,
            requests,
            faults: Vec::new(),
        }
    }

    /// Generate the explicit case plus a seeded fault schedule of up to
    /// `max_episodes` crash/restart or link drop/restore episodes against the
    /// case's spanning tree (seeded by the case seed, so the whole churn scenario
    /// is pinned by the spec).
    pub fn generate_with_faults(spec: CaseSpec, max_episodes: usize) -> Self {
        let mut case = ReplayCase::generate(spec);
        let instance = spec.build_instance();
        case.faults = FaultSchedule::generate(spec.seed, instance.tree(), max_episodes).events;
        case
    }

    /// The case's fault schedule (empty for fault-free cases).
    pub fn fault_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.faults.clone())
    }

    /// The case's schedule (ids assigned densely in time order).
    pub fn schedule(&self) -> RequestSchedule {
        let triples: Vec<(NodeId, SimTime, ObjectId)> = self
            .requests
            .iter()
            .map(|&(node, subticks, obj)| (node, SimTime::from_subticks(subticks), ObjectId(obj)))
            .collect();
        RequestSchedule::from_object_pairs(&triples)
    }

    /// Serialize to the replay text format (see the module docs).
    pub fn to_replay_text(&self) -> String {
        let mut out = String::new();
        out.push_str("arrow-conformance-replay v1\n");
        out.push_str(&format!("seed {}\n", self.spec.seed));
        out.push_str(&format!("nodes {}\n", self.spec.nodes));
        out.push_str(&format!("graph {}\n", self.spec.graph.token()));
        out.push_str(&format!("tree {}\n", tree_token(self.spec.tree)));
        out.push_str(&format!("objects {}\n", self.spec.objects));
        out.push_str(&format!("requests {}\n", self.spec.requests));
        out.push_str(&format!("workload {}\n", self.spec.workload.token()));
        out.push_str(&format!(
            "sync {}\n",
            match self.spec.sync {
                SyncMode::Synchronous => "sync",
                SyncMode::Asynchronous => "async",
            }
        ));
        out.push_str(&format!("async-lo {}\n", self.spec.async_lo));
        if !self.faults.is_empty() {
            out.push_str(&format!("faults {}\n", self.faults.len()));
            for event in &self.faults {
                out.push_str(&format!("fault {event}\n"));
            }
        }
        for &(node, subticks, obj) in &self.requests {
            out.push_str(&format!("req {node} {subticks} {obj}\n"));
        }
        out
    }

    /// Parse the replay text format; errors name the offending line.
    pub fn from_replay_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "arrow-conformance-replay v1")) => {}
            Some((_, other)) => return Err(format!("unsupported replay header: {other:?}")),
            None => return Err("empty replay file".to_string()),
        }
        let mut spec = CaseSpec {
            seed: 0,
            nodes: 2,
            graph: GraphKind::Complete,
            tree: SpanningTreeKind::ShortestPath,
            objects: 1,
            requests: 0,
            workload: WorkloadKind::Burst,
            sync: SyncMode::Synchronous,
            async_lo: SimConfig::DEFAULT_ASYNC_LO,
        };
        let mut requests = Vec::new();
        let mut faults = Vec::new();
        let mut declared_faults: Option<usize> = None;
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| format!("line {}: {what}: {line:?}", idx + 1);
            let (key, rest) = line.split_once(' ').ok_or_else(|| bad("missing value"))?;
            match key {
                "seed" => spec.seed = rest.parse().map_err(|_| bad("bad seed"))?,
                "nodes" => spec.nodes = rest.parse().map_err(|_| bad("bad nodes"))?,
                "graph" => {
                    spec.graph = GraphKind::from_token(rest).ok_or_else(|| bad("bad graph"))?
                }
                "tree" => spec.tree = tree_from_token(rest).ok_or_else(|| bad("bad tree"))?,
                "objects" => spec.objects = rest.parse().map_err(|_| bad("bad objects"))?,
                "requests" => spec.requests = rest.parse().map_err(|_| bad("bad requests"))?,
                "workload" => {
                    spec.workload =
                        WorkloadKind::from_token(rest).ok_or_else(|| bad("bad workload"))?
                }
                "sync" => {
                    spec.sync = match rest {
                        "sync" => SyncMode::Synchronous,
                        "async" => SyncMode::Asynchronous,
                        _ => return Err(bad("bad sync mode")),
                    }
                }
                "async-lo" => spec.async_lo = rest.parse().map_err(|_| bad("bad async-lo"))?,
                "faults" => {
                    declared_faults = Some(rest.parse().map_err(|_| bad("bad faults count"))?)
                }
                "fault" => faults.push(rest.parse().map_err(|e| bad(&format!("bad fault: {e}")))?),
                "req" => {
                    let mut parts = rest.split_whitespace();
                    let node = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad req node"))?;
                    let subticks = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad req time"))?;
                    let obj = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad req object"))?;
                    if parts.next().is_some() {
                        return Err(bad("trailing fields on req line"));
                    }
                    requests.push((node, subticks, obj));
                }
                _ => return Err(bad("unknown key")),
            }
        }
        if let Some(declared) = declared_faults {
            if declared != faults.len() {
                return Err(format!(
                    "faults line declares {declared} events but {} fault lines follow",
                    faults.len()
                ));
            }
        }
        Ok(ReplayCase {
            spec,
            requests,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CaseSpec {
        CaseSpec {
            seed: 7,
            nodes: 9,
            graph: GraphKind::Grid,
            tree: SpanningTreeKind::ShortestPath,
            objects: 2,
            requests: 10,
            workload: WorkloadKind::Zipf,
            sync: SyncMode::Asynchronous,
            async_lo: 0.25,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ReplayCase::generate(spec());
        let b = ReplayCase::generate(spec());
        assert_eq!(a, b);
        assert_eq!(a.requests.len(), 10);
    }

    #[test]
    fn replay_text_roundtrips() {
        let case = ReplayCase::generate(spec());
        let text = case.to_replay_text();
        let parsed = ReplayCase::from_replay_text(&text).unwrap();
        assert_eq!(parsed, case);
        // The schedule reconstructed from the replay matches the generated one.
        let a = case.schedule();
        let b = parsed.schedule();
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn replay_text_roundtrips_fault_schedules() {
        let case = ReplayCase::generate_with_faults(spec(), 3);
        assert!(!case.faults.is_empty());
        // The seeded schedule is valid against the case's own tree.
        let instance = case.spec.build_instance();
        case.fault_schedule().validate(instance.tree()).unwrap();
        let text = case.to_replay_text();
        assert!(text.contains(&format!("faults {}\n", case.faults.len())));
        let parsed = ReplayCase::from_replay_text(&text).unwrap();
        assert_eq!(parsed, case);
        assert_eq!(parsed.fault_schedule(), case.fault_schedule());
        // A fault-free case emits no fault lines at all.
        let clean = ReplayCase::generate(spec());
        assert!(!clean.to_replay_text().contains("fault"));
    }

    #[test]
    fn replay_parser_rejects_bad_fault_lines() {
        let header = "arrow-conformance-replay v1\n";
        let bad_verb = format!("{header}fault 3 explode 5\n");
        assert!(ReplayCase::from_replay_text(&bad_verb).is_err());
        let bad_count = format!("{header}faults 2\nfault 3 crash 5\n");
        let err = ReplayCase::from_replay_text(&bad_count).unwrap_err();
        assert!(err.contains("declares 2"), "{err}");
    }

    #[test]
    fn replay_parser_rejects_garbage() {
        assert!(ReplayCase::from_replay_text("").is_err());
        assert!(ReplayCase::from_replay_text("not a replay\n").is_err());
        let case = ReplayCase::generate(spec());
        let mut text = case.to_replay_text();
        text.push_str("req 1 nonsense 0\n");
        assert!(ReplayCase::from_replay_text(&text).is_err());
        let bad_key = "arrow-conformance-replay v1\nfrobnicate 3\n";
        assert!(ReplayCase::from_replay_text(bad_key).is_err());
    }

    #[test]
    fn every_graph_kind_builds_a_connected_instance() {
        for graph in GraphKind::ALL {
            let s = CaseSpec {
                graph,
                tree: SpanningTreeKind::ShortestPath,
                ..spec()
            };
            let instance = s.build_instance();
            assert!(instance.node_count() >= 2, "{graph:?}");
            // The schedule only names nodes inside the instance.
            let schedule = s.build_schedule(instance.node_count());
            assert!(schedule
                .requests()
                .iter()
                .all(|r| r.node < instance.node_count()));
        }
    }

    #[test]
    fn structurally_invalid_tree_kinds_fall_back_instead_of_panicking() {
        let s = CaseSpec {
            graph: GraphKind::Path,
            tree: SpanningTreeKind::BalancedBinary,
            ..spec()
        };
        let instance = s.build_instance();
        assert_eq!(instance.node_count(), 9);
    }
}
