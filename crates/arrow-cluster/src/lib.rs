//! The process-isolated execution tier of the arrow directory: every node of
//! the spanning tree is its **own OS process** (`arrowd`), and this crate is
//! the harness that launches, drives, observes and tears down such clusters.
//!
//! The first three tiers — simulator, thread runtime, in-process socket mesh —
//! all host every node inside one process, which caps what a benchmark can
//! claim (shared fd budget, one scheduler, harness and nodes on the same
//! cores) and what a fault test can inject (simulated crashes). This tier
//! removes both caps: protocol state lives in per-process memory, crashes are
//! real `SIGKILL`ed PIDs, and the per-node costs (CPU, RSS) are separately
//! measurable from `/proc`.
//!
//! | module | role |
//! |---|---|
//! | [`control`] | harness ↔ daemon line protocol + tree wire encoding |
//! | [`harness`] | [`harness::Cluster`]: launch, workloads, churn, teardown |
//! | [`journal`] | per-daemon on-disk protocol journals |
//! | [`procstat`] | `/proc/<pid>` CPU/RSS scraping |
//! | [`driver`] | [`driver::ClusterDriver`] for the conformance harness |
//!
//! The daemon itself is the `arrowd` binary of this crate; its protocol
//! engine is [`arrow_net::NetRuntime::spawn_daemon`] — the same reactor and
//! [`arrow_core::live::ArrowCore`] state machine as the in-process socket
//! tier, so process isolation changes *where* nodes run, never *what* they
//! run.
//!
//! The tree every daemon is handed on its command line is the harness's
//! single source of topology truth, round-tripped through a compact wire
//! encoding:
//!
//! ```
//! use arrow_cluster::control::{tree_from_wire, tree_to_wire};
//! use netgraph::{generators, RootedTree};
//!
//! let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(7), 0);
//! let wire = tree_to_wire(&tree); // "r,0,0,1,1,2,2" — entry v is v's parent
//! let back = tree_from_wire(&wire).unwrap();
//! assert_eq!(back.node_count(), 7);
//! assert_eq!(back.parent(5), Some(2));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod control;
pub mod driver;
pub mod harness;
pub mod journal;
pub mod procstat;

pub use driver::{locate_arrowd, ClusterDriver};
pub use harness::{Cluster, ClusterConfig, ClusterReport, NodeReport, WorkOutcome};
pub use journal::DaemonJournal;
pub use procstat::ProcUsage;
