//! The harness ↔ daemon control protocol: newline-delimited text over one TCP
//! connection per daemon, dialed *by the daemon* at startup (the harness's
//! control listener address is on the `arrowd` command line, so daemons work
//! behind ephemeral ports and, later, across hosts).
//!
//! ## Conversation
//!
//! ```text
//! daemon → hello <node> <ip:port>          advertise the protocol listener
//! harness → peers <a0> <a1> ... <aN-1>     full advertised address table
//! daemon → ready                            mesh handshake spawned
//! harness → work <obj> <count>              (repeatable) assign acquires
//! harness → go <timeout_ms> <attempts>      start the assigned workload
//! daemon → done <completed> <failed> <obj|->  workload finished
//! harness → epoch <e>                       recovery epoch bump → ok
//! harness → stats                           metrics scrape → wire lines + "."
//! harness → shutdown                        graceful stop → bye, then exit
//! ```
//!
//! Lines are ASCII, space-separated, `\n`-terminated. The framing is
//! deliberately dumb: both ends are in this workspace, and a human can drive a
//! daemon with `nc` when debugging.

use netgraph::{NodeId, RootedTree};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long either end waits for an expected control line before declaring the
/// peer wedged (bootstrap handshakes complete in milliseconds; workload
/// `done` waits use caller-chosen budgets instead).
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// One end of a control connection: buffered line reads over a raw
/// [`TcpStream`], with the partial-line buffer preserved across read timeouts
/// so a slow sender never corrupts framing.
#[derive(Debug)]
pub struct LineConn {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineConn {
    /// Wrap an established control stream.
    pub fn new(stream: TcpStream) -> LineConn {
        LineConn {
            stream,
            pending: Vec::new(),
        }
    }

    /// The underlying stream (for `try_clone` — a daemon's workload supervisor
    /// writes its `done` line on a clone while the control loop keeps reading).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Set the read timeout for subsequent [`recv`](LineConn::recv) calls
    /// (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one line (the `\n` is appended here).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        send_line(&self.stream, line)
    }

    /// Receive one line, stripped of its terminator. A read timeout surfaces
    /// as [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] with any
    /// partial line retained for the next call; a closed peer surfaces as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> io::Result<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                return String::from_utf8(line).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF8 line: {e}"))
                });
            }
            let mut chunk = [0u8; 4096];
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "control peer closed the connection",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }

    /// [`recv`](LineConn::recv) with a one-shot deadline, restoring the
    /// previous blocking behaviour afterwards.
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<String> {
        self.set_read_timeout(Some(timeout))?;
        let got = self.recv();
        let _ = self.set_read_timeout(None);
        got
    }
}

/// Write one `\n`-terminated line to a (possibly shared) control stream.
pub fn send_line(mut stream: &TcpStream, line: &str) -> io::Result<()> {
    debug_assert!(!line.contains('\n'), "control lines are single lines");
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    stream.write_all(&buf)
}

/// Encode a rooted spanning tree for the `arrowd` command line: one
/// comma-separated entry per node, `r` for the root, the parent id otherwise
/// (all tree edges carry unit weight on the wire — the process tier measures
/// real latency instead of modeling it).
pub fn tree_to_wire(tree: &RootedTree) -> String {
    (0..tree.node_count())
        .map(|v| match tree.parent(v) {
            None => "r".to_string(),
            Some(p) => p.to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Decode [`tree_to_wire`]'s encoding.
pub fn tree_from_wire(wire: &str) -> Result<RootedTree, String> {
    let mut parents: Vec<Option<(NodeId, f64)>> = Vec::new();
    for (v, entry) in wire.split(',').enumerate() {
        match entry.trim() {
            "r" => parents.push(None),
            p => {
                let p: NodeId = p
                    .parse()
                    .map_err(|e| format!("node {v}: bad parent {p:?}: {e}"))?;
                parents.push(Some((p, 1.0)));
            }
        }
    }
    let roots = parents.iter().filter(|p| p.is_none()).count();
    if roots != 1 {
        return Err(format!("tree wire has {roots} roots, expected exactly 1"));
    }
    if parents.iter().flatten().any(|&(p, _)| p >= parents.len()) {
        return Err("tree wire names a parent outside the node range".to_string());
    }
    Ok(RootedTree::from_parents(&parents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;
    use std::net::TcpListener;

    #[test]
    fn tree_wire_round_trips() {
        let t = RootedTree::from_tree_graph(&generators::balanced_binary_tree(7), 0);
        let wire = tree_to_wire(&t);
        assert_eq!(wire, "r,0,0,1,1,2,2");
        let back = tree_from_wire(&wire).unwrap();
        assert_eq!(back.node_count(), 7);
        for v in 0..7 {
            assert_eq!(back.parent(v), t.parent(v));
        }
    }

    #[test]
    fn tree_wire_rejects_malformed_input() {
        assert!(tree_from_wire("r,r").is_err(), "two roots");
        assert!(tree_from_wire("0,0").is_err(), "no root");
        assert!(tree_from_wire("r,9").is_err(), "parent out of range");
        assert!(tree_from_wire("r,x").is_err(), "non-numeric parent");
    }

    #[test]
    fn line_conn_frames_across_partial_reads_and_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut conn = LineConn::new(server);

        // A partial line followed by a timeout must not lose bytes.
        send_line(&client, "hello 3 127.0.0.1:9").unwrap();
        (&client).write_all(b"par").unwrap();
        assert_eq!(conn.recv().unwrap(), "hello 3 127.0.0.1:9");
        let err = conn.recv_timeout(Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "timeout, got {err:?}"
        );
        (&client).write_all(b"tial line\n").unwrap();
        assert_eq!(conn.recv().unwrap(), "partial line");

        // Closing the peer is a clean EOF, not a hang.
        drop(client);
        assert_eq!(
            conn.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
