//! The on-disk journal an `arrowd` daemon leaves behind at shutdown: its
//! issued requests, observed successor-notification records, transport
//! failures, and metrics snapshot — everything the harness needs to assemble a
//! cluster-wide [`arrow_core::prelude::RequestSchedule`] and validate the
//! per-object queuing orders, in a line-oriented text format matching the
//! control channel's.
//!
//! Journals are written atomically (temp file + rename in the same directory),
//! so the harness either sees a complete journal ending in its `end` marker or
//! no journal at all (the SIGKILL case — a killed incarnation's history dies
//! with it, exactly like a real crashed node's volatile state).

use arrow_core::prelude::{ObjectId, OrderRecord, Request, RequestId};
use arrow_net::NetReport;
use arrow_trace::MetricsSnapshot;
use desim::SimTime;
use netgraph::NodeId;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Format tag on the journal's first line; bump on incompatible changes.
const MAGIC: &str = "arrowd-journal v1";

/// One daemon's decoded journal.
#[derive(Debug, Clone, Default)]
pub struct DaemonJournal {
    /// The node this daemon hosted.
    pub node: NodeId,
    /// Requests the node issued, in its local journal order.
    pub issued: Vec<Request>,
    /// Successor notifications the node observed.
    pub records: Vec<OrderRecord>,
    /// Transport failures the node reported (node id, description).
    pub failures: Vec<(NodeId, String)>,
    /// The daemon's full metrics snapshot at shutdown.
    pub metrics: MetricsSnapshot,
}

/// Atomically write `report` as node `node`'s journal at `path`.
pub fn write_journal(path: &Path, node: NodeId, report: &NetReport) -> io::Result<()> {
    let mut text = format!("{MAGIC} {node}\n");
    for r in report.schedule().requests() {
        text.push_str(&format!(
            "req {} {} {} {}\n",
            r.id.0,
            r.node,
            r.time.subticks(),
            r.obj.0
        ));
    }
    for r in report.records() {
        text.push_str(&format!(
            "rec {} {} {} {} {} {}\n",
            r.predecessor.0,
            r.successor.0,
            r.obj.0,
            r.at_node,
            r.informed_at.subticks(),
            r.epoch
        ));
    }
    for f in report.failures() {
        text.push_str(&format!("fail {} {}\n", f.node, f.description));
    }
    text.push_str(&report.metrics().to_wire());
    text.push_str("end\n");

    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Read and decode a journal written by [`write_journal`].
pub fn read_journal(path: &Path) -> io::Result<DaemonJournal> {
    let text = fs::read_to_string(path)?;
    parse_journal(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

fn parse_journal(text: &str) -> Result<DaemonJournal, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty journal")?;
    let node = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| format!("bad journal header {header:?}"))?
        .trim()
        .parse::<NodeId>()
        .map_err(|e| format!("bad journal node id: {e}"))?;

    let mut journal = DaemonJournal {
        node,
        ..DaemonJournal::default()
    };
    let mut metrics_text = String::new();
    let mut complete = false;
    for line in lines {
        let mut parts = line.split_ascii_whitespace();
        let kind = parts.next().unwrap_or_default();
        let num = |s: Option<&str>| -> Result<u64, String> {
            s.ok_or_else(|| format!("short journal line {line:?}"))?
                .parse::<u64>()
                .map_err(|e| format!("bad number in journal line {line:?}: {e}"))
        };
        match kind {
            "req" => journal.issued.push(Request {
                id: RequestId(num(parts.next())?),
                node: num(parts.next())? as NodeId,
                time: SimTime::from_subticks(num(parts.next())?),
                obj: ObjectId(num(parts.next())? as u32),
            }),
            "rec" => journal.records.push(OrderRecord {
                predecessor: RequestId(num(parts.next())?),
                successor: RequestId(num(parts.next())?),
                obj: ObjectId(num(parts.next())? as u32),
                at_node: num(parts.next())? as NodeId,
                informed_at: SimTime::from_subticks(num(parts.next())?),
                epoch: num(parts.next())?,
            }),
            "fail" => {
                let node = num(parts.next())? as NodeId;
                let description = parts.collect::<Vec<_>>().join(" ");
                journal.failures.push((node, description));
            }
            "ctr" | "hist" => {
                metrics_text.push_str(line);
                metrics_text.push('\n');
            }
            "end" => {
                complete = true;
                break;
            }
            other => return Err(format!("unknown journal line kind {other:?}")),
        }
    }
    if !complete {
        return Err("journal is truncated (no end marker)".to_string());
    }
    journal.metrics = MetricsSnapshot::from_wire(&metrics_text)?;
    Ok(journal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_truncated_and_malformed_journals() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal("not a journal\nend\n").is_err());
        assert!(
            parse_journal(&format!("{MAGIC} 3\nreq 1 3 0 0\n")).is_err(),
            "missing end marker"
        );
        assert!(parse_journal(&format!("{MAGIC} 3\nwhat 1\nend\n")).is_err());
        assert!(parse_journal(&format!("{MAGIC} 3\nreq 1 3\nend\n")).is_err());
    }

    #[test]
    fn parse_round_trips_a_hand_written_journal() {
        let text = format!(
            "{MAGIC} 2\n\
             req 5 2 1000 0\n\
             req 9 2 2000 1\n\
             rec 0 5 0 0 1500 0\n\
             fail 2 dial to peer 1 refused\n\
             ctr acquisitions 2\n\
             end\n"
        );
        let j = parse_journal(&text).unwrap();
        assert_eq!(j.node, 2);
        assert_eq!(j.issued.len(), 2);
        assert_eq!(j.issued[0].id, RequestId(5));
        assert_eq!(j.issued[1].obj, ObjectId(1));
        assert_eq!(j.records.len(), 1);
        assert_eq!(j.records[0].successor, RequestId(5));
        assert_eq!(j.failures, vec![(2, "dial to peer 1 refused".to_string())]);
        assert_eq!(
            j.metrics.get(arrow_trace::Metric::Acquisitions),
            2,
            "metrics lines decode through the shared wire format"
        );
    }
}
