//! Per-process resource usage scraped from `/proc/<pid>/stat` and
//! `/proc/<pid>/status` — the harness's view of what each `arrowd` daemon
//! actually cost, recorded into the cluster results JSON.

use std::fs;
use std::io;

/// Kernel clock ticks per second for the `utime`/`stime` fields of
/// `/proc/<pid>/stat`. `USER_HZ` is 100 on every Linux ABI this workspace
/// targets (x86_64, aarch64); reading it properly needs `sysconf(_SC_CLK_TCK)`,
/// which the offline toolchain has no libc binding for.
pub const CLOCK_TICKS_PER_SEC: u64 = 100;

/// One scrape of a live process's CPU and memory usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcUsage {
    /// User-mode CPU, in `USER_HZ` ticks.
    pub utime_ticks: u64,
    /// Kernel-mode CPU, in `USER_HZ` ticks.
    pub stime_ticks: u64,
    /// Current resident set size, in kB (`VmRSS`).
    pub rss_kb: u64,
    /// Peak resident set size, in kB (`VmHWM`).
    pub peak_rss_kb: u64,
}

impl ProcUsage {
    /// Total CPU seconds (user + system).
    pub fn cpu_seconds(&self) -> f64 {
        (self.utime_ticks + self.stime_ticks) as f64 / CLOCK_TICKS_PER_SEC as f64
    }
}

/// Scrape `pid`'s current usage. Fails if the process is gone (its `/proc`
/// entry vanishes with it) — callers scrape *before* tearing a daemon down.
pub fn scrape(pid: u32) -> io::Result<ProcUsage> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat"))?;
    let status = fs::read_to_string(format!("/proc/{pid}/status"))?;
    let mut usage = ProcUsage::default();

    // stat: `pid (comm) state ppid ...` — comm may contain spaces and
    // parentheses, so fields are counted from after the *last* ')'. utime and
    // stime are fields 14 and 15 (1-indexed); the slice after the comm starts
    // at field 3.
    let after_comm = stat
        .rfind(')')
        .map(|i| &stat[i + 1..])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed /proc stat"))?;
    let fields: Vec<&str> = after_comm.split_ascii_whitespace().collect();
    let tick_field = |i: usize| -> io::Result<u64> {
        fields
            .get(i)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short /proc stat"))
    };
    usage.utime_ticks = tick_field(11)?;
    usage.stime_ticks = tick_field(12)?;

    for line in status.lines() {
        let kb_of = |line: &str| -> u64 {
            line.split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
        };
        if line.starts_with("VmRSS:") {
            usage.rss_kb = kb_of(line);
        } else if line.starts_with("VmHWM:") {
            usage.peak_rss_kb = kb_of(line);
        }
    }
    Ok(usage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scraping_our_own_process_yields_plausible_numbers() {
        let usage = scrape(std::process::id()).unwrap();
        // A running test process has mapped memory and its peak is an upper
        // bound on the current RSS.
        assert!(usage.rss_kb > 0, "live process has resident memory");
        assert!(usage.peak_rss_kb >= usage.rss_kb);
        // Burn a little CPU so the tick counters are defensibly monotone.
        let before = usage.utime_ticks + usage.stime_ticks;
        let mut x = 0u64;
        for i in 0..20_000_000u64 {
            x = x.wrapping_add(i ^ (x >> 3));
        }
        assert!(x != 42, "keep the loop alive");
        let after = scrape(std::process::id()).unwrap();
        assert!(after.utime_ticks + after.stime_ticks >= before);
        assert!(after.cpu_seconds() >= 0.0);
    }

    #[test]
    fn scraping_a_dead_pid_fails() {
        // PID 0 never has a /proc entry visible to us.
        assert!(scrape(0).is_err());
    }
}
