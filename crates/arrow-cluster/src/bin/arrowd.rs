//! `arrowd` — one process, one arrow directory node.
//!
//! The daemon hosts a single node of the spanning tree inside its own
//! [`arrow_net`] epoll reactor: protocol traffic (queue frames, token grants,
//! Hello/Welcome handshakes) crosses real TCP sockets to peer daemons, and the
//! node's protocol history is journaled to disk at shutdown for the cluster
//! harness to assemble and validate.
//!
//! Lifecycle: parse args → block SIGTERM/SIGINT into a signalfd (before any
//! thread spawns, so every thread inherits the mask) → bind the protocol
//! listener → dial the harness's control address and rendezvous (`hello` /
//! `peers` / `ready`) → serve control commands until `shutdown` or a
//! termination signal → drain the mesh (Goodbye handshakes), flush the
//! journal atomically, exit.
//!
//! Every exit path is typed ([`DaemonError`] rendered in `main`) — the process
//! never calls `std::process::exit`, so destructors (socket drains, journal
//! temp files) always run.

use arrow_cluster::control::{send_line, tree_from_wire, LineConn, HANDSHAKE_TIMEOUT};
use arrow_cluster::journal::write_journal;
use arrow_core::prelude::ObjectId;
use arrow_net::{NetConfig, NetHandle, NetRuntime};
use netgraph::{NodeId, RootedTree};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const USAGE: &str = "\
arrowd — one process, one arrow directory node

USAGE:
    arrowd --node <V> --parents <P0,P1,...> --objects <K> --control <ADDR> --journal <PATH> [OPTIONS]

REQUIRED:
    --node <V>           This daemon's node id in the spanning tree
    --parents <LIST>     Comma-separated tree encoding: entry v is node v's
                         parent id, or `r` for the root (e.g. `r,0,0,1,1`)
    --objects <K>        Number of independent mobile objects served
    --control <ADDR>     The cluster harness's control listener (ip:port);
                         the daemon dials it and speaks the line protocol
    --journal <PATH>     Where to flush the protocol journal at shutdown

OPTIONS:
    --listen <ADDR>      Bind the protocol listener on this address (with
                         SO_REUSEADDR, so a restarted daemon can rebind its
                         dead predecessor's advertised port). Default: an
                         ephemeral loopback port.
    --seq-base <N>       Floor for the request-id counter; a restart
                         supervisor passes a bound above anything the dead
                         incarnation issued. Default: 0.
    --fault-tolerant     Drop frames towards dead peers (epoch recovery
                         re-issues them) instead of failing this node.
    --help               Print this help.

SIGNALS:
    SIGTERM/SIGINT trigger the same graceful shutdown as the control
    channel's `shutdown` command: mesh drain, journal flush, clean exit.";

/// Every way the daemon can fail, each with a stable exit code. `main` is the
/// only place these become a process exit status.
#[derive(Debug)]
enum DaemonError {
    /// Bad or missing command-line arguments.
    Usage(String),
    /// The protocol listener could not be bound.
    Bind(std::io::Error),
    /// The control channel failed (dial, handshake, or mid-run I/O).
    Control(String),
    /// The journal could not be written.
    Journal(std::io::Error),
    /// The termination signalfd could not be set up.
    Signals(std::io::Error),
}

impl DaemonError {
    fn code(&self) -> u8 {
        match self {
            DaemonError::Usage(_) => 2,
            DaemonError::Bind(_) => 3,
            DaemonError::Control(_) => 4,
            DaemonError::Journal(_) => 5,
            DaemonError::Signals(_) => 6,
        }
    }
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            DaemonError::Bind(e) => write!(f, "failed to bind protocol listener: {e}"),
            DaemonError::Control(m) => write!(f, "control channel: {m}"),
            DaemonError::Journal(e) => write!(f, "failed to write journal: {e}"),
            DaemonError::Signals(e) => write!(f, "failed to set up signal handling: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("arrowd: {e}");
            ExitCode::from(e.code())
        }
    }
}

struct Args {
    node: NodeId,
    tree: RootedTree,
    objects: usize,
    control: SocketAddr,
    journal: PathBuf,
    listen: Option<SocketAddr>,
    seq_base: u64,
    fault_tolerant: bool,
}

fn parse_args(args: &[String]) -> Result<Args, DaemonError> {
    let mut node = None;
    let mut tree = None;
    let mut objects = None;
    let mut control = None;
    let mut journal = None;
    let mut listen = None;
    let mut seq_base = 0u64;
    let mut fault_tolerant = false;
    let usage = |m: String| DaemonError::Usage(m);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| usage(format!("{arg} needs a value")))
        };
        match arg.as_str() {
            "--node" => {
                node = Some(
                    value()?
                        .parse::<NodeId>()
                        .map_err(|e| usage(format!("bad --node: {e}")))?,
                )
            }
            "--parents" => {
                tree = Some(
                    tree_from_wire(&value()?).map_err(|e| usage(format!("bad --parents: {e}")))?,
                )
            }
            "--objects" => {
                objects = Some(
                    value()?
                        .parse::<usize>()
                        .map_err(|e| usage(format!("bad --objects: {e}")))?,
                )
            }
            "--control" => {
                control = Some(
                    value()?
                        .parse::<SocketAddr>()
                        .map_err(|e| usage(format!("bad --control: {e}")))?,
                )
            }
            "--journal" => journal = Some(PathBuf::from(value()?)),
            "--listen" => {
                listen = Some(
                    value()?
                        .parse::<SocketAddr>()
                        .map_err(|e| usage(format!("bad --listen: {e}")))?,
                )
            }
            "--seq-base" => {
                seq_base = value()?
                    .parse::<u64>()
                    .map_err(|e| usage(format!("bad --seq-base: {e}")))?
            }
            "--fault-tolerant" => fault_tolerant = true,
            other => return Err(usage(format!("unknown argument {other:?}"))),
        }
    }
    let node = node.ok_or_else(|| usage("--node is required".into()))?;
    let tree = tree.ok_or_else(|| usage("--parents is required".into()))?;
    let objects = objects.ok_or_else(|| usage("--objects is required".into()))?;
    let control = control.ok_or_else(|| usage("--control is required".into()))?;
    let journal = journal.ok_or_else(|| usage("--journal is required".into()))?;
    if node >= tree.node_count() {
        return Err(usage(format!(
            "--node {node} is outside the {}-node tree",
            tree.node_count()
        )));
    }
    if objects == 0 {
        return Err(usage("--objects must be at least 1".into()));
    }
    Ok(Args {
        node,
        tree,
        objects,
        control,
        journal,
        listen,
        seq_base,
        fault_tolerant,
    })
}

fn run(raw: &[String]) -> Result<(), DaemonError> {
    let args = parse_args(raw)?;

    // Block SIGTERM/SIGINT into a signalfd before spawning any thread — the
    // mask is inherited, so no thread takes the default (fatal) disposition,
    // and the watcher below turns signals into a flag the control loop polls.
    let sigfd = netpoll::SignalFd::for_termination().map_err(DaemonError::Signals)?;
    let term = Arc::new(AtomicBool::new(false));
    {
        let term = Arc::clone(&term);
        std::thread::spawn(move || {
            // Each wait returns one delivered signal; the first is enough.
            let _ = sigfd.wait();
            term.store(true, Ordering::SeqCst);
        });
    }

    // The protocol listener: an ephemeral port normally, or the advertised
    // address of a dead predecessor — which still has TIME_WAIT 4-tuples
    // against it, hence SO_REUSEADDR.
    let listener = match args.listen {
        Some(addr) => netpoll::listen_reuse(&addr).map_err(DaemonError::Bind)?,
        None => TcpListener::bind("127.0.0.1:0").map_err(DaemonError::Bind)?,
    };
    let advertised = listener.local_addr().map_err(DaemonError::Bind)?;

    // Rendezvous with the harness: advertise our listener, learn everyone's.
    let ctrl = |e: std::io::Error| DaemonError::Control(e.to_string());
    let stream = TcpStream::connect(args.control).map_err(ctrl)?;
    let mut conn = LineConn::new(stream);
    conn.send(&format!("hello {} {advertised}", args.node))
        .map_err(ctrl)?;
    let peers = conn.recv_timeout(HANDSHAKE_TIMEOUT).map_err(ctrl)?;
    let addrs = parse_peers(&peers, args.tree.node_count())?;

    let cfg = if args.fault_tolerant {
        NetConfig::instant().with_fault_tolerance()
    } else {
        NetConfig::instant()
    };
    let rt = NetRuntime::spawn_daemon(
        &args.tree,
        args.objects,
        cfg,
        args.node,
        listener,
        addrs,
        args.seq_base,
    );
    conn.send("ready").map_err(ctrl)?;
    serve(&args, rt, conn, &term)
}

fn parse_peers(line: &str, n: usize) -> Result<Vec<SocketAddr>, DaemonError> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("peers") {
        return Err(DaemonError::Control(format!(
            "expected peers line, got {line:?}"
        )));
    }
    let addrs: Vec<SocketAddr> = parts
        .map(|a| {
            a.parse()
                .map_err(|e| DaemonError::Control(format!("bad peer address {a:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if addrs.len() != n {
        return Err(DaemonError::Control(format!(
            "peers line has {} addresses for a {n}-node tree",
            addrs.len()
        )));
    }
    Ok(addrs)
}

/// The running workload, if any: its supervisor thread writes the `done` line
/// on a clone of the control stream when every worker has joined.
struct Workload {
    supervisor: std::thread::JoinHandle<()>,
    stopping: Arc<AtomicBool>,
}

fn serve(
    args: &Args,
    rt: NetRuntime,
    mut conn: LineConn,
    term: &AtomicBool,
) -> Result<(), DaemonError> {
    let ctrl = |e: std::io::Error| DaemonError::Control(e.to_string());
    // The supervisor thread shares the write side of the control stream.
    let writer = Arc::new(Mutex::new(conn.stream().try_clone().map_err(ctrl)?));
    let handle = rt.handle(args.node);
    let mut assignments: Vec<(ObjectId, usize)> = Vec::new();
    let mut workload: Option<Workload> = None;
    let mut acked_shutdown = false;

    conn.set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(ctrl)?;
    loop {
        if term.load(Ordering::SeqCst) {
            break; // SIGTERM/SIGINT: same graceful path as `shutdown`
        }
        let line = match conn.recv() {
            Ok(line) => line,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(ctrl(e)),
        };
        let mut parts = line.split_ascii_whitespace();
        match parts.next().unwrap_or_default() {
            "work" => {
                let obj: u32 = parse_field(parts.next(), &line)?;
                let count: usize = parse_field(parts.next(), &line)?;
                assignments.push((ObjectId(obj), count));
            }
            "go" => {
                let timeout_ms: u64 = parse_field(parts.next(), &line)?;
                let attempts: u32 = parse_field(parts.next(), &line)?;
                workload = Some(start_workload(
                    std::mem::take(&mut assignments),
                    &handle,
                    Duration::from_millis(timeout_ms),
                    attempts.max(1),
                    Arc::clone(&writer),
                ));
            }
            "epoch" => {
                let epoch: u64 = parse_field(parts.next(), &line)?;
                rt.broadcast_epoch(epoch);
                send_line(&writer.lock().unwrap(), "ok").map_err(ctrl)?;
            }
            "stats" => {
                let wire = rt.stats().metrics().to_wire();
                let w = writer.lock().unwrap();
                for metric_line in wire.lines() {
                    send_line(&w, metric_line).map_err(ctrl)?;
                }
                send_line(&w, ".").map_err(ctrl)?;
            }
            "shutdown" => {
                acked_shutdown = true;
                break;
            }
            other => {
                return Err(DaemonError::Control(format!(
                    "unknown control command {other:?}"
                )))
            }
        }
    }

    // Graceful shutdown: stop workers first (an in-flight acquire resolves
    // within its own timeout), then drain the mesh and flush the journal.
    if let Some(w) = workload {
        w.stopping.store(true, Ordering::SeqCst);
        let _ = w.supervisor.join();
    }
    let report = rt.shutdown();
    write_journal(&args.journal, args.node, &report).map_err(DaemonError::Journal)?;
    if acked_shutdown {
        // Only after the journal is durable — `bye` is the harness's cue that
        // the journal is complete on disk.
        send_line(&writer.lock().unwrap(), "bye").map_err(ctrl)?;
    }
    Ok(())
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, line: &str) -> Result<T, DaemonError>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| DaemonError::Control(format!("short control line {line:?}")))?
        .parse()
        .map_err(|e| DaemonError::Control(format!("bad field in {line:?}: {e}")))
}

fn start_workload(
    assignments: Vec<(ObjectId, usize)>,
    handle: &NetHandle,
    timeout: Duration,
    attempts: u32,
    writer: Arc<Mutex<TcpStream>>,
) -> Workload {
    let stopping = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for (obj, count) in assignments {
        let h = handle.clone();
        let stopping = Arc::clone(&stopping);
        workers.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut failed = 0u64;
            let mut first_failed: Option<ObjectId> = None;
            'acquires: for _ in 0..count {
                let mut tries = 0;
                loop {
                    if stopping.load(Ordering::SeqCst) {
                        break 'acquires;
                    }
                    tries += 1;
                    match h.try_acquire_object_timeout(obj, timeout) {
                        Ok(req) => {
                            h.release_object(obj, req);
                            completed += 1;
                            break;
                        }
                        Err(_) if tries < attempts => {
                            // Churn in flight (a peer died, an epoch bump is
                            // coming): back off briefly and retry.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {
                            failed += 1;
                            first_failed.get_or_insert(obj);
                            break;
                        }
                    }
                }
            }
            (completed, failed, first_failed)
        }));
    }
    let supervisor = {
        let stopping = Arc::clone(&stopping);
        std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut failed = 0u64;
            let mut first_failed: Option<ObjectId> = None;
            for w in workers {
                if let Ok((c, f, obj)) = w.join() {
                    completed += c;
                    failed += f;
                    if first_failed.is_none() {
                        first_failed = obj;
                    }
                }
            }
            // A stopping daemon is past reporting; the harness learns the
            // outcome from the journal instead.
            if !stopping.load(Ordering::SeqCst) {
                let obj = first_failed
                    .map(|o| o.0.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let _ = send_line(
                    &writer.lock().unwrap(),
                    &format!("done {completed} {failed} {obj}"),
                );
            }
        })
    };
    Workload {
        supervisor,
        stopping,
    }
}
