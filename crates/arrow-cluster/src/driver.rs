//! The process-tier [`Driver`]: replay a conformance schedule across real
//! `arrowd` processes, so the cross-tier agreement invariant covers process
//! isolation too — the fourth rung after the simulator, the thread runtime
//! and the in-process socket mesh.
//!
//! The replay contract matches the other live tiers exactly: each
//! `(node, object)` pair's acquires run sequentially (here on a worker thread
//! *inside that node's daemon*), distinct pairs run concurrently, and the
//! reconstructed outcome carries the same request multiset with fresh ids and
//! wall-clock times.

use crate::harness::{Cluster, ClusterConfig, WorkOutcome};
use arrow_core::driver::{acquire_sequences, Driver};
use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::NodeId;
use std::path::PathBuf;
use std::time::Duration;

/// Locate the `arrowd` binary for harness use outside `cargo test` of this
/// crate (where `env!("CARGO_BIN_EXE_arrowd")` is the answer): the
/// `ARROWD_BIN` environment variable wins, then a sibling of the current
/// executable (how workspace binaries land in `target/<profile>/`).
pub fn locate_arrowd() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("ARROWD_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!("ARROWD_BIN={} does not exist", path.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe.parent().ok_or("executable has no parent directory")?;
    // Test binaries live one level down in target/<profile>/deps/.
    if dir.file_name().and_then(|n| n.to_str()) == Some("deps") {
        dir = dir.parent().ok_or("deps dir has no parent")?;
    }
    let candidate = dir.join("arrowd");
    if candidate.is_file() {
        return Ok(candidate);
    }
    Err(format!(
        "arrowd not found at {} — build it with `cargo build --release -p arrow-cluster` \
         or point ARROWD_BIN at it",
        candidate.display()
    ))
}

/// Tier 4: the process cluster (one OS process per node, journals on disk,
/// teardown over the control channel).
#[derive(Debug, Clone)]
pub struct ClusterDriver {
    /// Path to the `arrowd` binary.
    pub arrowd: PathBuf,
}

impl ClusterDriver {
    /// A driver launching the given `arrowd` binary.
    pub fn new(arrowd: impl Into<PathBuf>) -> ClusterDriver {
        ClusterDriver {
            arrowd: arrowd.into(),
        }
    }
}

impl Driver for ClusterDriver {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn supports(&self, config: &RunConfig) -> bool {
        config.protocol == ProtocolKind::Arrow
    }

    fn run(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
    ) -> Result<QueuingOutcome, RunError> {
        debug_assert!(self.supports(config));
        if let Some(r) = schedule
            .requests()
            .iter()
            .find(|r| r.node >= instance.node_count())
        {
            return Err(RunError::Transport {
                node: r.node,
                description: format!("schedule names node {} outside the instance", r.node),
            });
        }
        let transport =
            |node: NodeId, description: String| RunError::Transport { node, description };
        let k = schedule.object_id_bound();
        let grant_timeout = config.grant_timeout();
        let cfg = ClusterConfig::new(&self.arrowd, instance.tree().clone(), k.max(1));
        let mut cluster =
            Cluster::launch(cfg).map_err(|e| transport(0, format!("cluster launch: {e}")))?;

        let work: Vec<(NodeId, ObjectId, usize)> = acquire_sequences(schedule)
            .into_iter()
            .map(|((node, obj), count)| (node, obj, count))
            .collect();
        // Worst case the deepest (node, object) pair's acquires all wait the
        // full grant timeout back to back; pad for process scheduling.
        let deepest = work.iter().map(|&(_, _, c)| c).max().unwrap_or(0) as u32;
        let deadline = grant_timeout * deepest.max(1) + Duration::from_secs(10);
        cluster
            .start_workload(&work, grant_timeout, 1)
            .map_err(|e| transport(0, format!("workload start: {e}")))?;
        let mut first_failure: Option<RunError> = None;
        for (node, outcome) in cluster.await_done(deadline) {
            match outcome {
                WorkOutcome::Done { failed: 0, .. } | WorkOutcome::Idle => {}
                WorkOutcome::Done {
                    first_failed_obj, ..
                } => {
                    first_failure.get_or_insert(RunError::GrantTimeout {
                        node,
                        obj: first_failed_obj.unwrap_or(ObjectId::DEFAULT),
                        waited_ms: grant_timeout.as_millis() as u64,
                    });
                }
                WorkOutcome::Dead => {
                    first_failure
                        .get_or_insert(transport(node, "daemon died during replay".to_string()));
                }
                WorkOutcome::TimedOut => {
                    first_failure.get_or_insert(RunError::GrantTimeout {
                        node,
                        obj: ObjectId::DEFAULT,
                        waited_ms: deadline.as_millis() as u64,
                    });
                }
            }
        }
        let report = cluster
            .shutdown()
            .map_err(|e| transport(0, format!("cluster shutdown: {e}")))?;
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        if let Some((node, description)) = report.failures().first() {
            return Err(transport(*node, description.clone()));
        }
        let makespan = report
            .records()
            .iter()
            .map(|r| r.informed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let queue_frames = report.metrics().get(arrow_trace::Metric::QueueFrames);
        let token_frames = report.metrics().get(arrow_trace::Metric::TokenFrames);
        outcome_from_records(
            ProtocolKind::Arrow,
            report.schedule().requests().to_vec(),
            report.records().to_vec(),
            queue_frames,
            queue_frames + token_frames,
            makespan,
        )
    }
}
