//! The cluster harness: spawn N `arrowd` processes, rendezvous them into one
//! directory mesh, drive workloads and recovery epochs over the control
//! channel, scrape per-process CPU/RSS, and assemble every daemon's journal
//! into one validated [`ClusterReport`] at teardown.
//!
//! ## Lifecycle
//!
//! [`Cluster::launch`] binds a control listener, spawns one `arrowd` per tree
//! node, collects their `hello` lines (each advertises its protocol listener),
//! broadcasts the completed address table, and waits for every daemon's
//! `ready`. Workloads then run via [`Cluster::start_workload`] /
//! [`Cluster::await_done`]; process-granularity churn via [`Cluster::kill`]
//! (SIGKILL — a real dead PID), [`Cluster::broadcast_epoch`] and
//! [`Cluster::restart`]. Teardown is [`Cluster::shutdown`] (control-channel
//! drain) or [`Cluster::terminate`] (SIGTERM with SIGKILL escalation); both
//! end by reading the journals daemons flushed on their way out.

use crate::control::{tree_to_wire, LineConn, HANDSHAKE_TIMEOUT};
use crate::journal::{read_journal, DaemonJournal};
use crate::procstat::{scrape, ProcUsage};
use arrow_core::order::{per_object_orders, OrderError};
use arrow_core::prelude::{
    validate_churn_records, ChurnOrderError, ObjectId, OrderRecord, QueuingOrder, Request,
    RequestSchedule,
};
use arrow_trace::MetricsSnapshot;
use netgraph::{NodeId, RootedTree};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Distinguishes concurrently-launched clusters' journal directories within
/// one process (tests run in parallel threads).
static LAUNCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The request-id counter floor handed to restarted daemons: a restarted
/// incarnation must never re-issue an id its dead predecessor already used,
/// and ids advance one per issued request, so any bound above the requests a
/// single incarnation can issue is safe. One million is five orders of
/// magnitude above the largest workload in this repository.
pub const RESTART_SEQ_BASE: u64 = 1 << 20;

/// Configuration for one cluster launch.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Path to the `arrowd` binary (tests pass `env!("CARGO_BIN_EXE_arrowd")`).
    pub arrowd: PathBuf,
    /// The spanning tree; one process per node.
    pub tree: RootedTree,
    /// Independent mobile objects served by the directory.
    pub objects: usize,
    /// Launch daemons fault-tolerant (frames towards dead peers are dropped
    /// and re-issued by the epoch machinery instead of failing the sender).
    /// Required for [`Cluster::kill`]-based churn runs.
    pub fault_tolerant: bool,
    /// Directory for per-daemon journal files (created at launch).
    pub journal_dir: PathBuf,
    /// How long [`Cluster::terminate`] waits after SIGTERM before escalating
    /// to SIGKILL.
    pub grace: Duration,
}

impl ClusterConfig {
    /// A config with a unique temp journal directory and a 10s SIGTERM grace.
    pub fn new(arrowd: impl Into<PathBuf>, tree: RootedTree, objects: usize) -> ClusterConfig {
        let unique = format!(
            "arrow-cluster-{}-{}",
            std::process::id(),
            LAUNCH_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        ClusterConfig {
            arrowd: arrowd.into(),
            tree,
            objects,
            fault_tolerant: false,
            journal_dir: std::env::temp_dir().join(unique),
            grace: Duration::from_secs(10),
        }
    }

    /// Enable fault tolerance (see [`ClusterConfig::fault_tolerant`]).
    pub fn with_fault_tolerance(mut self) -> ClusterConfig {
        self.fault_tolerant = true;
        self
    }
}

/// What one daemon reported (or failed to report) for a workload round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkOutcome {
    /// The daemon finished its assignment: `completed` acquires granted and
    /// released, `failed` given up on (retry budget exhausted), with the first
    /// failing object if any.
    Done {
        /// Acquires granted and released.
        completed: u64,
        /// Acquires that exhausted their retry budget.
        failed: u64,
        /// The first object an acquire failed on.
        first_failed_obj: Option<ObjectId>,
    },
    /// The daemon's control connection is gone (killed or crashed).
    Dead,
    /// No `done` line arrived within the caller's deadline.
    TimedOut,
    /// The daemon has no workload outstanding (e.g. it was restarted after
    /// the `go` and the fresh incarnation was never assigned work).
    Idle,
}

/// One live (or killed) daemon slot.
struct Daemon {
    child: Child,
    ctrl: Option<LineConn>,
    /// Advertised protocol listener address (stable across restarts — the
    /// restarted incarnation rebinds the same port via `SO_REUSEADDR`).
    addr: SocketAddr,
    journal: PathBuf,
    /// Last scraped usage (refreshed by [`Cluster::scrape_usage`]; final value
    /// is taken just before teardown so it reflects the whole run).
    usage: Option<ProcUsage>,
    /// True once the process was reaped (killed or exited).
    reaped: bool,
    /// True between a `go` and its `done` — [`Cluster::await_done`] only
    /// waits on daemons that actually owe a report.
    awaiting_done: bool,
    /// A `done` line that arrived while the harness was waiting for a
    /// different reply (the control channel is one stream, so a finishing
    /// workload can interleave with e.g. an epoch ack); consumed by the next
    /// [`Cluster::await_done`].
    stashed_done: Option<WorkOutcome>,
}

/// A running `arrowd` cluster. See the [module docs](self) for the lifecycle.
pub struct Cluster {
    cfg: ClusterConfig,
    control: TcpListener,
    control_addr: SocketAddr,
    daemons: Vec<Daemon>,
    epoch: u64,
}

impl Cluster {
    /// Spawn one `arrowd` per tree node and rendezvous them into a mesh.
    /// Returns once every daemon reported `ready` (its reactor is running and
    /// its bootstrap dial to the tree parent is in flight).
    pub fn launch(cfg: ClusterConfig) -> io::Result<Cluster> {
        let n = cfg.tree.node_count();
        assert!(n > 0, "a cluster hosts at least one node");
        assert!(cfg.objects > 0, "a directory serves at least one object");
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let control = TcpListener::bind("127.0.0.1:0")?;
        let control_addr = control.local_addr()?;
        let tree_wire = tree_to_wire(&cfg.tree);

        let mut children = Vec::with_capacity(n);
        for v in 0..n {
            let journal = cfg.journal_dir.join(format!("node-{v}.journal"));
            let mut cmd = Command::new(&cfg.arrowd);
            cmd.arg("--node")
                .arg(v.to_string())
                .arg("--parents")
                .arg(&tree_wire)
                .arg("--objects")
                .arg(cfg.objects.to_string())
                .arg("--control")
                .arg(control_addr.to_string())
                .arg("--journal")
                .arg(&journal)
                .stdin(Stdio::null())
                .stdout(Stdio::null());
            if cfg.fault_tolerant {
                cmd.arg("--fault-tolerant");
            }
            let child = cmd.spawn().map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("failed to spawn {}: {e}", cfg.arrowd.display()),
                )
            })?;
            children.push((v, child, journal));
        }

        // Collect hellos (daemons dial in any order), then broadcast the
        // completed address table and wait for every ready.
        control.set_nonblocking(true)?;
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let mut slots: Vec<Option<(LineConn, SocketAddr)>> = (0..n).map(|_| None).collect();
        let mut pending = n;
        while pending > 0 {
            match control.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let mut conn = LineConn::new(stream);
                    let hello = conn.recv_timeout(HANDSHAKE_TIMEOUT)?;
                    let (v, addr) = parse_hello(&hello)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    if v >= n || slots[v].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected hello from node {v}"),
                        ));
                    }
                    slots[v] = Some((conn, addr));
                    pending -= 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{pending} daemons never dialed the control channel"),
                        ));
                    }
                    // A daemon that died before dialing in would hang the
                    // rendezvous; surface its exit instead.
                    for (v, child, _) in &mut children {
                        if slots[*v].is_none() {
                            if let Some(status) = child.try_wait()? {
                                return Err(io::Error::new(
                                    io::ErrorKind::BrokenPipe,
                                    format!("arrowd node {v} exited during launch: {status}"),
                                ));
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        control.set_nonblocking(false)?;

        let addrs: Vec<SocketAddr> = slots
            .iter()
            .map(|s| s.as_ref().expect("all slots filled").1)
            .collect();
        let peers_line = format!(
            "peers {}",
            addrs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        let mut daemons = Vec::with_capacity(n);
        for ((v, child, journal), slot) in children.into_iter().zip(slots) {
            let (mut conn, addr) = slot.expect("all slots filled");
            conn.send(&peers_line)?;
            expect_line(&mut conn, "ready", v)?;
            daemons.push(Daemon {
                child,
                ctrl: Some(conn),
                addr,
                journal,
                usage: None,
                reaped: false,
                awaiting_done: false,
                stashed_done: None,
            });
        }
        Ok(Cluster {
            cfg,
            control,
            control_addr,
            daemons,
            epoch: 0,
        })
    }

    /// Number of nodes (= processes).
    pub fn node_count(&self) -> usize {
        self.daemons.len()
    }

    /// The current recovery epoch (0 until the first [`broadcast_epoch`]).
    ///
    /// [`broadcast_epoch`]: Cluster::broadcast_epoch
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The OS pid of node `v`'s daemon.
    pub fn pid(&self, v: NodeId) -> u32 {
        self.daemons[v].child.id()
    }

    /// Assign and start a workload: for every `(node, obj, count)` entry the
    /// node's daemon runs `count` acquire/release cycles against `obj` on its
    /// own worker thread, each acquire bounded by `timeout` and retried up to
    /// `attempts` times (retries are how workers ride out churn). Returns as
    /// soon as every live daemon has been told `go` — collect results with
    /// [`Cluster::await_done`].
    pub fn start_workload(
        &mut self,
        work: &[(NodeId, ObjectId, usize)],
        timeout: Duration,
        attempts: u32,
    ) -> io::Result<()> {
        for &(v, obj, count) in work {
            let daemon = &mut self.daemons[v];
            if let Some(ctrl) = daemon.ctrl.as_mut() {
                ctrl.send(&format!("work {} {count}", obj.0))?;
            }
        }
        for daemon in &mut self.daemons {
            if let Some(ctrl) = daemon.ctrl.as_mut() {
                ctrl.send(&format!("go {} {attempts}", timeout.as_millis()))?;
                daemon.awaiting_done = true;
            }
        }
        Ok(())
    }

    /// Collect one `done` line per daemon, waiting at most `deadline` overall.
    /// A killed daemon reports [`WorkOutcome::Dead`] instead of failing the
    /// collection — the caller decides whether dead daemons were expected
    /// (churn) or a bug (fault-free runs).
    pub fn await_done(&mut self, deadline: Duration) -> Vec<(NodeId, WorkOutcome)> {
        let until = Instant::now() + deadline;
        let mut outcomes = Vec::with_capacity(self.daemons.len());
        for (v, daemon) in self.daemons.iter_mut().enumerate() {
            let outcome = match daemon.ctrl.as_mut() {
                _ if daemon.stashed_done.is_some() => {
                    daemon.awaiting_done = false;
                    daemon.stashed_done.take().expect("guard checked")
                }
                _ if !daemon.awaiting_done => WorkOutcome::Idle,
                None => WorkOutcome::Dead,
                Some(ctrl) => {
                    let left = until.saturating_duration_since(Instant::now());
                    match ctrl.recv_timeout(left.max(Duration::from_millis(1))) {
                        Ok(line) => match parse_done(&line) {
                            Some(outcome) => {
                                daemon.awaiting_done = false;
                                outcome
                            }
                            None => WorkOutcome::Dead,
                        },
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            WorkOutcome::TimedOut
                        }
                        Err(_) => {
                            daemon.ctrl = None;
                            WorkOutcome::Dead
                        }
                    }
                }
            };
            outcomes.push((v, outcome));
        }
        outcomes
    }

    /// Broadcast a recovery epoch bump to every live daemon — the cluster
    /// harness is the failure detector of the process tier, exactly as the
    /// fault handle is for the in-process tiers. Killed daemons miss the bump
    /// (a crashed node must not learn anything) and catch up after
    /// [`Cluster::restart`].
    pub fn broadcast_epoch(&mut self, epoch: u64) -> io::Result<()> {
        self.epoch = epoch;
        for daemon in &mut self.daemons {
            if let Some(ctrl) = daemon.ctrl.as_mut() {
                ctrl.send(&format!("epoch {epoch}"))?;
            }
        }
        // Acks in a second pass: the bump reaches every live daemon promptly
        // even if one is slow to answer. A workload finishing concurrently can
        // interleave its `done` line before the ack — stash it for the next
        // await_done instead of mistaking it for a protocol error.
        for (v, daemon) in self.daemons.iter_mut().enumerate() {
            let Some(ctrl) = daemon.ctrl.as_mut() else {
                continue;
            };
            loop {
                match ctrl.recv_timeout(HANDSHAKE_TIMEOUT) {
                    Ok(line) if line == "ok" => break,
                    Ok(line) => match parse_done(&line) {
                        Some(done) => daemon.stashed_done = Some(done),
                        None => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("node {v}: expected epoch ack, got {line:?}"),
                            ))
                        }
                    },
                    Err(_) => {
                        daemon.ctrl = None;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// SIGKILL node `v`'s daemon — a real dead PID, no goodbye, no journal:
    /// the process-granularity crash the in-process tiers can only simulate.
    /// Follow with [`Cluster::broadcast_epoch`] (detection) and, optionally,
    /// [`Cluster::restart`].
    pub fn kill(&mut self, v: NodeId) -> io::Result<()> {
        let daemon = &mut self.daemons[v];
        daemon.usage = scrape(daemon.child.id()).ok().or(daemon.usage);
        daemon.child.kill()?;
        daemon.child.wait()?;
        daemon.reaped = true;
        daemon.ctrl = None;
        daemon.awaiting_done = false;
        daemon.stashed_done = None;
        // A SIGKILLed incarnation leaves no journal; a stale file from an
        // earlier graceful run of the same path must not masquerade as one.
        let _ = std::fs::remove_file(&daemon.journal);
        Ok(())
    }

    /// Respawn node `v` after a [`Cluster::kill`]: the new incarnation rebinds
    /// the same advertised address (`SO_REUSEADDR`), rendezvouses over the
    /// control channel, gets its request-id counter floored at
    /// [`RESTART_SEQ_BASE`] (ids from the dead incarnation are still chained
    /// in surviving journals), and is brought to the current epoch.
    pub fn restart(&mut self, v: NodeId) -> io::Result<()> {
        assert!(self.daemons[v].reaped, "restart follows kill");
        let journal = self.daemons[v].journal.clone();
        let tree_wire = tree_to_wire(&self.cfg.tree);
        let mut cmd = Command::new(&self.cfg.arrowd);
        cmd.arg("--node")
            .arg(v.to_string())
            .arg("--parents")
            .arg(&tree_wire)
            .arg("--objects")
            .arg(self.cfg.objects.to_string())
            .arg("--control")
            .arg(self.control_addr.to_string())
            .arg("--journal")
            .arg(&journal)
            .arg("--listen")
            .arg(self.daemons[v].addr.to_string())
            .arg("--seq-base")
            .arg(RESTART_SEQ_BASE.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if self.cfg.fault_tolerant {
            cmd.arg("--fault-tolerant");
        }
        let mut child = cmd.spawn()?;

        // The restarted daemon is the only dialer, but accept with a deadline
        // and a liveness check — a daemon that fails to rebind its port exits
        // instead of dialing in, and that must not hang the harness.
        self.control.set_nonblocking(true)?;
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let stream = loop {
            match self.control.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(status) = child.try_wait()? {
                        self.control.set_nonblocking(false)?;
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            format!("restarted arrowd node {v} exited during launch: {status}"),
                        ));
                    }
                    if Instant::now() > deadline {
                        self.control.set_nonblocking(false)?;
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("restarted arrowd node {v} never dialed the control channel"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    self.control.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        };
        self.control.set_nonblocking(false)?;
        stream.set_nonblocking(false)?;
        let mut conn = LineConn::new(stream);
        let hello = conn.recv_timeout(HANDSHAKE_TIMEOUT)?;
        let (got, addr) =
            parse_hello(&hello).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if got != v {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected hello from restarted node {v}, got node {got}"),
            ));
        }
        if addr != self.daemons[v].addr {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!(
                    "restarted node {v} rebound {addr} instead of {}",
                    self.daemons[v].addr
                ),
            ));
        }
        let peers_line = format!(
            "peers {}",
            self.daemons
                .iter()
                .map(|d| d.addr.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        conn.send(&peers_line)?;
        expect_line(&mut conn, "ready", v)?;
        if self.epoch > 0 {
            conn.send(&format!("epoch {}", self.epoch))?;
            expect_line(&mut conn, "ok", v)?;
        }
        let daemon = &mut self.daemons[v];
        daemon.child = child;
        daemon.ctrl = Some(conn);
        daemon.reaped = false;
        Ok(())
    }

    /// Scrape current CPU/RSS usage of every live daemon (also called
    /// internally just before teardown, so the report's numbers cover the
    /// whole run).
    pub fn scrape_usage(&mut self) -> Vec<(NodeId, ProcUsage)> {
        let mut out = Vec::new();
        for (v, daemon) in self.daemons.iter_mut().enumerate() {
            if !daemon.reaped {
                if let Ok(usage) = scrape(daemon.child.id()) {
                    daemon.usage = Some(usage);
                    out.push((v, usage));
                }
            }
        }
        out
    }

    /// Graceful teardown over the control channel: every live daemon drains
    /// its mesh (Goodbye handshakes), flushes its journal, answers `bye` and
    /// exits; then all journals are read and assembled. Daemons whose control
    /// channel is gone (killed, never restarted) are skipped — their missing
    /// journals are the crash semantics, not an error.
    pub fn shutdown(mut self) -> io::Result<ClusterReport> {
        self.scrape_usage();
        for daemon in &mut self.daemons {
            if let Some(ctrl) = daemon.ctrl.as_mut() {
                let _ = ctrl.send("shutdown");
            }
        }
        for daemon in &mut self.daemons {
            if let Some(ctrl) = daemon.ctrl.as_mut() {
                // Drain interleaved lines (a late `done`) until the `bye`; a
                // daemon that died instead still gets reaped below.
                loop {
                    match ctrl.recv_timeout(HANDSHAKE_TIMEOUT) {
                        Ok(line) if line == "bye" => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
            }
        }
        self.reap_all();
        self.assemble()
    }

    /// Signal-driven teardown: SIGTERM every live daemon (exercising the
    /// graceful-termination path — Goodbye drain plus journal flush — without
    /// any control traffic), wait up to the configured grace, escalate to
    /// SIGKILL for stragglers, then assemble the surviving journals.
    pub fn terminate(mut self) -> io::Result<ClusterReport> {
        self.scrape_usage();
        for daemon in &mut self.daemons {
            if !daemon.reaped {
                let _ = netpoll::kill(daemon.child.id(), netpoll::SIGTERM);
            }
        }
        let deadline = Instant::now() + self.cfg.grace;
        for daemon in &mut self.daemons {
            while !daemon.reaped {
                match daemon.child.try_wait() {
                    Ok(Some(_)) => daemon.reaped = true,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = daemon.child.kill();
                        let _ = daemon.child.wait();
                        daemon.reaped = true;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => daemon.reaped = true,
                }
            }
        }
        self.assemble()
    }

    fn reap_all(&mut self) {
        let deadline = Instant::now() + self.cfg.grace;
        for daemon in &mut self.daemons {
            while !daemon.reaped {
                match daemon.child.try_wait() {
                    Ok(Some(_)) => daemon.reaped = true,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = daemon.child.kill();
                        let _ = daemon.child.wait();
                        daemon.reaped = true;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => daemon.reaped = true,
                }
            }
        }
    }

    fn assemble(self) -> io::Result<ClusterReport> {
        let mut per_node = Vec::with_capacity(self.daemons.len());
        let mut issued: Vec<Request> = Vec::new();
        let mut records: Vec<OrderRecord> = Vec::new();
        let mut failures: Vec<(NodeId, String)> = Vec::new();
        let mut metrics = MetricsSnapshot::default();
        for (v, daemon) in self.daemons.iter().enumerate() {
            let journal = match read_journal(&daemon.journal) {
                Ok(j) => Some(j),
                Err(e) if e.kind() == io::ErrorKind::NotFound => None, // SIGKILLed
                Err(e) => return Err(e),
            };
            if let Some(j) = &journal {
                issued.extend_from_slice(&j.issued);
                records.extend_from_slice(&j.records);
                failures.extend(j.failures.iter().cloned());
                metrics.merge(&j.metrics);
            }
            per_node.push(NodeReport {
                node: v,
                usage: daemon.usage,
                journal,
            });
        }
        issued.sort_by_key(|r| (r.time, r.id));
        Ok(ClusterReport {
            schedule: RequestSchedule::from_requests(issued),
            records,
            failures,
            metrics,
            per_node,
        })
    }
}

impl Drop for Cluster {
    /// Leaked clusters (test panics, early returns) must not strand daemon
    /// processes: kill whatever is still running.
    fn drop(&mut self) {
        for daemon in &mut self.daemons {
            if !daemon.reaped {
                let _ = daemon.child.kill();
                let _ = daemon.child.wait();
                daemon.reaped = true;
            }
        }
    }
}

fn parse_hello(line: &str) -> Result<(NodeId, SocketAddr), String> {
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("hello"), Some(v), Some(addr)) => {
            let v = v.parse().map_err(|e| format!("bad hello node: {e}"))?;
            let addr = addr.parse().map_err(|e| format!("bad hello addr: {e}"))?;
            Ok((v, addr))
        }
        _ => Err(format!("expected hello line, got {line:?}")),
    }
}

fn parse_done(line: &str) -> Option<WorkOutcome> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("done") {
        return None;
    }
    let completed = parts.next()?.parse().ok()?;
    let failed = parts.next()?.parse().ok()?;
    let first_failed_obj = match parts.next()? {
        "-" => None,
        o => Some(ObjectId(o.parse().ok()?)),
    };
    Some(WorkOutcome::Done {
        completed,
        failed,
        first_failed_obj,
    })
}

fn expect_line(conn: &mut LineConn, want: &str, node: NodeId) -> io::Result<()> {
    let got = conn.recv_timeout(HANDSHAKE_TIMEOUT)?;
    if got == want {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node {node}: expected {want:?}, got {got:?}"),
        ))
    }
}

/// One daemon's slice of the final report.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node id.
    pub node: NodeId,
    /// Last scraped CPU/RSS usage (`None` if the daemon died before the first
    /// scrape).
    pub usage: Option<ProcUsage>,
    /// The decoded journal (`None` for a SIGKILLed incarnation that never
    /// restarted — its history died with it).
    pub journal: Option<DaemonJournal>,
}

/// Everything a cluster run leaves behind, assembled from the per-process
/// journals — the process-tier analogue of [`arrow_net::NetReport`], plus
/// per-process resource usage.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    schedule: RequestSchedule,
    records: Vec<OrderRecord>,
    failures: Vec<(NodeId, String)>,
    metrics: MetricsSnapshot,
    per_node: Vec<NodeReport>,
}

impl ClusterReport {
    /// Every issued request across all journals, sorted by issue time.
    pub fn schedule(&self) -> &RequestSchedule {
        &self.schedule
    }

    /// Every successor-notification record across all journals.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Transport failures daemons reported (empty on a healthy cluster).
    pub fn failures(&self) -> &[(NodeId, String)] {
        &self.failures
    }

    /// The cluster-wide metrics snapshot: every daemon's registry, merged.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Per-daemon reports (usage + journal), indexed by node.
    pub fn per_node(&self) -> &[NodeReport] {
        &self.per_node
    }

    /// Assemble and validate every per-object queuing order — the contract of
    /// a fault-free run, identical to [`arrow_net::NetReport::validated_orders`]
    /// but spanning process boundaries.
    pub fn validated_orders(&self) -> Result<Vec<(ObjectId, QueuingOrder)>, OrderError> {
        per_object_orders(&self.records, &self.schedule).map_err(|(_, e)| e)
    }

    /// Validate the run's records under churn (per-epoch fork-freedom, one
    /// complete chain per object in `final_epoch`) — the contract of a run
    /// with kills and restarts, where a killed daemon's journal is legitimately
    /// missing.
    pub fn validate_churn(&self, final_epoch: u64) -> Result<(), ChurnOrderError> {
        validate_churn_records(&self.records, final_epoch)
    }

    /// Records evidencing a token regeneration (a request chained directly
    /// behind a recovery epoch's regenerated virtual root).
    pub fn token_regenerations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.epoch > 0 && r.predecessor.is_root())
            .count()
    }
}
