//! The lock-free per-node metrics registry.
//!
//! One shared schema for every execution tier: a fixed enum of counters
//! ([`Metric`]) backed by an array of relaxed atomics, plus log-bucketed
//! atomic histograms ([`HistMetric`]) for latency-shaped quantities (timer
//! dwell, acquire latency, write batch sizes). Tier stat structs (`NetStats`,
//! the thread runtime's `RuntimeStats`) are façades over one
//! [`MetricsRegistry`] instead of carrying ad-hoc `AtomicU64` fields, so
//! snapshots from different tiers diff and merge against each other.
//!
//! Everything is wait-free writes (one `fetch_add` per observation) and
//! consistent-enough reads: a [`MetricsSnapshot`] taken while writers run may
//! tear *across* metrics but never within one, which is the usual contract for
//! monitoring counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Every counter the tiers share. The discriminant indexes the registry's
/// atomic array; names are the wire/JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Arrow `queue()` frames/messages sent between distinct nodes.
    QueueFrames,
    /// Token grant frames/messages sent between distinct nodes.
    TokenFrames,
    /// Every frame written to a socket, handshakes and goodbyes included.
    FramesSent,
    /// Total bytes written to sockets (wire encoding, length prefixes included).
    BytesSent,
    /// Total bytes read off sockets (batched readers + handshake reads).
    BytesReceived,
    /// `write` syscalls issued by the node writers.
    SocketWrites,
    /// `read` syscalls that returned data.
    SocketReads,
    /// Connections dialed.
    ConnectionsDialed,
    /// Connections accepted.
    ConnectionsAccepted,
    /// Acquisitions granted to local applications.
    Acquisitions,
    /// Frames that arrived outside the protocol; should stay zero.
    UnexpectedFrames,
    /// Dials that exhausted their retry budget; should stay zero when healthy.
    DialFailures,
    /// Frames/messages dropped by fault injection or crashed endpoints.
    FramesDropped,
    /// Protocol inputs rejected for carrying a stale recovery epoch.
    StaleEpochDrops,
    /// Queuing requests issued by local applications.
    RequestsIssued,
    /// Recovery epochs adopted (per node-adoption, not per broadcast).
    EpochsAdopted,
    /// Grants self-released on behalf of vanished local waiters.
    OrphanReleases,
    /// Reactor shard `epoll_wait` returns (socket tier; 0 on thread tiers).
    ReactorWakeups,
    /// Socket reads/writes that returned `WouldBlock` and re-armed interest.
    WouldBlockRetries,
    /// Simultaneous-dial duplicate connections collapsed to one live link.
    DialRacesCollapsed,
}

impl Metric {
    /// Every counter, in discriminant order (the snapshot/JSON order).
    pub const ALL: [Metric; 20] = [
        Metric::QueueFrames,
        Metric::TokenFrames,
        Metric::FramesSent,
        Metric::BytesSent,
        Metric::BytesReceived,
        Metric::SocketWrites,
        Metric::SocketReads,
        Metric::ConnectionsDialed,
        Metric::ConnectionsAccepted,
        Metric::Acquisitions,
        Metric::UnexpectedFrames,
        Metric::DialFailures,
        Metric::FramesDropped,
        Metric::StaleEpochDrops,
        Metric::RequestsIssued,
        Metric::EpochsAdopted,
        Metric::OrphanReleases,
        Metric::ReactorWakeups,
        Metric::WouldBlockRetries,
        Metric::DialRacesCollapsed,
    ];

    /// Number of counters.
    pub const COUNT: usize = Metric::ALL.len();

    /// The stable snake_case schema name (JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Metric::QueueFrames => "queue_frames",
            Metric::TokenFrames => "token_frames",
            Metric::FramesSent => "frames_sent",
            Metric::BytesSent => "bytes_sent",
            Metric::BytesReceived => "bytes_received",
            Metric::SocketWrites => "socket_writes",
            Metric::SocketReads => "socket_reads",
            Metric::ConnectionsDialed => "connections_dialed",
            Metric::ConnectionsAccepted => "connections_accepted",
            Metric::Acquisitions => "acquisitions",
            Metric::UnexpectedFrames => "unexpected_frames",
            Metric::DialFailures => "dial_failures",
            Metric::FramesDropped => "frames_dropped",
            Metric::StaleEpochDrops => "stale_epoch_drops",
            Metric::RequestsIssued => "requests_issued",
            Metric::EpochsAdopted => "epochs_adopted",
            Metric::OrphanReleases => "orphan_releases",
            Metric::ReactorWakeups => "reactor_wakeups",
            Metric::WouldBlockRetries => "would_block_retries",
            Metric::DialRacesCollapsed => "dial_races_collapsed",
        }
    }
}

/// Histogram-shaped metrics: log₂-bucketed distributions of non-negative
/// integer samples (nanoseconds, frame counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistMetric {
    /// Nanoseconds a frame sat in a node writer's timer heap before its flush
    /// deadline fired (socket tier; 0 on instant-latency meshes that bypass
    /// the heap).
    TimerDwellNanos,
    /// Nanoseconds from issuing an acquire to its grant landing (tier-defined
    /// measurement point).
    AcquireNanos,
    /// Frames carried by one coalesced socket `write` call.
    WriteBatchFrames,
    /// Readiness events delivered per reactor shard wakeup (batching factor
    /// of the event loop; socket tier only).
    EventsPerWakeup,
    /// Shard command-inbox depth observed at each drain (backlog between the
    /// handle threads and the owning shard).
    ShardQueueDepth,
}

impl HistMetric {
    /// Every histogram, in discriminant order.
    pub const ALL: [HistMetric; 5] = [
        HistMetric::TimerDwellNanos,
        HistMetric::AcquireNanos,
        HistMetric::WriteBatchFrames,
        HistMetric::EventsPerWakeup,
        HistMetric::ShardQueueDepth,
    ];

    /// Number of histograms.
    pub const COUNT: usize = HistMetric::ALL.len();

    /// The stable snake_case schema name (JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            HistMetric::TimerDwellNanos => "timer_dwell_nanos",
            HistMetric::AcquireNanos => "acquire_nanos",
            HistMetric::WriteBatchFrames => "write_batch_frames",
            HistMetric::EventsPerWakeup => "events_per_wakeup",
            HistMetric::ShardQueueDepth => "shard_queue_depth",
        }
    }
}

/// Buckets per log histogram: bucket `b` holds samples whose value `v`
/// satisfies `bit_length(v) == b` (bucket 0 holds `v == 0`), so bucket `b ≥ 1`
/// spans `[2^(b-1), 2^b)` and 65 buckets cover all of `u64`.
pub const LOG_BUCKETS: usize = 65;

/// The bucket a sample lands in: `bit_length(v)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A lock-free log₂ histogram.
#[derive(Debug)]
struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl LogHistogram {
    fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// The per-node (or per-runtime) metrics registry: every [`Metric`] counter and
/// every [`HistMetric`] histogram, lock-free.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Metric::COUNT],
    hists: [LogHistogram; HistMetric::COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| LogHistogram::new()),
        }
    }

    /// Add 1 to `m`.
    #[inline]
    pub fn inc(&self, m: Metric) {
        self.add(m, 1);
    }

    /// Add `n` to `m`.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `m`.
    #[inline]
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    /// Record one sample into histogram `h`.
    #[inline]
    pub fn observe(&self, h: HistMetric, v: u64) {
        self.hists[h as usize].observe(v);
    }

    /// A plain-number snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| {
                let h = &self.hists[i];
                HistSnapshot {
                    buckets: std::array::from_fn(|b| h.buckets[b].load(Ordering::Relaxed)),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

/// Frozen histogram numbers (one [`HistMetric`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`bucket b` spans `[2^(b-1), 2^b)`, bucket 0
    /// holds zeros).
    pub buckets: [u64; LOG_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
}

impl HistSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket the
    /// q-th sample falls in (an over-estimate by at most 2×, the log-bucket
    /// resolution). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if b == 0 {
                    0
                } else {
                    (1u64 << b).saturating_sub(1)
                });
            }
        }
        None
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen view of a [`MetricsRegistry`]: plain numbers, supporting
/// [`diff`](MetricsSnapshot::diff) (interval deltas) and
/// [`merge`](MetricsSnapshot::merge) (cross-node aggregation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Metric::COUNT],
    hists: [HistSnapshot; HistMetric::COUNT],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; Metric::COUNT],
            hists: [HistSnapshot {
                buckets: [0; LOG_BUCKETS],
                count: 0,
                sum: 0,
            }; HistMetric::COUNT],
        }
    }
}

impl MetricsSnapshot {
    /// Value of counter `m`.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// The frozen histogram `h`.
    pub fn hist(&self, h: HistMetric) -> &HistSnapshot {
        &self.hists[h as usize]
    }

    /// The delta `self - earlier`, saturating at zero (counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for i in 0..Metric::COUNT {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..HistMetric::COUNT {
            for b in 0..LOG_BUCKETS {
                out.hists[i].buckets[b] =
                    self.hists[i].buckets[b].saturating_sub(earlier.hists[i].buckets[b]);
            }
            out.hists[i].count = self.hists[i].count.saturating_sub(earlier.hists[i].count);
            out.hists[i].sum = self.hists[i].sum.saturating_sub(earlier.hists[i].sum);
        }
        out
    }

    /// Accumulate `other` into `self` (cross-node aggregation: the run-level
    /// view is the merge of every node's snapshot).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for i in 0..Metric::COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..HistMetric::COUNT {
            for b in 0..LOG_BUCKETS {
                self.hists[i].buckets[b] += other.hists[i].buckets[b];
            }
            self.hists[i].count += other.hists[i].count;
            self.hists[i].sum += other.hists[i].sum;
        }
    }

    /// Render as a small stable JSON object: every counter by schema name,
    /// then every histogram as `{count, sum, p50, p99}` (hand-written — the
    /// offline build has no serde backend).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in Metric::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", m.name(), self.get(*m)));
        }
        for h in HistMetric::ALL {
            let s = self.hist(h);
            out.push_str(&format!(
                ", \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                h.name(),
                s.count,
                s.sum,
                s.quantile(0.50).unwrap_or(0),
                s.quantile(0.99).unwrap_or(0)
            ));
        }
        out.push('}');
        out
    }

    /// Render as a compact line-oriented wire text for cross-process transport
    /// (daemon control channels, journal files): one `ctr <name> <value>` line
    /// per non-zero counter, one `hist <name> <count> <sum> <b=c>...` line per
    /// non-empty histogram with sparse `bucket=count` pairs. Zero counters and
    /// empty histograms are omitted — [`from_wire`](MetricsSnapshot::from_wire)
    /// restores them as zero — so the text stays small for quiet nodes.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for m in Metric::ALL {
            let v = self.get(m);
            if v != 0 {
                out.push_str(&format!("ctr {} {v}\n", m.name()));
            }
        }
        for h in HistMetric::ALL {
            let s = self.hist(h);
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!("hist {} {} {}", h.name(), s.count, s.sum));
            for (b, &c) in s.buckets.iter().enumerate() {
                if c != 0 {
                    out.push_str(&format!(" {b}={c}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the text produced by [`to_wire`](MetricsSnapshot::to_wire).
    /// Unknown metric names are an error (schema drift between the two ends
    /// must be loud, not silently dropped); blank lines are ignored.
    pub fn from_wire(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let kind = parts.next().unwrap_or_default();
            let num = |s: Option<&str>, what: &str| -> Result<u64, String> {
                s.ok_or_else(|| format!("missing {what} in metrics line {line:?}"))?
                    .parse::<u64>()
                    .map_err(|e| format!("bad {what} in metrics line {line:?}: {e}"))
            };
            match kind {
                "ctr" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("missing counter name in {line:?}"))?;
                    let m = Metric::ALL
                        .iter()
                        .find(|m| m.name() == name)
                        .ok_or_else(|| format!("unknown counter {name:?}"))?;
                    snap.counters[*m as usize] = num(parts.next(), "value")?;
                }
                "hist" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("missing histogram name in {line:?}"))?;
                    let h = HistMetric::ALL
                        .iter()
                        .find(|h| h.name() == name)
                        .ok_or_else(|| format!("unknown histogram {name:?}"))?;
                    let hs = &mut snap.hists[*h as usize];
                    hs.count = num(parts.next(), "count")?;
                    hs.sum = num(parts.next(), "sum")?;
                    for pair in parts {
                        let (b, c) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("bad bucket pair {pair:?} in {line:?}"))?;
                        let b: usize = b
                            .parse()
                            .map_err(|e| format!("bad bucket index {b:?}: {e}"))?;
                        if b >= LOG_BUCKETS {
                            return Err(format!("bucket index {b} out of range"));
                        }
                        hs.buckets[b] = c
                            .parse()
                            .map_err(|e| format!("bad bucket count {c:?}: {e}"))?;
                    }
                }
                other => return Err(format!("unknown metrics line kind {other:?}")),
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_inc_and_snapshot() {
        let r = MetricsRegistry::new();
        r.inc(Metric::QueueFrames);
        r.add(Metric::BytesSent, 120);
        r.inc(Metric::QueueFrames);
        assert_eq!(r.get(Metric::QueueFrames), 2);
        let snap = r.snapshot();
        assert_eq!(snap.get(Metric::QueueFrames), 2);
        assert_eq!(snap.get(Metric::BytesSent), 120);
        assert_eq!(snap.get(Metric::TokenFrames), 0);
    }

    #[test]
    fn histograms_quantile_and_mean() {
        let r = MetricsRegistry::new();
        for v in [1u64, 2, 3, 100, 1000] {
            r.observe(HistMetric::AcquireNanos, v);
        }
        let snap = r.snapshot();
        let h = snap.hist(HistMetric::AcquireNanos);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1106);
        // p50 is the 3rd sample (value 3, bucket [2,4) → upper bound 3).
        assert_eq!(h.quantile(0.5), Some(3));
        // p99 lands in the 1000 sample's bucket [512, 1024).
        assert_eq!(h.quantile(0.99), Some(1023));
        assert!((h.mean() - 221.2).abs() < 1e-9);
        assert_eq!(snap.hist(HistMetric::TimerDwellNanos).quantile(0.5), None);
    }

    #[test]
    fn diff_is_the_interval_delta() {
        let r = MetricsRegistry::new();
        r.add(Metric::Acquisitions, 5);
        let t0 = r.snapshot();
        r.add(Metric::Acquisitions, 7);
        r.observe(HistMetric::WriteBatchFrames, 4);
        let t1 = r.snapshot();
        let d = t1.diff(&t0);
        assert_eq!(d.get(Metric::Acquisitions), 7);
        assert_eq!(d.hist(HistMetric::WriteBatchFrames).count, 1);
    }

    #[test]
    fn merge_aggregates_nodes() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc(Metric::TokenFrames);
        b.add(Metric::TokenFrames, 2);
        a.observe(HistMetric::AcquireNanos, 10);
        b.observe(HistMetric::AcquireNanos, 20);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.get(Metric::TokenFrames), 3);
        assert_eq!(total.hist(HistMetric::AcquireNanos).count, 2);
        assert_eq!(total.hist(HistMetric::AcquireNanos).sum, 30);
    }

    #[test]
    fn json_has_every_schema_name() {
        let snap = MetricsRegistry::new().snapshot();
        let json = snap.to_json();
        for m in Metric::ALL {
            assert!(json.contains(m.name()), "missing {}", m.name());
        }
        for h in HistMetric::ALL {
            assert!(json.contains(h.name()), "missing {}", h.name());
        }
    }

    #[test]
    fn wire_round_trips_counters_and_histograms() {
        let r = MetricsRegistry::new();
        r.add(Metric::QueueFrames, 42);
        r.add(Metric::BytesSent, u64::MAX);
        for v in [0u64, 1, 7, 100, 1_000_000] {
            r.observe(HistMetric::AcquireNanos, v);
        }
        r.observe(HistMetric::WriteBatchFrames, 3);
        let snap = r.snapshot();
        let wire = snap.to_wire();
        let back = MetricsSnapshot::from_wire(&wire).unwrap();
        assert_eq!(back, snap);
        // The empty snapshot is the empty text.
        let empty = MetricsSnapshot::default();
        assert_eq!(empty.to_wire(), "");
        assert_eq!(MetricsSnapshot::from_wire("").unwrap(), empty);
    }

    #[test]
    fn wire_rejects_schema_drift() {
        assert!(MetricsSnapshot::from_wire("ctr no_such_counter 1").is_err());
        assert!(MetricsSnapshot::from_wire("hist no_such_hist 1 2").is_err());
        assert!(MetricsSnapshot::from_wire("bogus line").is_err());
        assert!(MetricsSnapshot::from_wire("ctr queue_frames").is_err());
        assert!(MetricsSnapshot::from_wire("hist acquire_nanos 1 2 99=1").is_err());
        assert!(MetricsSnapshot::from_wire("hist acquire_nanos 1 2 65=1").is_err());
        assert!(MetricsSnapshot::from_wire("ctr queue_frames -3").is_err());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        let joins: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.inc(Metric::FramesSent);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(r.get(Metric::FramesSent), 4000);
    }
}
