//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One process (`pid` 0), one track per directory node (`tid` = node id).
//! Each request contributes:
//!
//! * a `queue r<id>` complete-span (`ph: "X"`) per hop, on the *sending*
//!   node's track, lasting from frame departure to arrival;
//! * `transit` / `queue-wait` / `grant-wait` phase spans on the request's
//!   origin track, so a request's whole life reads left-to-right on one row;
//! * a `token r<id>` span on the granting node's track for the token flight;
//! * a `grant r<id>` instant event (`ph: "i"`) at delivery.
//!
//! Timestamps are microseconds (the format's native unit); callers pass the
//! scale from the recorder's time base (`1e6` for wall-clock seconds and for
//! simulation units alike). Load the file in [ui.perfetto.dev] via *Open
//! trace file* — see the README's Perfetto quickstart.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::analysis::RequestTrace;

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    ");
    out.push_str(body);
}

/// Render reconstructed traces as a Chrome trace-event JSON document.
/// `us_per_unit` converts recorder time to microseconds (use `1e6` when the
/// recorder's base is seconds or simulation units).
pub fn export(traces: &[RequestTrace], us_per_unit: f64) -> String {
    let us = |t: f64| t * us_per_unit;
    let mut nodes: Vec<usize> = Vec::new();
    let note = |n: usize, nodes: &mut Vec<usize>| {
        if !nodes.contains(&n) {
            nodes.push(n);
        }
    };
    for t in traces {
        note(t.origin, &mut nodes);
        for h in &t.hops {
            note(h.from, &mut nodes);
            note(h.to, &mut nodes);
        }
        if let Some(q) = &t.queued {
            note(q.node, &mut nodes);
        }
    }
    nodes.sort_unstable();

    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for &n in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {n}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"node {n}\"}}}}"
            ),
        );
    }
    for t in traces {
        let label = format!("o{} r{}", t.obj, t.req);
        for h in &t.hops {
            let Some(received) = h.received else { continue };
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
                     \"name\": \"queue {label}\", \"cat\": \"hop\", \
                     \"args\": {{\"from\": {}, \"to\": {}}}}}",
                    h.from,
                    us(h.sent),
                    (us(received) - us(h.sent)).max(0.0),
                    h.from,
                    h.to
                ),
            );
        }
        if let (Some(p), Some(issued)) = (t.phases(), t.issued_at) {
            let mut t0 = issued;
            for (name, dur) in [
                ("transit", p.transit),
                ("queue-wait", p.queue_wait),
                ("grant-wait", p.grant_wait),
            ] {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \
                         \"dur\": {:.3}, \"name\": \"{name} {label}\", \"cat\": \"phase\", \
                         \"args\": {{}}}}",
                        t.origin,
                        us(t0),
                        us(dur).max(0.0)
                    ),
                );
                t0 += dur;
            }
        }
        if let (Some((sent, from)), Some(received)) = (t.token_sent, t.token_received) {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {from}, \"ts\": {:.3}, \
                     \"dur\": {:.3}, \"name\": \"token {label}\", \"cat\": \"token\", \
                     \"args\": {{}}}}",
                    us(sent),
                    (us(received) - us(sent)).max(0.0)
                ),
            );
        }
        if let Some(granted) = t.granted_at {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"s\": \"t\", \
                     \"name\": \"grant {label}\"}}",
                    t.origin,
                    us(granted)
                ),
            );
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Minimal JSON well-formedness check, returning the number of elements in the
/// top-level object's `traceEvents` array. Exists so the CI trace-smoke step
/// (and tests) can validate emitted documents without a JSON dependency; it
/// accepts exactly standard JSON, it is just not a full deserializer.
pub fn parse_check(text: &str) -> Result<usize, String> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
        events: usize,
        depth: usize,
        in_trace_events: Option<usize>,
    }
    impl<'a> P<'a> {
        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {} (found {:?})",
                    c as char,
                    self.i,
                    self.peek().map(|b| b as char)
                ))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let start = self.i;
            while let Some(c) = self.peek() {
                match c {
                    b'"' => {
                        let s = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                        self.i += 1;
                        return Ok(s);
                    }
                    b'\\' => self.i += 2,
                    _ => self.i += 1,
                }
            }
            Err("unterminated string".into())
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek() {
                Some(b'{') => {
                    self.i += 1;
                    self.depth += 1;
                    self.ws();
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        self.depth -= 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        let key = self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        self.ws();
                        let counting =
                            key == "traceEvents" && self.depth == 1 && self.peek() == Some(b'[');
                        if counting {
                            self.in_trace_events = Some(self.depth);
                        }
                        self.value()?;
                        if counting {
                            self.in_trace_events = None;
                        }
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                self.depth -= 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad object at byte {}", self.i)),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        if self.in_trace_events == Some(self.depth) {
                            self.events += 1;
                        }
                        self.value()?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad array at byte {}", self.i)),
                        }
                    }
                }
                Some(b'"') => self.string().map(|_| ()),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                            self.i += 1;
                        } else {
                            break;
                        }
                    }
                    Ok(())
                }
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.i
                )),
            }
        }
        fn lit(&mut self, word: &str) -> Result<(), String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
    }
    let mut p = P {
        s: text.as_bytes(),
        i: 0,
        events: 0,
        depth: 0,
        in_trace_events: None,
    };
    p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(p.events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::reconstruct;
    use crate::probe::ProbeEvent;
    use crate::recorder::TraceEventRecord;

    fn ev(node: usize, t: f64, ev: ProbeEvent) -> TraceEventRecord {
        TraceEventRecord { node, t, ev }
    }

    fn sample_traces() -> Vec<RequestTrace> {
        reconstruct(&[
            ev(
                2,
                0.0,
                ProbeEvent::RequestIssued {
                    obj: 0,
                    req: 4,
                    origin: 2,
                },
            ),
            ev(
                2,
                0.0,
                ProbeEvent::QueueSent {
                    obj: 0,
                    req: 4,
                    origin: 2,
                    to: 0,
                },
            ),
            ev(
                0,
                1.0,
                ProbeEvent::QueueReceived {
                    obj: 0,
                    req: 4,
                    origin: 2,
                    from: 2,
                },
            ),
            ev(
                0,
                1.0,
                ProbeEvent::QueuedBehind {
                    obj: 0,
                    req: 4,
                    pred: 0,
                    origin: 2,
                },
            ),
            ev(
                0,
                1.5,
                ProbeEvent::TokenSent {
                    obj: 0,
                    req: 4,
                    to: 2,
                },
            ),
            ev(2, 2.5, ProbeEvent::TokenReceived { obj: 0, req: 4 }),
            ev(2, 2.5, ProbeEvent::Granted { obj: 0, req: 4 }),
        ])
    }

    #[test]
    fn export_emits_tracks_hops_phases_and_grants() {
        let json = export(&sample_traces(), 1e6);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("queue o0 r4"));
        assert!(json.contains("transit o0 r4"));
        assert!(json.contains("queue-wait o0 r4"));
        assert!(json.contains("grant-wait o0 r4"));
        assert!(json.contains("token o0 r4"));
        assert!(json.contains("grant o0 r4"));
        // node tracks 0 and 2 both declared
        assert!(json.contains("\"name\": \"node 0\""));
        assert!(json.contains("\"name\": \"node 2\""));
    }

    #[test]
    fn exported_document_passes_the_parser() {
        let json = export(&sample_traces(), 1e6);
        let events = parse_check(&json).expect("well-formed");
        // 2 track-name records + 1 hop + 3 phases + 1 token + 1 grant = 8.
        assert_eq!(events, 8);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_check("{").is_err());
        assert!(parse_check("{\"a\": }").is_err());
        assert!(parse_check("[1, 2,]").is_err());
        assert!(parse_check("{} trailing").is_err());
        assert_eq!(parse_check("{\"traceEvents\": [1, 2, 3]}"), Ok(3));
        assert_eq!(parse_check("{\"traceEvents\": []}"), Ok(0));
        // Nested arrays inside events are not double-counted.
        assert_eq!(
            parse_check("{\"traceEvents\": [{\"x\": [1, 2]}, {}]}"),
            Ok(2)
        );
    }

    #[test]
    fn empty_trace_exports_an_empty_event_list() {
        let json = export(&[], 1e6);
        assert_eq!(parse_check(&json), Ok(0));
    }
}
