//! Causal reconstruction: from a flat probe-event log to per-request traces.
//!
//! Keyed by `(object, request-id)`, [`reconstruct`] rebuilds each request's
//! life: issue at its origin, the chain of `queue()` hops across tree edges,
//! the queuing completion at its predecessor's origin (the arrow invariant:
//! a request's `queue()` path always terminates at the node that issued its
//! predecessor — links along the predecessor's path all point back there), the
//! token transfer, and the grant. From that, the per-phase latency breakdown
//! ([`RequestTrace::phases`]):
//!
//! * **transit** — issue → queuing complete: the find phase, whose cost is the
//!   paper's `c_A` (the tree distance to the predecessor's origin);
//! * **queue-wait** — queuing complete → token sent: how long the token stayed
//!   with the predecessor (holder think time + upstream queue);
//! * **grant-wait** — token sent → grant delivered: token transit plus local
//!   delivery.
//!
//! [`report`] then scores each request against the instance geometry: observed
//! path cost (sum of traversed tree-edge weights) versus the direct graph
//! distance to the predecessor's origin — the *per-request* stretch whose
//! distribution Theorem 3.19 bounds in aggregate.

use crate::probe::ProbeEvent;
use crate::recorder::TraceEventRecord;
use std::collections::BTreeMap;

/// One traversed `queue()` hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Sending node.
    pub from: usize,
    /// Receiving tree neighbour.
    pub to: usize,
    /// When the frame left `from` (recorder time base).
    pub sent: f64,
    /// When it arrived at `to` (`None` if the receive event is missing).
    pub received: Option<f64>,
}

/// Where and behind whom a request finished queuing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedAt {
    /// Completion time.
    pub t: f64,
    /// Node where the path terminated (the predecessor's origin).
    pub node: usize,
    /// The predecessor request (0 = the virtual root request).
    pub pred: u64,
}

/// The per-phase latency breakdown of one completed acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phases {
    /// Issue → queuing complete.
    pub transit: f64,
    /// Queuing complete → token sent (or granted, for local handoffs).
    pub queue_wait: f64,
    /// Token sent → grant delivered (0 for local handoffs).
    pub grant_wait: f64,
    /// Issue → grant delivered.
    pub total: f64,
}

/// Everything the trace knows about one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Object requested.
    pub obj: u32,
    /// Request id.
    pub req: u64,
    /// Origin node (from the issue event, or the first hop's sender).
    pub origin: usize,
    /// Issue time, if the issue event was captured.
    pub issued_at: Option<f64>,
    /// The causal chain of `queue()` hops, origin outwards.
    pub hops: Vec<Hop>,
    /// Queuing completion (path termination at the predecessor's origin).
    pub queued: Option<QueuedAt>,
    /// Token departure towards this request's origin: `(time, from node)`.
    /// `None` for local handoffs (predecessor shares the origin).
    pub token_sent: Option<(f64, usize)>,
    /// Token arrival at the origin.
    pub token_received: Option<f64>,
    /// Grant delivery to the local application.
    pub granted_at: Option<f64>,
    /// Release by the local application.
    pub released_at: Option<f64>,
}

impl RequestTrace {
    /// True when the trace is causally complete: issued, every hop's receive
    /// captured, the chain links origin → … → the queuing node without gaps,
    /// and the grant was delivered.
    pub fn complete(&self) -> bool {
        let Some(q) = &self.queued else { return false };
        if self.issued_at.is_none() || self.granted_at.is_none() {
            return false;
        }
        let mut at = self.origin;
        for hop in &self.hops {
            if hop.from != at || hop.received.is_none() {
                return false;
            }
            at = hop.to;
        }
        at == q.node
    }

    /// Sum of traversed tree-edge weights — the observed find cost, equal to
    /// the paper's `c_A` contribution `d_T(origin, predecessor origin)` when
    /// the chain is complete (queue frames travel tree edges only).
    pub fn path_cost(&self, edge_weight: &dyn Fn(usize, usize) -> f64) -> f64 {
        self.hops.iter().map(|h| edge_weight(h.from, h.to)).sum()
    }

    /// The per-phase breakdown; `None` until issue, queuing and grant have all
    /// been observed.
    pub fn phases(&self) -> Option<Phases> {
        let issued = self.issued_at?;
        let queued = self.queued.as_ref()?.t;
        let granted = self.granted_at?;
        let (queue_end, grant_wait) = match self.token_sent {
            Some((sent, _)) => (sent, granted - sent),
            // Local handoff: the token never crossed a link, the whole wait
            // was spent queued behind the predecessor.
            None => (granted, 0.0),
        };
        Some(Phases {
            transit: queued - issued,
            queue_wait: queue_end - queued,
            grant_wait,
            total: granted - issued,
        })
    }
}

/// Rebuild per-request traces from a flat (time-sorted or not) event log.
/// Requests appear in ascending `(obj, req)` order.
pub fn reconstruct(events: &[TraceEventRecord]) -> Vec<RequestTrace> {
    // Bucket the raw events per (obj, req); BTreeMap gives a stable output order.
    #[derive(Default)]
    struct Raw {
        issued: Option<(f64, usize)>,
        sends: Vec<(f64, usize, usize)>, // (t, from, to)
        recvs: Vec<(f64, usize, usize)>, // (t, at, from)
        queued: Option<QueuedAt>,
        token_sent: Option<(f64, usize)>,
        token_received: Option<f64>,
        granted: Option<f64>,
        released: Option<f64>,
    }
    let mut raw: BTreeMap<(u32, u64), Raw> = BTreeMap::new();
    for r in events {
        match r.ev {
            ProbeEvent::RequestIssued { obj, req, .. } => {
                let e = raw.entry((obj, req)).or_default();
                e.issued.get_or_insert((r.t, r.node));
            }
            ProbeEvent::QueueSent { obj, req, to, .. } => {
                raw.entry((obj, req))
                    .or_default()
                    .sends
                    .push((r.t, r.node, to));
            }
            ProbeEvent::QueueReceived { obj, req, from, .. } => {
                raw.entry((obj, req))
                    .or_default()
                    .recvs
                    .push((r.t, r.node, from));
            }
            ProbeEvent::QueuedBehind { obj, req, pred, .. } => {
                let e = raw.entry((obj, req)).or_default();
                e.queued.get_or_insert(QueuedAt {
                    t: r.t,
                    node: r.node,
                    pred,
                });
            }
            ProbeEvent::TokenSent { obj, req, to: _ } => {
                let e = raw.entry((obj, req)).or_default();
                e.token_sent.get_or_insert((r.t, r.node));
            }
            ProbeEvent::TokenReceived { obj, req } => {
                let e = raw.entry((obj, req)).or_default();
                e.token_received.get_or_insert(r.t);
            }
            ProbeEvent::Granted { obj, req } => {
                let e = raw.entry((obj, req)).or_default();
                e.granted.get_or_insert(r.t);
            }
            ProbeEvent::Released { obj, req } => {
                let e = raw.entry((obj, req)).or_default();
                e.released.get_or_insert(r.t);
            }
            ProbeEvent::Tick { .. }
            | ProbeEvent::EpochAdopted { .. }
            | ProbeEvent::OrphanRelease { .. }
            | ProbeEvent::StaleDrop { .. } => {}
        }
    }

    raw.into_iter()
        .map(|((obj, req), mut e)| {
            // Causal chain walk: wall clocks on different threads may disagree
            // by scheduling jitter, so hops are chained by topology (each hop
            // starts where the previous one landed), not by timestamp order.
            e.sends.sort_by(|a, b| a.0.total_cmp(&b.0));
            e.recvs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let origin = e
                .issued
                .map(|(_, n)| n)
                .or(e.sends.first().map(|&(_, from, _)| from))
                .or(e.queued.map(|q| q.node))
                .unwrap_or(0);
            let mut hops = Vec::with_capacity(e.sends.len());
            let mut used = vec![false; e.sends.len()];
            let mut used_recv = vec![false; e.recvs.len()];
            let mut at = origin;
            while let Some(i) = (0..e.sends.len()).find(|&i| !used[i] && e.sends[i].1 == at) {
                used[i] = true;
                let (sent, from, to) = e.sends[i];
                let received = (0..e.recvs.len())
                    .find(|&j| !used_recv[j] && e.recvs[j].1 == to && e.recvs[j].2 == from)
                    .map(|j| {
                        used_recv[j] = true;
                        e.recvs[j].0
                    });
                hops.push(Hop {
                    from,
                    to,
                    sent,
                    received,
                });
                at = to;
            }
            RequestTrace {
                obj,
                req,
                origin,
                issued_at: e.issued.map(|(t, _)| t),
                hops,
                queued: e.queued,
                token_sent: e.token_sent,
                token_received: e.token_received,
                granted_at: e.granted,
                released_at: e.released,
            }
        })
        .collect()
}

/// One request's observed stretch against the instance geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchRow {
    /// Object requested.
    pub obj: u32,
    /// Request id.
    pub req: u64,
    /// The request's origin node.
    pub origin: usize,
    /// Its predecessor's origin (where the `queue()` path terminated).
    pub pred_origin: usize,
    /// Observed find cost: traversed tree-edge weights (= `d_T` of the pair).
    pub path_cost: f64,
    /// Direct graph distance between the pair — the cost an optimal directory
    /// would pay for this adjacency.
    pub direct_cost: f64,
    /// `path_cost / direct_cost` (1.0 for co-located pairs).
    pub stretch: f64,
}

/// A run-level view: every reconstructed trace plus the per-request stretch
/// distribution.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Every reconstructed request.
    pub traces: Vec<RequestTrace>,
    /// Per-request stretch rows (requests with a complete chain only).
    pub stretches: Vec<StretchRow>,
    /// Requests whose causal chain is complete ([`RequestTrace::complete`]).
    pub complete: usize,
    /// Maximum observed per-request stretch (0.0 when no rows).
    pub max_stretch: f64,
    /// Mean observed per-request stretch (0.0 when no rows).
    pub mean_stretch: f64,
}

/// Score reconstructed traces against the instance geometry. `edge_weight`
/// maps a traversed tree edge to its weight; `direct_dist` is the graph
/// distance `d_G` between two nodes.
pub fn report(
    traces: Vec<RequestTrace>,
    edge_weight: &dyn Fn(usize, usize) -> f64,
    direct_dist: &dyn Fn(usize, usize) -> f64,
) -> TraceReport {
    let mut stretches = Vec::new();
    let mut complete = 0;
    for t in &traces {
        if !t.complete() {
            continue;
        }
        complete += 1;
        let q = t.queued.as_ref().expect("complete implies queued");
        let path_cost = t.path_cost(edge_weight);
        let direct_cost = direct_dist(t.origin, q.node);
        let stretch = if direct_cost > 0.0 {
            path_cost / direct_cost
        } else {
            1.0
        };
        stretches.push(StretchRow {
            obj: t.obj,
            req: t.req,
            origin: t.origin,
            pred_origin: q.node,
            path_cost,
            direct_cost,
            stretch,
        });
    }
    let max_stretch = stretches.iter().map(|s| s.stretch).fold(0.0, f64::max);
    let mean_stretch = if stretches.is_empty() {
        0.0
    } else {
        stretches.iter().map(|s| s.stretch).sum::<f64>() / stretches.len() as f64
    };
    TraceReport {
        traces,
        stretches,
        complete,
        max_stretch,
        mean_stretch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize, t: f64, ev: ProbeEvent) -> TraceEventRecord {
        TraceEventRecord { node, t, ev }
    }

    /// A two-hop acquisition: node 4 issues r5, path 4 → 2 → 1, queued behind
    /// r3 at node 1, token flies 1 → 4, granted.
    fn two_hop_events() -> Vec<TraceEventRecord> {
        vec![
            ev(
                4,
                0.0,
                ProbeEvent::RequestIssued {
                    obj: 0,
                    req: 5,
                    origin: 4,
                },
            ),
            ev(
                4,
                0.0,
                ProbeEvent::QueueSent {
                    obj: 0,
                    req: 5,
                    origin: 4,
                    to: 2,
                },
            ),
            ev(
                2,
                1.0,
                ProbeEvent::QueueReceived {
                    obj: 0,
                    req: 5,
                    origin: 4,
                    from: 4,
                },
            ),
            ev(
                2,
                1.0,
                ProbeEvent::QueueSent {
                    obj: 0,
                    req: 5,
                    origin: 4,
                    to: 1,
                },
            ),
            ev(
                1,
                2.0,
                ProbeEvent::QueueReceived {
                    obj: 0,
                    req: 5,
                    origin: 4,
                    from: 2,
                },
            ),
            ev(
                1,
                2.0,
                ProbeEvent::QueuedBehind {
                    obj: 0,
                    req: 5,
                    pred: 3,
                    origin: 4,
                },
            ),
            ev(
                1,
                5.0,
                ProbeEvent::TokenSent {
                    obj: 0,
                    req: 5,
                    to: 4,
                },
            ),
            ev(4, 6.5, ProbeEvent::TokenReceived { obj: 0, req: 5 }),
            ev(4, 6.5, ProbeEvent::Granted { obj: 0, req: 5 }),
            ev(4, 7.0, ProbeEvent::Released { obj: 0, req: 5 }),
        ]
    }

    #[test]
    fn reconstructs_the_full_chain() {
        let traces = reconstruct(&two_hop_events());
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.origin, 4);
        assert_eq!(
            t.hops.iter().map(|h| (h.from, h.to)).collect::<Vec<_>>(),
            vec![(4, 2), (2, 1)]
        );
        assert_eq!(t.queued.unwrap().pred, 3);
        assert_eq!(t.queued.unwrap().node, 1);
        assert!(t.complete());
        let p = t.phases().unwrap();
        assert_eq!(p.transit, 2.0);
        assert_eq!(p.queue_wait, 3.0);
        assert_eq!(p.grant_wait, 1.5);
        assert_eq!(p.total, 6.5);
    }

    #[test]
    fn chain_walk_survives_clock_skew() {
        // The second hop's receive is stamped *earlier* than the first hop's
        // (cross-thread clock jitter); topology ordering must still chain them.
        let mut events = two_hop_events();
        events[4].t = 0.5; // recv at node 1 "before" recv at node 2
        let traces = reconstruct(&events);
        assert_eq!(
            traces[0]
                .hops
                .iter()
                .map(|h| (h.from, h.to))
                .collect::<Vec<_>>(),
            vec![(4, 2), (2, 1)]
        );
        assert!(traces[0].complete());
    }

    #[test]
    fn incomplete_chain_is_flagged() {
        let mut events = two_hop_events();
        events.remove(4); // drop the second hop's receive
        let traces = reconstruct(&events);
        assert!(!traces[0].complete());
        // Phases still report (queuing + grant observed) even if a hop recv is
        // missing; completeness is a separate, stricter predicate.
        assert!(traces[0].phases().is_some());
    }

    #[test]
    fn local_handoff_has_zero_grant_wait() {
        let events = vec![
            ev(
                2,
                0.0,
                ProbeEvent::RequestIssued {
                    obj: 1,
                    req: 8,
                    origin: 2,
                },
            ),
            ev(
                2,
                0.0,
                ProbeEvent::QueuedBehind {
                    obj: 1,
                    req: 8,
                    pred: 6,
                    origin: 2,
                },
            ),
            ev(2, 3.0, ProbeEvent::Granted { obj: 1, req: 8 }),
        ];
        let traces = reconstruct(&events);
        let t = &traces[0];
        assert!(t.complete(), "no hops: origin is the queuing node");
        let p = t.phases().unwrap();
        assert_eq!(p.transit, 0.0);
        assert_eq!(p.queue_wait, 3.0);
        assert_eq!(p.grant_wait, 0.0);
    }

    #[test]
    fn report_scores_path_cost_and_stretch() {
        let traces = reconstruct(&two_hop_events());
        // Tree edges weigh 1.0; the direct graph distance 4→1 is 1.2.
        let rep = report(traces, &|_, _| 1.0, &|u, v| {
            if (u, v) == (4, 1) || (v, u) == (4, 1) {
                1.2
            } else {
                1.0
            }
        });
        assert_eq!(rep.complete, 1);
        assert_eq!(rep.stretches.len(), 1);
        let s = &rep.stretches[0];
        assert_eq!(s.path_cost, 2.0);
        assert_eq!(s.direct_cost, 1.2);
        assert!((s.stretch - 2.0 / 1.2).abs() < 1e-12);
        assert_eq!(rep.max_stretch, rep.mean_stretch);
    }

    #[test]
    fn colocated_pair_scores_stretch_one() {
        let events = vec![
            ev(
                0,
                0.0,
                ProbeEvent::RequestIssued {
                    obj: 0,
                    req: 1,
                    origin: 0,
                },
            ),
            ev(
                0,
                0.0,
                ProbeEvent::QueuedBehind {
                    obj: 0,
                    req: 1,
                    pred: 0,
                    origin: 0,
                },
            ),
            ev(0, 0.1, ProbeEvent::Granted { obj: 0, req: 1 }),
        ];
        let rep = report(reconstruct(&events), &|_, _| 1.0, &|_, _| 0.0);
        assert_eq!(rep.stretches[0].stretch, 1.0);
    }
}
