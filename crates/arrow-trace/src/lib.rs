//! # arrow-trace — the cross-tier observability plane
//!
//! Three pieces, layered so every execution tier (simulator, thread runtime,
//! socket runtime) shares one instrumentation schema:
//!
//! * [`probe`] — the zero-cost [`Probe`] trait the protocol cores are generic
//!   over, plus the [`ProbeEvent`] vocabulary of protocol transition points
//!   (request issued, queue frame per hop, token sent/received, grant, epoch
//!   adoption, orphaned-grant self-release). The default [`NoProbe`] is a
//!   monomorphized no-op: disabled builds compile the instrumentation out.
//! * [`registry`] — a lock-free per-node [`MetricsRegistry`]: enum-indexed
//!   atomic counters and log-bucketed atomic histograms with
//!   snapshot/diff/merge, replacing the ad-hoc counter structs that used to be
//!   scattered across the tiers with one shared schema.
//! * [`recorder`] + [`analysis`] + [`chrome`] — the causal trace recorder and
//!   its consumers: [`TraceRecorder`] collects timestamped probe events per
//!   node, [`analysis`] reconstructs each request's hop path and per-phase
//!   latency breakdown (transit vs queue-wait vs grant-wait) and computes
//!   per-request observed stretch against tree/graph distances, and
//!   [`chrome`] exports Chrome trace-event JSON loadable in Perfetto
//!   (one track per node, one span per hop).
//!
//! This crate is intentionally dependency-free and speaks raw ids
//! (`node: usize`, `obj: u32`, `req: u64`): it sits *below* `arrow-core`, which
//! plugs its typed ids into these events at the instrumentation sites.
//!
//! ## Example: trace a toy two-hop acquisition
//!
//! ```
//! use arrow_trace::{Probe, ProbeEvent, TraceRecorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(TraceRecorder::new());
//! // Node 2 issues request 7 for object 0 and sends the queue() towards node 1.
//! let mut p2 = rec.sim_probe(2);
//! p2.record(ProbeEvent::Tick { units: 0.0 });
//! p2.record(ProbeEvent::RequestIssued { obj: 0, req: 7, origin: 2 });
//! p2.record(ProbeEvent::QueueSent { obj: 0, req: 7, origin: 2, to: 1 });
//! // Node 1 was the sink: request 7 queues behind the root's virtual request.
//! let mut p1 = rec.sim_probe(1);
//! p1.record(ProbeEvent::Tick { units: 1.0 });
//! p1.record(ProbeEvent::QueueReceived { obj: 0, req: 7, origin: 2, from: 2 });
//! p1.record(ProbeEvent::QueuedBehind { obj: 0, req: 7, pred: 0, origin: 2 });
//! drop((p1, p2));
//!
//! let events = Arc::try_unwrap(rec).unwrap().finish();
//! let traces = arrow_trace::analysis::reconstruct(&events);
//! assert_eq!(traces.len(), 1);
//! let hops: Vec<(usize, usize)> = traces[0].hops.iter().map(|h| (h.from, h.to)).collect();
//! assert_eq!(hops, vec![(2, 1)]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod chrome;
pub mod probe;
pub mod recorder;
pub mod registry;

pub use analysis::{RequestTrace, TraceReport};
pub use probe::{NoProbe, Probe, ProbeEvent};
pub use recorder::{TraceProbe, TraceRecorder};
pub use registry::{HistMetric, Metric, MetricsRegistry, MetricsSnapshot};
