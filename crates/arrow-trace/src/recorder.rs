//! The causal trace recorder: timestamped probe events, per node.
//!
//! A [`TraceRecorder`] is shared (`Arc`) across every node of a run; each node
//! carries a [`TraceProbe`] that buffers `(time, event)` pairs locally —
//! recording costs a `Vec::push`, no lock — and flushes into the recorder when
//! dropped (node teardown). Two clocks:
//!
//! * **wall probes** ([`TraceRecorder::wall_probe`]) stamp each event with the
//!   monotonic seconds since the recorder was created — the live tiers, where
//!   node threads share one `Instant` epoch;
//! * **sim probes** ([`TraceRecorder::sim_probe`]) hold the virtual clock
//!   value last announced via [`ProbeEvent::Tick`] — the deterministic
//!   simulator, which has no wall clock worth recording.
//!
//! Once every probe has flushed (all node threads joined), [`TraceRecorder::finish`]
//! returns the time-sorted event log for [`crate::analysis`] and
//! [`crate::chrome`].

use crate::probe::{Probe, ProbeEvent};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded probe event: which node emitted it, when (seconds for wall
/// probes, simulation units for sim probes), and what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEventRecord {
    /// Emitting node.
    pub node: usize,
    /// Timestamp in the recorder's time base.
    pub t: f64,
    /// The transition observed.
    pub ev: ProbeEvent,
}

/// The shared sink trace probes flush into.
#[derive(Debug)]
pub struct TraceRecorder {
    start: Instant,
    events: Mutex<Vec<TraceEventRecord>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// An empty recorder; wall probes measure time from this call.
    pub fn new() -> Self {
        TraceRecorder {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A wall-clock probe for `node` (live tiers). All probes of one recorder
    /// share its creation instant as the time origin.
    pub fn wall_probe(self: &Arc<Self>, node: usize) -> TraceProbe {
        TraceProbe {
            node,
            clock: Clock::Wall(self.start),
            buf: Vec::new(),
            sink: Arc::clone(self),
        }
    }

    /// A virtual-clock probe for `node` (simulator tier): events are stamped
    /// with the latest [`ProbeEvent::Tick`] the node announced.
    pub fn sim_probe(self: &Arc<Self>, node: usize) -> TraceProbe {
        TraceProbe {
            node,
            clock: Clock::Sim { now: 0.0 },
            buf: Vec::new(),
            sink: Arc::clone(self),
        }
    }

    fn absorb(&self, node: usize, buf: &mut Vec<(f64, ProbeEvent)>) {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        events.extend(
            buf.drain(..)
                .map(|(t, ev)| TraceEventRecord { node, t, ev }),
        );
    }

    /// The time-sorted event log. Call once every probe has been dropped
    /// (all node threads joined) — events still buffered in live probes are
    /// not visible here.
    pub fn finish(self) -> Vec<TraceEventRecord> {
        let mut events = self
            .events
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        events
    }

    /// A sorted copy of everything flushed so far (for callers that cannot
    /// consume the recorder; prefer [`TraceRecorder::finish`]).
    pub fn snapshot_events(&self) -> Vec<TraceEventRecord> {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        events
    }
}

#[derive(Debug)]
enum Clock {
    Wall(Instant),
    Sim { now: f64 },
}

/// The recording [`Probe`]: buffers events locally, flushes on drop.
#[derive(Debug)]
pub struct TraceProbe {
    node: usize,
    clock: Clock,
    buf: Vec<(f64, ProbeEvent)>,
    sink: Arc<TraceRecorder>,
}

impl Probe for TraceProbe {
    fn record(&mut self, ev: ProbeEvent) {
        let t = match &mut self.clock {
            Clock::Wall(start) => {
                if let ProbeEvent::Tick { .. } = ev {
                    return; // wall probes have their own clock
                }
                start.elapsed().as_secs_f64()
            }
            Clock::Sim { now } => {
                if let ProbeEvent::Tick { units } = ev {
                    *now = units;
                    return;
                }
                *now
            }
        };
        self.buf.push((t, ev));
    }
}

impl Drop for TraceProbe {
    fn drop(&mut self) {
        self.sink.absorb(self.node, &mut self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_probe_stamps_with_latest_tick() {
        let rec = Arc::new(TraceRecorder::new());
        let mut p = rec.sim_probe(3);
        p.record(ProbeEvent::Tick { units: 2.5 });
        p.record(ProbeEvent::Granted { obj: 0, req: 9 });
        p.record(ProbeEvent::Tick { units: 4.0 });
        p.record(ProbeEvent::Released { obj: 0, req: 9 });
        drop(p);
        let events = Arc::try_unwrap(rec).unwrap().finish();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t, 2.5);
        assert_eq!(events[0].node, 3);
        assert_eq!(events[1].t, 4.0);
        assert!(matches!(events[1].ev, ProbeEvent::Released { .. }));
    }

    #[test]
    fn wall_probe_timestamps_are_monotone_and_ticks_ignored() {
        let rec = Arc::new(TraceRecorder::new());
        let mut p = rec.wall_probe(0);
        p.record(ProbeEvent::Tick { units: 99.0 }); // ignored
        p.record(ProbeEvent::RequestIssued {
            obj: 0,
            req: 1,
            origin: 0,
        });
        p.record(ProbeEvent::Granted { obj: 0, req: 1 });
        drop(p);
        let events = Arc::try_unwrap(rec).unwrap().finish();
        assert_eq!(events.len(), 2);
        assert!(events[0].t <= events[1].t);
        assert!(events[0].t >= 0.0);
    }

    #[test]
    fn probes_flush_from_many_threads() {
        let rec = Arc::new(TraceRecorder::new());
        let joins: Vec<_> = (0..4)
            .map(|n| {
                let mut p = rec.wall_probe(n);
                std::thread::spawn(move || {
                    for req in 0..10 {
                        p.record(ProbeEvent::Granted { obj: 0, req });
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let events = Arc::try_unwrap(rec).unwrap().finish();
        assert_eq!(events.len(), 40);
    }
}
