//! The zero-cost probe trait the protocol cores are generic over.
//!
//! Instrumentation contract: the shared `ArrowCore` (and the simulator tier's
//! `ArrowNode`) carry a `P: Probe` type parameter defaulting to [`NoProbe`] and
//! call [`Probe::record`] at every protocol transition point. Because the
//! parameter is monomorphized and `NoProbe::record` is an empty `#[inline]`
//! body, the disabled path compiles to nothing — probe-off builds are
//! bit-identical in behaviour and carry no branch, no load, no call.
//!
//! Events carry **no timestamps**: a recording probe stamps time itself
//! (wall-clock probes read a monotonic clock at `record` time; the
//! deterministic simulator instead emits [`ProbeEvent::Tick`] with its virtual
//! clock before dispatching each event, and the recorder holds the last tick as
//! the current time). This keeps the trait object-free and the instrumentation
//! sites identical across tiers that have incompatible notions of "now".

/// One protocol transition point, in raw ids (`node: usize`, `obj: u32`,
/// `req: u64`) so this crate needs no dependency on the typed id wrappers
/// living above it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeEvent {
    /// Simulator tiers only: the virtual clock reached `units` at the emitting
    /// node. Recording probes in sim mode use the latest tick as the timestamp
    /// of every subsequent event; wall-clock probes ignore it.
    Tick {
        /// Virtual time, in simulation units.
        units: f64,
    },
    /// A queuing request entered the system at its origin node.
    RequestIssued {
        /// Object requested.
        obj: u32,
        /// The new request's id.
        req: u64,
        /// Node issuing the request (the emitting node).
        origin: usize,
    },
    /// A `queue()` frame left the emitting node towards `to` (one tree hop).
    QueueSent {
        /// Object requested.
        obj: u32,
        /// Request being queued.
        req: u64,
        /// The request's origin node.
        origin: usize,
        /// Tree neighbour the frame was sent to.
        to: usize,
    },
    /// A `queue()` frame arrived at the emitting node from tree neighbour
    /// `from` (the receive half of one hop).
    QueueReceived {
        /// Object requested.
        obj: u32,
        /// Request being queued.
        req: u64,
        /// The request's origin node.
        origin: usize,
        /// Tree neighbour the frame came from.
        from: usize,
    },
    /// The `queue()` path terminated at the emitting node: `req` is now queued
    /// directly behind `pred` (the request whose origin this node is — or the
    /// virtual root request `0`).
    QueuedBehind {
        /// Object requested.
        obj: u32,
        /// Request that just finished queuing.
        req: u64,
        /// Its predecessor in the object's total order.
        pred: u64,
        /// `req`'s origin node (where its grant will be delivered).
        origin: usize,
    },
    /// The object's exclusion token left the emitting node towards `req`'s
    /// origin `to` (a direct send, not a tree hop).
    TokenSent {
        /// Object whose token moved.
        obj: u32,
        /// Request the token was granted to.
        req: u64,
        /// Destination node (the request's origin).
        to: usize,
    },
    /// The object's exclusion token arrived at the emitting node.
    TokenReceived {
        /// Object whose token arrived.
        obj: u32,
        /// Request the token grants.
        req: u64,
    },
    /// The grant was delivered to the local application at the emitting node.
    Granted {
        /// Object granted.
        obj: u32,
        /// Request granted.
        req: u64,
    },
    /// The local application released the token it held for `req`.
    Released {
        /// Object released.
        obj: u32,
        /// Request that held it.
        req: u64,
    },
    /// The emitting node adopted recovery epoch `epoch` (resetting links and
    /// re-issuing its pending requests).
    EpochAdopted {
        /// The adopted epoch.
        epoch: u64,
    },
    /// A grant had no live local waiter (timeout or crash) and the runtime
    /// released it on the vanished waiter's behalf so the queue keeps draining.
    OrphanRelease {
        /// Object whose grant was orphaned.
        obj: u32,
        /// The orphaned request.
        req: u64,
    },
    /// A protocol input carrying a stale recovery epoch was rejected.
    StaleDrop {
        /// Object the stale input was for.
        obj: u32,
    },
}

/// The instrumentation hook the protocol cores are generic over.
///
/// Implementations must be cheap: `record` runs inside the protocol hot path,
/// once per transition. The provided default is a no-op so probe types may
/// implement only what they need.
pub trait Probe: Send + 'static {
    /// Observe one protocol transition at the carrying node.
    #[inline(always)]
    fn record(&mut self, ev: ProbeEvent) {
        let _ = ev;
    }
}

/// The default probe: does nothing, compiles to nothing.
///
/// `ArrowCore<NoProbe>` (the default instantiation every existing constructor
/// resolves to) is the probe-disabled build; its `record` calls monomorphize to
/// empty inlined bodies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_a_unit_noop() {
        let mut p = NoProbe;
        p.record(ProbeEvent::Granted { obj: 0, req: 1 });
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
    }

    #[test]
    fn custom_probe_sees_events() {
        struct Count(usize);
        impl Probe for Count {
            fn record(&mut self, _ev: ProbeEvent) {
                self.0 += 1;
            }
        }
        let mut c = Count(0);
        c.record(ProbeEvent::Tick { units: 1.0 });
        c.record(ProbeEvent::StaleDrop { obj: 3 });
        assert_eq!(c.0, 2);
    }
}
