//! TSP machinery: exact optimal paths (Held–Karp), minimum spanning trees over
//! request sets, and the generalized nearest-neighbour approximation bound of
//! Theorem 3.18.
//!
//! The optimal offline queuing algorithm's cost is (up to constants and the stretch)
//! the cost of an optimal TSP *path* over the requests under the cost `c_O`
//! (Section 3.3), while arrow follows a nearest-neighbour path under `c_T`
//! (Section 3.4). The experiments therefore need: the exact optimum on small
//! instances, spanning-tree lower bounds on large ones, and the paper's bound
//! `C_NN ≤ (3/2)·log2(D_NN / d_NN) · C_Opt` to compare against.

use crate::cost::RequestSet;
use crate::nn_tsp::CostFn;

/// Exact minimum-cost Hamiltonian path starting at the root (index 0) and visiting
/// every other point once, under an arbitrary (possibly asymmetric) cost function.
/// Held–Karp dynamic programming: `O(2^n · n^2)` — only use for `n ≤ ~18` points.
///
/// Returns `(cost, order)` where `order` lists the indices `1..n` in visiting order.
///
/// # Panics
/// If the request set has more than 24 non-root points (the DP table would not fit).
pub fn held_karp_path(rs: &RequestSet, cost: CostFn) -> (f64, Vec<usize>) {
    let n = rs.len();
    let m = n - 1; // non-root points
    assert!(
        m <= 24,
        "Held-Karp is exponential; refusing to run on {m} > 24 points"
    );
    if m == 0 {
        return (0.0, Vec::new());
    }
    // dp[mask][j] = min cost of a path starting at the root, visiting exactly the
    // points of `mask` (bit i = point i+1), and ending at point j+1.
    let full = 1usize << m;
    let mut dp = vec![f64::INFINITY; full * m];
    let mut parent = vec![usize::MAX; full * m];
    for j in 0..m {
        dp[(1 << j) * m + j] = cost(rs, 0, j + 1);
    }
    for mask in 1..full {
        for j in 0..m {
            if mask & (1 << j) == 0 {
                continue;
            }
            let cur = dp[mask * m + j];
            if !cur.is_finite() {
                continue;
            }
            for k in 0..m {
                if mask & (1 << k) != 0 {
                    continue;
                }
                let next_mask = mask | (1 << k);
                let cand = cur + cost(rs, j + 1, k + 1);
                if cand < dp[next_mask * m + k] {
                    dp[next_mask * m + k] = cand;
                    parent[next_mask * m + k] = j;
                }
            }
        }
    }
    let last_mask = full - 1;
    let (mut best_j, mut best_cost) = (0usize, f64::INFINITY);
    for j in 0..m {
        if dp[last_mask * m + j] < best_cost {
            best_cost = dp[last_mask * m + j];
            best_j = j;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(m);
    let mut mask = last_mask;
    let mut j = best_j;
    while mask != 0 {
        order.push(j + 1);
        let p = parent[mask * m + j];
        mask &= !(1 << j);
        if p == usize::MAX {
            break;
        }
        j = p;
    }
    order.reverse();
    (best_cost, order)
}

/// Weight of a minimum spanning tree over all points of `rs` under a *symmetric* cost
/// function (Prim's algorithm, `O(n^2)`).
///
/// Any Hamiltonian path over the points costs at least this much, so it is a lower
/// bound for optimal TSP paths under any cost that dominates `cost`.
pub fn mst_weight(rs: &RequestSet, cost: CostFn) -> f64 {
    let n = rs.len();
    if n <= 1 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    in_tree[0] = true;
    #[allow(clippy::needless_range_loop)]
    for j in 1..n {
        best[j] = cost(rs, 0, j);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let (next, w) = best
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| !in_tree[j])
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("some point is still outside the tree");
        total += w;
        in_tree[next] = true;
        for j in 1..n {
            if !in_tree[j] {
                let c = cost(rs, next, j);
                if c < best[j] {
                    best[j] = c;
                }
            }
        }
    }
    total
}

/// The approximation factor of Theorem 3.18 for a nearest-neighbour path whose
/// longest and shortest non-zero edges (under the NN cost) are `longest` and
/// `shortest`: `(3/2) · log2(longest / shortest)`, at least 3/2.
pub fn theorem_3_18_factor(longest: f64, shortest: f64) -> f64 {
    if longest <= 0.0 || shortest <= 0.0 || longest <= shortest {
        return 1.5;
    }
    1.5 * (longest / shortest).log2().ceil().max(1.0)
}

/// Longest and shortest non-zero edge costs along a path `0 → order[0] → …` under
/// `cost`. Returns `(longest, shortest_non_zero)`; both are 0 if every edge is zero.
pub fn path_edge_extremes(rs: &RequestSet, order: &[usize], cost: CostFn) -> (f64, f64) {
    let mut longest = 0.0_f64;
    let mut shortest = f64::INFINITY;
    let mut prev = 0usize;
    for &i in order {
        let c = cost(rs, prev, i);
        longest = longest.max(c);
        if c > 0.0 {
            shortest = shortest.min(c);
        }
        prev = i;
    }
    if shortest.is_infinite() {
        (longest, 0.0)
    } else {
        (longest, shortest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_tsp::{nearest_neighbor_path, path_cost};
    use arrow_core::RequestSchedule;
    use desim::SimTime;
    use netgraph::{generators, RootedTree};

    fn set_on_path(positions: &[(usize, u64)], n: usize) -> RequestSet {
        let tree = RootedTree::from_tree_graph(&generators::path(n), 0);
        let schedule = RequestSchedule::from_pairs(
            &positions
                .iter()
                .map(|&(v, t)| (v, SimTime::from_units(t)))
                .collect::<Vec<_>>(),
        );
        RequestSet::new(&schedule, &tree)
    }

    #[test]
    fn held_karp_on_line_is_the_sorted_sweep() {
        // Simultaneous requests on a line: the optimal path visits them left to right.
        let rs = set_on_path(&[(7, 0), (2, 0), (4, 0), (9, 0)], 12);
        let (cost, order) = held_karp_path(&rs, RequestSet::cost_manhattan);
        assert_eq!(cost, 9.0);
        let nodes: Vec<usize> = order.iter().map(|&i| rs.node(i)).collect();
        assert_eq!(nodes, vec![2, 4, 7, 9]);
    }

    #[test]
    fn held_karp_is_never_worse_than_nearest_neighbor() {
        for seed in 0..6u64 {
            let positions: Vec<(usize, u64)> = (0..7)
                .map(|i| {
                    (
                        (1 + (i * 3 + seed as usize * 5) % 14),
                        (i as u64 * 2 + seed) % 9,
                    )
                })
                .collect();
            let rs = set_on_path(&positions, 16);
            let (opt_cost, _) = held_karp_path(&rs, RequestSet::cost_manhattan);
            let nn = nearest_neighbor_path(&rs, RequestSet::cost_manhattan);
            let nn_cost = path_cost(&rs, &nn, RequestSet::cost_manhattan);
            assert!(
                opt_cost <= nn_cost + 1e-9,
                "seed {seed}: {opt_cost} > {nn_cost}"
            );
        }
    }

    #[test]
    fn held_karp_handles_trivial_sets() {
        let rs = set_on_path(&[], 4);
        let (cost, order) = held_karp_path(&rs, RequestSet::cost_manhattan);
        assert_eq!(cost, 0.0);
        assert!(order.is_empty());

        let rs1 = set_on_path(&[(3, 5)], 6);
        let (cost1, order1) = held_karp_path(&rs1, RequestSet::cost_manhattan);
        assert_eq!(cost1, 8.0); // 3 (distance) + 5 (time)
        assert_eq!(order1, vec![1]);
    }

    #[test]
    fn mst_lower_bounds_every_path() {
        for seed in 0..6u64 {
            let positions: Vec<(usize, u64)> = (0..8)
                .map(|i| {
                    (
                        (1 + (i * 5 + seed as usize * 3) % 14),
                        (i as u64 + seed) % 7,
                    )
                })
                .collect();
            let rs = set_on_path(&positions, 16);
            let mst = mst_weight(&rs, RequestSet::cost_manhattan);
            let (opt, _) = held_karp_path(&rs, RequestSet::cost_manhattan);
            assert!(mst <= opt + 1e-9, "seed {seed}: MST {mst} > OPT {opt}");
        }
    }

    #[test]
    fn mst_of_collinear_simultaneous_points_is_the_span() {
        let rs = set_on_path(&[(2, 0), (5, 0), (9, 0)], 12);
        assert_eq!(mst_weight(&rs, RequestSet::cost_manhattan), 9.0);
    }

    #[test]
    fn nn_cost_respects_theorem_3_18_bound() {
        // The theorem bounds the NN tour under cost c_T against the optimal tour under
        // the dominating metric c_M. We check the path version with the extra factor 2
        // the paper uses when going from tours to paths.
        for seed in 0..6u64 {
            let positions: Vec<(usize, u64)> = (0..8)
                .map(|i| {
                    (
                        (1 + (i * 7 + seed as usize) % 14),
                        (i as u64 * 3 + seed) % 13,
                    )
                })
                .collect();
            let rs = set_on_path(&positions, 16);
            let nn_order = nearest_neighbor_path(&rs, RequestSet::cost_t);
            let nn_cost = path_cost(&rs, &nn_order, RequestSet::cost_t);
            let (opt_cost, _) = held_karp_path(&rs, RequestSet::cost_manhattan);
            let (longest, shortest) = path_edge_extremes(&rs, &nn_order, RequestSet::cost_t);
            let factor = theorem_3_18_factor(longest, shortest);
            assert!(
                nn_cost <= 2.0 * factor * opt_cost + 1e-9,
                "seed {seed}: NN {nn_cost} > 2 * {factor} * OPT {opt_cost}"
            );
        }
    }

    #[test]
    fn factor_is_at_least_three_halves() {
        assert_eq!(theorem_3_18_factor(0.0, 0.0), 1.5);
        assert_eq!(theorem_3_18_factor(4.0, 4.0), 1.5);
        assert_eq!(theorem_3_18_factor(8.0, 1.0), 4.5);
        assert!(theorem_3_18_factor(100.0, 1.0) >= 1.5 * 7.0);
    }

    #[test]
    fn path_edge_extremes_zero_edges() {
        // Two requests at the same node and time: the second edge has zero cost.
        let rs = set_on_path(&[(3, 0), (3, 0)], 6);
        let order = vec![1, 2];
        let (longest, shortest) = path_edge_extremes(&rs, &order, RequestSet::cost_manhattan);
        assert_eq!(longest, 3.0);
        assert_eq!(shortest, 3.0);
    }

    #[test]
    #[should_panic(expected = "refusing to run")]
    fn held_karp_rejects_huge_instances() {
        let positions: Vec<(usize, u64)> = (0..30).map(|i| (1 + i % 10, 0)).collect();
        let rs = set_on_path(&positions, 12);
        held_karp_path(&rs, RequestSet::cost_manhattan);
    }
}
