//! # queuing-analysis — the competitive-analysis machinery of the paper
//!
//! Everything Section 3 and Section 4 of *"Dynamic Analysis of the Arrow Distributed
//! Protocol"* need in executable form:
//!
//! * [`cost`] — the cost measures `c_A`, `c_T`, `c_M`, `c_O`, `c_Opt` over request
//!   sets (Definitions 3.5, 3.14 and equation (3));
//! * [`nn_tsp`] — nearest-neighbour TSP paths and the check behind the
//!   characterisation of arrow's order (Lemma 3.8 / 3.20);
//! * [`tsp_bounds`] — Held–Karp exact TSP paths, MST bounds, and the generalized
//!   nearest-neighbour approximation factor of Theorem 3.18;
//! * [`compress`] — the time-compression transformation of Lemma 3.11 / 3.12;
//! * [`optimal`] — certified lower bounds on the optimal offline queuing cost
//!   (Section 3.3, Lemma 3.17);
//! * [`ratio`] — measured competitive ratios against the bound of Theorem 3.19/3.21;
//! * [`lower_bound`] — the adversarial instances of Theorem 4.1 (Figure 9) and
//!   Theorem 4.2;
//! * [`theory`] — closed-form bound curves for plots.
//!
//! ## Example: verify the nearest-neighbour characterisation on a run
//!
//! ```
//! use arrow_core::prelude::*;
//! use desim::SimTime;
//! use queuing_analysis::{cost::RequestSet, nn_tsp};
//!
//! let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
//! let schedule = workload::one_shot_burst(&(0..8).collect::<Vec<_>>(), SimTime::ZERO);
//! let outcome = run(&instance, &Workload::OpenLoop(schedule.clone()),
//!                   &RunConfig::analysis(ProtocolKind::Arrow));
//!
//! // Arrow's order, expressed as indices into the request set (root prepended)...
//! let rs = RequestSet::new(&schedule, instance.tree());
//! let order: Vec<usize> = outcome.order.order().iter()
//!     .map(|&id| rs.index_of(id).unwrap())
//!     .collect();
//! // ...is a nearest-neighbour TSP path under the cost c_T (Lemma 3.8).
//! assert!(nn_tsp::check_nearest_neighbor(&rs, &order, RequestSet::cost_t, 1e-9).is_none());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod compress;
pub mod cost;
pub mod lower_bound;
pub mod nn_tsp;
pub mod optimal;
pub mod ratio;
pub mod theory;
pub mod tsp_bounds;

pub use compress::{compress_schedule, is_compressed};
pub use cost::{CostKind, RequestSet};
pub use lower_bound::{theorem_4_1_instance, theorem_4_2_instance};
pub use nn_tsp::{check_nearest_neighbor, nearest_neighbor_path};
pub use optimal::{best_lower_bound, OptBound, OptBoundKind, EXACT_CUTOFF};
pub use ratio::{measure_ratio, measure_ratio_with_cost, RatioReport};
pub use tsp_bounds::{held_karp_path, mst_weight};
