//! Measured competitive ratios.
//!
//! Given an instance and a request schedule, run the arrow protocol, lower bound the
//! optimal offline cost and report the ratio together with the theoretical bound it
//! must stay under (Theorem 3.19 / 3.21). Because the denominator is a certified
//! *lower bound* on the optimum, the reported ratio is an upper bound on the true
//! competitive ratio — if it stays below the theorem's bound, the theorem is
//! corroborated.
//!
//! **Degenerate instances.** Some schedules certify a zero lower bound (e.g. every
//! request issued at the root at time 0: the optimum really is 0). No finite ratio
//! can be reported against a zero denominator, so such reports carry
//! [`RatioReport::opt_bound_degenerate`] `= true` and `ratio = NaN`; they are
//! vacuously [`RatioReport::within_bound`] so sweeps skip rather than trip on them.
//! Anything that *certifies* the theorem must filter on the flag.

use crate::compress::compress_schedule;
use crate::cost::RequestSet;
use crate::optimal::{best_lower_bound, OptBound};
use crate::theory;
use arrow_core::{run_schedule, Instance, ProtocolKind, RequestSchedule, RunConfig};
use serde::{Deserialize, Serialize};

/// The result of one competitive-ratio measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioReport {
    /// Number of requests in the instance.
    pub requests: usize,
    /// Arrow's measured total latency (Definition 3.3).
    pub arrow_cost: f64,
    /// The certified lower bound on the optimal offline cost.
    pub opt_lower_bound: f64,
    /// Which estimator produced the bound.
    pub opt_bound: OptBound,
    /// True when every estimator returned a zero lower bound (e.g. all requests
    /// issued at the root at time 0): no finite ratio can be certified against a
    /// zero denominator, so [`RatioReport::ratio`] is `NaN` and the instance is
    /// excluded from bound checking rather than reported with an astronomical
    /// clamped ratio.
    pub opt_bound_degenerate: bool,
    /// `arrow_cost / opt_lower_bound` — an upper bound on the true competitive
    /// ratio. `NaN` when [`RatioReport::opt_bound_degenerate`] is set.
    pub ratio: f64,
    /// Stretch of the spanning tree.
    pub stretch: f64,
    /// Diameter of the spanning tree.
    pub tree_diameter: f64,
    /// The constant-explicit upper bound of Theorem 3.19.
    pub theorem_bound: f64,
    /// The asymptotic reference curve `s · log₂ D`.
    pub bound_shape: f64,
}

impl RatioReport {
    /// True if the measured ratio respects the theorem's bound. Degenerate
    /// instances ([`RatioReport::opt_bound_degenerate`]) are vacuously within the
    /// bound — there is no finite ratio to compare — so sweeps don't trip on them;
    /// callers that need to *exclude* them must check the flag.
    pub fn within_bound(&self) -> bool {
        self.opt_bound_degenerate || self.ratio <= self.theorem_bound + 1e-9
    }

    /// True if this report *positively certifies* the theorem: a non-degenerate
    /// lower bound AND a ratio under the bound. Use this (not
    /// [`RatioReport::within_bound`], which is vacuously true on degenerate
    /// instances) wherever "the theorem was corroborated on this instance" is the
    /// claim being made.
    pub fn certifies_bound(&self) -> bool {
        !self.opt_bound_degenerate && self.ratio <= self.theorem_bound + 1e-9
    }
}

/// Measure the competitive ratio of the arrow protocol on one instance.
///
/// `config` should normally be [`RunConfig::analysis`] for [`ProtocolKind::Arrow`]
/// (synchronous or asynchronous); the protocol field is overridden to Arrow.
pub fn measure_ratio(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> RatioReport {
    let mut config = config.clone();
    config.protocol = ProtocolKind::Arrow;

    let outcome = run_schedule(instance, schedule, &config);
    measure_ratio_with_cost(instance, schedule, outcome.total_latency)
}

/// Like [`measure_ratio`], but with arrow's total latency already known — for
/// callers (e.g. the conformance harness) that just ran the protocol and hold the
/// outcome, so the deterministic simulation is not executed a second time. Only
/// the lower-bound estimation and the theorem bookkeeping run here.
pub fn measure_ratio_with_cost(
    instance: &Instance,
    schedule: &RequestSchedule,
    arrow_cost: f64,
) -> RatioReport {
    // Lower bound the optimum on the *compressed* schedule (Lemma 3.11 justifies the
    // transformation: it cannot increase the optimal cost), with graph distances
    // shared from the instance's cached all-pairs matrix.
    let compressed = compress_schedule(schedule, instance.tree());
    let rs =
        RequestSet::with_graph_distances(&compressed, instance.tree(), Some(instance.distances()));
    let opt_bound = best_lower_bound(&rs);
    // A zero lower bound certifies nothing: dividing by a clamped epsilon used to
    // report astronomical ratios here. Flag the degenerate case instead.
    let opt_bound_degenerate = opt_bound.value <= 0.0;

    let report = instance.stretch_report();
    RatioReport {
        requests: schedule.len(),
        arrow_cost,
        opt_lower_bound: opt_bound.value,
        opt_bound,
        opt_bound_degenerate,
        ratio: if opt_bound_degenerate {
            f64::NAN
        } else {
            arrow_cost / opt_bound.value
        },
        stretch: report.max_stretch,
        tree_diameter: report.tree_diameter,
        theorem_bound: theory::upper_bound_constant(report.max_stretch, report.tree_diameter),
        bound_shape: theory::upper_bound_shape(report.max_stretch, report.tree_diameter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::workload;
    use desim::SimTime;
    use netgraph::spanning::SpanningTreeKind;

    #[test]
    fn sequential_requests_have_ratio_at_most_the_sequential_bound() {
        // In the sequential case the ratio is at most the stretch (times slack from
        // the lower-bound estimator).
        let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
        let schedule = workload::sequential_round_robin(&(0..10).collect::<Vec<_>>(), 10, 50.0);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(
            report.within_bound(),
            "ratio {} > bound {}",
            report.ratio,
            report.theorem_bound
        );
        assert!(report.ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn concurrent_burst_respects_theorem_bound() {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let nodes: Vec<usize> = (0..12).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(
            report.within_bound(),
            "ratio {} exceeds theorem bound {}",
            report.ratio,
            report.theorem_bound
        );
        assert_eq!(report.requests, 12);
        assert!(report.opt_lower_bound > 0.0);
    }

    #[test]
    fn random_workloads_respect_the_bound_sync_and_async() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        for seed in 0..3u64 {
            let schedule = workload::poisson(8, 2.0, 12.0, seed);
            if schedule.is_empty() {
                continue;
            }
            let sync = measure_ratio(
                &instance,
                &schedule,
                &RunConfig::analysis(ProtocolKind::Arrow),
            );
            assert!(sync.within_bound(), "sync seed {seed}: {}", sync.ratio);
            let async_report = measure_ratio(
                &instance,
                &schedule,
                &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(seed),
            );
            assert!(
                async_report.within_bound(),
                "async seed {seed}: {}",
                async_report.ratio
            );
        }
    }

    #[test]
    fn degenerate_zero_bound_is_flagged_not_astronomical() {
        // Every request at the root at time 0: the optimal offline cost is exactly
        // 0 (the root already holds the queue tail), so no estimator can certify a
        // positive lower bound. Pre-fix this clamped the denominator to
        // f64::MIN_POSITIVE and reported a ~1e300 ratio; now the instance is
        // flagged and the ratio is NaN.
        let instance = Instance::complete_uniform(6, SpanningTreeKind::BalancedBinary);
        let schedule = workload::sequential_round_robin(&[0], 4, 100.0);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert_eq!(report.opt_lower_bound, 0.0);
        assert!(report.opt_bound_degenerate);
        assert!(report.ratio.is_nan(), "ratio {} not NaN", report.ratio);
        // Vacuously within the bound so sweeps don't trip on degenerate rows.
        assert!(report.within_bound());
        // Non-degenerate instances keep a finite, meaningful ratio.
        let real = measure_ratio(
            &instance,
            &workload::sequential_round_robin(&[3, 4], 4, 100.0),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(!real.opt_bound_degenerate);
        assert!(real.ratio.is_finite());
        assert!(real.ratio < 1e6, "clamped-epsilon ratio leaked through");
    }

    #[test]
    fn lower_bound_instance_shows_a_ratio_well_above_one() {
        // On the Theorem 4.1 instance the ratio should be noticeably larger than 1
        // (it grows like log D / log log D).
        let (instance, schedule) = crate::lower_bound::theorem_4_1_instance(32, 4);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(report.ratio > 1.5, "ratio only {}", report.ratio);
        assert!(report.within_bound());
    }
}
