//! Measured competitive ratios.
//!
//! Given an instance and a request schedule, run the arrow protocol, lower bound the
//! optimal offline cost and report the ratio together with the theoretical bound it
//! must stay under (Theorem 3.19 / 3.21). Because the denominator is a certified
//! *lower bound* on the optimum, the reported ratio is an upper bound on the true
//! competitive ratio — if it stays below the theorem's bound, the theorem is
//! corroborated.

use crate::compress::compress_schedule;
use crate::cost::RequestSet;
use crate::optimal::{best_lower_bound, OptBound};
use crate::theory;
use arrow_core::{run_schedule, Instance, ProtocolKind, RequestSchedule, RunConfig};
use serde::{Deserialize, Serialize};

/// The result of one competitive-ratio measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioReport {
    /// Number of requests in the instance.
    pub requests: usize,
    /// Arrow's measured total latency (Definition 3.3).
    pub arrow_cost: f64,
    /// The certified lower bound on the optimal offline cost.
    pub opt_lower_bound: f64,
    /// Which estimator produced the bound.
    pub opt_bound: OptBound,
    /// `arrow_cost / opt_lower_bound` — an upper bound on the true competitive ratio.
    pub ratio: f64,
    /// Stretch of the spanning tree.
    pub stretch: f64,
    /// Diameter of the spanning tree.
    pub tree_diameter: f64,
    /// The constant-explicit upper bound of Theorem 3.19.
    pub theorem_bound: f64,
    /// The asymptotic reference curve `s · log₂ D`.
    pub bound_shape: f64,
}

impl RatioReport {
    /// True if the measured ratio respects the theorem's bound.
    pub fn within_bound(&self) -> bool {
        self.ratio <= self.theorem_bound + 1e-9
    }
}

/// Measure the competitive ratio of the arrow protocol on one instance.
///
/// `config` should normally be [`RunConfig::analysis`] for [`ProtocolKind::Arrow`]
/// (synchronous or asynchronous); the protocol field is overridden to Arrow.
pub fn measure_ratio(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> RatioReport {
    let mut config = config.clone();
    config.protocol = ProtocolKind::Arrow;

    let outcome = run_schedule(instance, schedule, &config);
    let arrow_cost = outcome.total_latency;

    // Lower bound the optimum on the *compressed* schedule (Lemma 3.11 justifies the
    // transformation: it cannot increase the optimal cost), with graph distances
    // shared from the instance's cached all-pairs matrix.
    let compressed = compress_schedule(schedule, instance.tree());
    let rs =
        RequestSet::with_graph_distances(&compressed, instance.tree(), Some(instance.distances()));
    let opt_bound = best_lower_bound(&rs);
    let opt = opt_bound.value.max(f64::MIN_POSITIVE);

    let report = instance.stretch_report();
    RatioReport {
        requests: schedule.len(),
        arrow_cost,
        opt_lower_bound: opt_bound.value,
        opt_bound,
        ratio: arrow_cost / opt,
        stretch: report.max_stretch,
        tree_diameter: report.tree_diameter,
        theorem_bound: theory::upper_bound_constant(report.max_stretch, report.tree_diameter),
        bound_shape: theory::upper_bound_shape(report.max_stretch, report.tree_diameter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::workload;
    use desim::SimTime;
    use netgraph::spanning::SpanningTreeKind;

    #[test]
    fn sequential_requests_have_ratio_at_most_the_sequential_bound() {
        // In the sequential case the ratio is at most the stretch (times slack from
        // the lower-bound estimator).
        let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
        let schedule = workload::sequential_round_robin(&(0..10).collect::<Vec<_>>(), 10, 50.0);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(
            report.within_bound(),
            "ratio {} > bound {}",
            report.ratio,
            report.theorem_bound
        );
        assert!(report.ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn concurrent_burst_respects_theorem_bound() {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let nodes: Vec<usize> = (0..12).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(
            report.within_bound(),
            "ratio {} exceeds theorem bound {}",
            report.ratio,
            report.theorem_bound
        );
        assert_eq!(report.requests, 12);
        assert!(report.opt_lower_bound > 0.0);
    }

    #[test]
    fn random_workloads_respect_the_bound_sync_and_async() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        for seed in 0..3u64 {
            let schedule = workload::poisson(8, 2.0, 12.0, seed);
            if schedule.is_empty() {
                continue;
            }
            let sync = measure_ratio(
                &instance,
                &schedule,
                &RunConfig::analysis(ProtocolKind::Arrow),
            );
            assert!(sync.within_bound(), "sync seed {seed}: {}", sync.ratio);
            let async_report = measure_ratio(
                &instance,
                &schedule,
                &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(seed),
            );
            assert!(
                async_report.within_bound(),
                "async seed {seed}: {}",
                async_report.ratio
            );
        }
    }

    #[test]
    fn lower_bound_instance_shows_a_ratio_well_above_one() {
        // On the Theorem 4.1 instance the ratio should be noticeably larger than 1
        // (it grows like log D / log log D).
        let (instance, schedule) = crate::lower_bound::theorem_4_1_instance(32, 4);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(report.ratio > 1.5, "ratio only {}", report.ratio);
        assert!(report.within_bound());
    }
}
