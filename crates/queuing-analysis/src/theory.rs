//! Closed-form expressions from the paper's theorems, used by the experiment harness
//! to plot measured competitive ratios against the proven bounds.

/// The explicit constant behind Theorem 3.19's `O(s · log D)`: following the proof,
/// `cost_arrow ≤ (3⌈log₂(3D)⌉ + 1) · C_M` and `C_M ≤ 12 · C_O ≤ 12 · s · cost_Opt`,
/// so the competitive ratio is at most `12 · s · (3⌈log₂(3D)⌉ + 1)`.
/// (For plots we usually also show the un-constant-ed `s · log₂ D`.)
pub fn upper_bound_constant(stretch: f64, tree_diameter: f64) -> f64 {
    let d = tree_diameter.max(2.0);
    12.0 * stretch * (3.0 * (3.0 * d).log2().ceil() + 1.0)
}

/// The asymptotic shape `s · log₂ D` of the upper bound (no constants), convenient as
/// a reference curve.
pub fn upper_bound_shape(stretch: f64, tree_diameter: f64) -> f64 {
    stretch * tree_diameter.max(2.0).log2()
}

/// The lower-bound shape of Theorem 4.1: `s + log D / log log D`.
pub fn lower_bound_shape(stretch: f64, tree_diameter: f64) -> f64 {
    let d = tree_diameter.max(4.0);
    stretch + d.log2() / d.log2().log2()
}

/// The lower-bound shape of Theorem 4.2: `s · log(D/s) / log log(D/s)`.
pub fn lower_bound_shape_4_2(stretch: f64, tree_diameter: f64) -> f64 {
    let x = (tree_diameter / stretch).max(4.0);
    stretch * x.log2() / x.log2().log2()
}

/// The sequential-case competitive ratio of Demmer–Herlihy quoted in Section 1.1:
/// exactly the stretch `s` of the spanning tree.
pub fn sequential_ratio(stretch: f64) -> f64 {
    stretch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_grows_with_stretch_and_diameter() {
        assert!(upper_bound_constant(2.0, 64.0) > upper_bound_constant(1.0, 64.0));
        assert!(upper_bound_constant(1.0, 1024.0) > upper_bound_constant(1.0, 64.0));
        assert!(upper_bound_shape(1.0, 64.0) >= 6.0 - 1e-9);
    }

    #[test]
    fn lower_bound_is_below_upper_bound() {
        for &d in &[16.0, 64.0, 256.0, 1024.0, 65536.0] {
            for &s in &[1.0, 2.0, 4.0, 8.0] {
                assert!(
                    lower_bound_shape(s, d) <= upper_bound_constant(s, d),
                    "s={s}, D={d}"
                );
                assert!(lower_bound_shape_4_2(s, d) <= upper_bound_constant(s, d));
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_produce_nan() {
        for f in [
            upper_bound_constant(1.0, 0.0),
            upper_bound_shape(1.0, 1.0),
            lower_bound_shape(1.0, 2.0),
            lower_bound_shape_4_2(1.0, 1.0),
        ] {
            assert!(f.is_finite());
        }
    }

    #[test]
    fn sequential_ratio_is_the_stretch() {
        assert_eq!(sequential_ratio(3.5), 3.5);
    }
}
