//! Nearest-neighbour TSP paths over request sets.
//!
//! Lemma 3.8 (and Lemma 3.20 for the asynchronous model) is the heart of the paper's
//! analysis: *the queuing order produced by the arrow protocol is a nearest-neighbour
//! TSP path on `R ∪ {r0}` under the cost `c_T`, starting from the root request.* This
//! module constructs nearest-neighbour paths for arbitrary cost functions and checks
//! whether a given order satisfies the nearest-neighbour property — the latter is what
//! the tests use to verify the protocol implementation against the characterisation
//! (ties in `c_T` may be broken either way, so exact path equality is too strict).

use crate::cost::RequestSet;

/// A pairwise cost function over indices of a [`RequestSet`].
pub type CostFn = fn(&RequestSet, usize, usize) -> f64;

/// Build a nearest-neighbour path over all points of `rs`, starting at the root
/// request (index 0) and using `cost` to pick the closest unvisited point at every
/// step. Ties are broken towards the smaller index, which makes the construction
/// deterministic.
///
/// Returns the visiting order of indices `1..rs.len()` (the root is implicit).
pub fn nearest_neighbor_path(rs: &RequestSet, cost: CostFn) -> Vec<usize> {
    let n = rs.len();
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut order = Vec::with_capacity(n.saturating_sub(1));
    let mut current = 0usize;
    for _ in 1..n {
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)]
        for j in 1..n {
            if visited[j] {
                continue;
            }
            let c = cost(rs, current, j);
            match best {
                None => best = Some((j, c)),
                Some((_, bc)) if c < bc => best = Some((j, c)),
                _ => {}
            }
        }
        let (next, _) = best.expect("there is always an unvisited point left");
        visited[next] = true;
        order.push(next);
        current = next;
    }
    order
}

/// Total cost of the path `0 → order[0] → order[1] → …` under `cost`.
pub fn path_cost(rs: &RequestSet, order: &[usize], cost: CostFn) -> f64 {
    let mut total = 0.0;
    let mut prev = 0usize;
    for &i in order {
        total += cost(rs, prev, i);
        prev = i;
    }
    total
}

/// A violation of the nearest-neighbour property at one step of a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnViolation {
    /// Position in the order at which the violation occurs.
    pub position: usize,
    /// The point the path moved to.
    pub chosen: usize,
    /// The cost of that move.
    pub chosen_cost: f64,
    /// An unvisited point that was strictly closer.
    pub closer: usize,
    /// Its (strictly smaller) cost.
    pub closer_cost: f64,
}

/// Check whether `order` (a permutation of `1..rs.len()`) is a nearest-neighbour path
/// from the root under `cost`, allowing ties: at each step the chosen point's cost
/// must be within `tolerance` of the minimum over all unvisited points.
///
/// Returns the first violation found, or `None` if the property holds.
pub fn check_nearest_neighbor(
    rs: &RequestSet,
    order: &[usize],
    cost: CostFn,
    tolerance: f64,
) -> Option<NnViolation> {
    let n = rs.len();
    assert_eq!(order.len(), n - 1, "order must cover every non-root point");
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut current = 0usize;
    for (pos, &next) in order.iter().enumerate() {
        let chosen_cost = cost(rs, current, next);
        #[allow(clippy::needless_range_loop)]
        for j in 1..n {
            if !visited[j] && j != next {
                let c = cost(rs, current, j);
                if c + tolerance < chosen_cost {
                    return Some(NnViolation {
                        position: pos,
                        chosen: next,
                        chosen_cost,
                        closer: j,
                        closer_cost: c,
                    });
                }
            }
        }
        visited[next] = true;
        current = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::RequestSchedule;
    use desim::SimTime;
    use netgraph::{generators, RootedTree};

    fn line_set(positions: &[(usize, u64)]) -> RequestSet {
        let tree = RootedTree::from_tree_graph(&generators::path(16), 0);
        let schedule = RequestSchedule::from_pairs(
            &positions
                .iter()
                .map(|&(v, t)| (v, SimTime::from_units(t)))
                .collect::<Vec<_>>(),
        );
        RequestSet::new(&schedule, &tree)
    }

    #[test]
    fn nn_path_on_simultaneous_requests_orders_by_distance() {
        // Requests at nodes 2, 5, 9 at time 0: NN from the root (node 0) picks 2, 5, 9.
        let rs = line_set(&[(5, 0), (2, 0), (9, 0)]);
        let order = nearest_neighbor_path(&rs, RequestSet::cost_t);
        let nodes: Vec<usize> = order.iter().map(|&i| rs.node(i)).collect();
        assert_eq!(nodes, vec![2, 5, 9]);
        assert!(check_nearest_neighbor(&rs, &order, RequestSet::cost_t, 1e-9).is_none());
    }

    #[test]
    fn nn_path_accounts_for_time_offsets() {
        // Node 1 requests very late: even though it is spatially closest to the root,
        // c_T makes the earlier, farther request at node 9 come first.
        let rs = line_set(&[(1, 100), (9, 0)]);
        let order = nearest_neighbor_path(&rs, RequestSet::cost_t);
        let nodes: Vec<usize> = order.iter().map(|&i| rs.node(i)).collect();
        assert_eq!(nodes, vec![9, 1]);
    }

    #[test]
    fn path_cost_matches_manual_sum() {
        let rs = line_set(&[(3, 0), (7, 0)]);
        let order = vec![1, 2];
        let c = path_cost(&rs, &order, RequestSet::cost_arrow);
        // root(0) -> node3 = 3, node3 -> node7 = 4.
        assert_eq!(c, 7.0);
    }

    #[test]
    fn violation_detected_for_non_nn_order() {
        let rs = line_set(&[(2, 0), (9, 0)]);
        // Visiting the far request first is not nearest-neighbour.
        let bad_order = vec![2, 1];
        let violation = check_nearest_neighbor(&rs, &bad_order, RequestSet::cost_t, 1e-9)
            .expect("expected a violation");
        assert_eq!(violation.position, 0);
        assert!(violation.closer_cost < violation.chosen_cost);
    }

    #[test]
    fn nn_construction_always_passes_its_own_check() {
        for seed in 0..5u64 {
            let positions: Vec<(usize, u64)> = (0..8)
                .map(|i| {
                    (
                        ((seed as usize * 7 + i * 3) % 15) + 1,
                        (i as u64 * seed) % 11,
                    )
                })
                .collect();
            let rs = line_set(&positions);
            for cost in [
                RequestSet::cost_t as CostFn,
                RequestSet::cost_manhattan as CostFn,
                RequestSet::cost_arrow as CostFn,
            ] {
                let order = nearest_neighbor_path(&rs, cost);
                assert!(check_nearest_neighbor(&rs, &order, cost, 1e-9).is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover every non-root point")]
    fn short_order_panics() {
        let rs = line_set(&[(2, 0), (9, 0)]);
        check_nearest_neighbor(&rs, &[1], RequestSet::cost_t, 1e-9);
    }
}
