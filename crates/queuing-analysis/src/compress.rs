//! The time-compression transformation of Lemma 3.11 / Lemma 3.12.
//!
//! If after some request no other request occurs for a long time, all later requests
//! can be shifted earlier by
//! `δ = min_{r_a ∈ R_{≤t_i}, r_b ∈ R_{≥t_{i+1}}} (t_b - t_a - d_T(v_a, v_b))`
//! (when `δ > 0`) without changing the cost of arrow and without increasing the cost
//! of the optimal offline algorithm. Repeating the transformation until no gap has a
//! positive `δ` yields a *compressed* request set for which, between any two
//! time-consecutive requests, some pair `(r_a, r_b)` spanning the gap satisfies
//! `d_T(v_a, v_b) ≥ t_b - t_a` (Lemma 3.12) — the precondition of the Manhattan-cost
//! lower bound (Lemmas 3.16/3.17).

use arrow_core::{Request, RequestSchedule};
use desim::SimTime;
use netgraph::RootedTree;

/// Apply the Lemma 3.11 transformation exhaustively and return the compressed
/// schedule.
///
/// Complexity is `O(|R|^2)` distance queries in the worst case (each gap is examined
/// against all crossing pairs); intended for the analysis experiments, which use
/// request sets of at most a few thousand requests.
pub fn compress_schedule(schedule: &RequestSchedule, tree: &RootedTree) -> RequestSchedule {
    let mut requests: Vec<Request> = schedule.requests().to_vec();
    // Include the virtual root request as an anchor at time 0: the paper's request
    // indexing starts from r0 = (root, 0), and the first gap is measured against it.
    let root_anchor = Request {
        id: arrow_core::RequestId::ROOT,
        node: tree.root(),
        time: SimTime::ZERO,
        obj: arrow_core::ObjectId::DEFAULT,
    };

    // Pairwise tree distances between request origins, memoised once: the fixpoint
    // loop below evaluates every crossing pair per gap per iteration, and only the
    // *times* change across iterations — the origins (and hence distances) never do.
    // Request identity is tracked by id so the memo survives re-sorting.
    let mut points: Vec<Request> = Vec::with_capacity(requests.len() + 1);
    points.push(root_anchor);
    points.extend(requests.iter().copied());
    let m = points.len();
    let mut index_of_id = std::collections::HashMap::with_capacity(m);
    for (i, r) in points.iter().enumerate() {
        index_of_id.insert(r.id, i);
    }
    let mut pair_dist = vec![0.0f64; m * m];
    for i in 0..m {
        for j in (i + 1)..m {
            let d = tree.distance(points[i].node, points[j].node);
            pair_dist[i * m + j] = d;
            pair_dist[j * m + i] = d;
        }
    }

    loop {
        requests.sort_by_key(|r| (r.time, r.id));
        let mut shifted = false;
        // Walk gaps between time-consecutive requests (with the root anchor in front).
        let mut all: Vec<Request> = Vec::with_capacity(requests.len() + 1);
        all.push(root_anchor);
        all.extend(requests.iter().copied());
        let idx: Vec<usize> = all.iter().map(|r| index_of_id[&r.id]).collect();
        for gap in 0..all.len() - 1 {
            let t_low = all[gap].time;
            let t_high = all[gap + 1].time;
            if t_high <= t_low {
                continue;
            }
            // δ = min over pairs (a ≤ gap, b > gap) of (t_b - t_a - d_T(v_a, v_b)).
            let mut delta = f64::INFINITY;
            for (ai, a) in all.iter().enumerate().take(gap + 1) {
                for (bi, b) in all.iter().enumerate().skip(gap + 1) {
                    let slack = (b.time - a.time).as_units_f64() - pair_dist[idx[ai] * m + idx[bi]];
                    if slack < delta {
                        delta = slack;
                    }
                }
            }
            if delta > 1e-12 && delta.is_finite() {
                // Shift every request at or after t_high back by δ.
                let shift = desim::SimDuration::from_units_f64(delta);
                for r in &mut requests {
                    if r.time >= t_high {
                        r.time = SimTime::from_subticks(
                            r.time.subticks().saturating_sub(shift.subticks()),
                        );
                    }
                }
                shifted = true;
                break; // re-sort and restart gap scanning
            }
        }
        if !shifted {
            break;
        }
    }
    requests.sort_by_key(|r| (r.time, r.id));
    RequestSchedule::from_requests(requests)
}

/// True if the schedule already satisfies the Lemma 3.12 property with respect to the
/// tree: for every pair of time-consecutive requests (with the root anchor at time 0),
/// some crossing pair `(r_a, r_b)` has `d_T(v_a, v_b) ≥ t_b - t_a`.
pub fn is_compressed(schedule: &RequestSchedule, tree: &RootedTree) -> bool {
    let mut all: Vec<Request> = Vec::with_capacity(schedule.len() + 1);
    all.push(Request {
        id: arrow_core::RequestId::ROOT,
        node: tree.root(),
        time: SimTime::ZERO,
        obj: arrow_core::ObjectId::DEFAULT,
    });
    all.extend(schedule.requests().iter().copied());
    all.sort_by_key(|r| (r.time, r.id));
    for gap in 0..all.len() - 1 {
        if all[gap + 1].time <= all[gap].time {
            continue;
        }
        let ok = all.iter().take(gap + 1).any(|a| {
            all.iter()
                .skip(gap + 1)
                .any(|b| tree.distance(a.node, b.node) >= (b.time - a.time).as_units_f64() - 1e-9)
        });
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::prelude::*;
    use netgraph::generators;

    fn path_tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::path(n), 0)
    }

    #[test]
    fn dead_time_is_squeezed_out() {
        let tree = path_tree(8);
        // A request at node 7 at t = 0, then nothing for 1000 units, then node 1.
        let schedule =
            RequestSchedule::from_pairs(&[(7, SimTime::ZERO), (1, SimTime::from_units(1000))]);
        assert!(!is_compressed(&schedule, &tree));
        let compressed = compress_schedule(&schedule, &tree);
        assert!(is_compressed(&compressed, &tree));
        // The 1000-unit gap collapses to the largest distance-justified gap:
        // the best crossing pair is (node 7 at t=0, node 1) with d_T = 6, or the root
        // anchor (node 0, t=0) with d_T = 1; δ is limited by the *minimum* slack, so
        // the remaining gap satisfies t <= min over pairs ... <= 6.
        let t2 = compressed.requests()[1].time.as_units_f64();
        assert!(t2 <= 6.0 + 1e-9, "gap still {t2}");
        assert!(t2 > 0.0);
    }

    #[test]
    fn already_compressed_schedules_are_unchanged() {
        let tree = path_tree(8);
        let schedule = workload::one_shot_burst(&[1, 3, 7], SimTime::ZERO);
        assert!(is_compressed(&schedule, &tree));
        let compressed = compress_schedule(&schedule, &tree);
        assert_eq!(compressed.len(), schedule.len());
        for (a, b) in schedule.requests().iter().zip(compressed.requests()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.node, b.node);
        }
    }

    #[test]
    fn compression_preserves_arrow_cost() {
        // Lemma 3.11's key claim: the transformation does not change arrow's cost.
        let tree_graph = generators::path(10);
        let instance = Instance::tree_only(tree_graph, 0);
        let schedule = RequestSchedule::from_pairs(&[
            (9, SimTime::ZERO),
            (2, SimTime::from_units(500)),
            (6, SimTime::from_units(501)),
            (1, SimTime::from_units(2000)),
        ]);
        let compressed = compress_schedule(&schedule, instance.tree());
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let original = run(&instance, &Workload::OpenLoop(schedule), &cfg);
        let squeezed = run(&instance, &Workload::OpenLoop(compressed), &cfg);
        // Lemma 3.11: the transformation does not change arrow's total cost. (The
        // queuing *order* may differ when compression creates exact ties, but the
        // cost is preserved.)
        assert_eq!(original.total_latency, squeezed.total_latency);
    }

    #[test]
    fn compression_does_not_increase_the_exact_optimal_cost() {
        use crate::cost::RequestSet;
        use crate::optimal::exact_optimal_cost;
        let tree = path_tree(10);
        let schedule = RequestSchedule::from_pairs(&[
            (9, SimTime::ZERO),
            (2, SimTime::from_units(300)),
            (5, SimTime::from_units(900)),
        ]);
        let compressed = compress_schedule(&schedule, &tree);
        let before = exact_optimal_cost(&RequestSet::new(&schedule, &tree)).value;
        let after = exact_optimal_cost(&RequestSet::new(&compressed, &tree)).value;
        assert!(
            after <= before + 1e-9,
            "compression increased Opt: {before} -> {after}"
        );
    }

    #[test]
    fn empty_schedule_compresses_to_empty() {
        let tree = path_tree(4);
        let schedule = RequestSchedule::from_pairs(&[]);
        let compressed = compress_schedule(&schedule, &tree);
        assert!(compressed.is_empty());
        assert!(is_compressed(&schedule, &tree));
    }
}
