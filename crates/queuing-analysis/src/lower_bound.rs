//! The adversarial lower-bound instances of Section 4 (Theorem 4.1 / Figure 9 and
//! Theorem 4.2).
//!
//! Theorem 4.1: on a path `v_0, …, v_D` (with `G = T`), a recursively constructed set
//! of requests forces the arrow protocol to sweep the whole path once per "time layer"
//! (cost `k·D`), while the optimal offline order only pays `O(D)` (its Manhattan-MST
//! is a comb: one horizontal chain plus short vertical chains). With
//! `k = log D / log log D` the competitive ratio on this instance is
//! `Ω(log D / log log D)`.
//!
//! The recursion: the initial request is `(v_D, k, log₂ D, +1)`; a request
//! `(v_i, t, s, d)` with `t > 0` spawns `s` requests `(v_{i − d·2^j}, t − 1, j, −d)`
//! for `j = 0, …, s−1`. In addition, nodes `v_0` and `v_D` issue requests at every
//! time `0, …, k−1`.
//!
//! Theorem 4.2 generalises to arbitrary stretch `s`: take a path of length `D` as the
//! tree, add shortcut edges between `v_{(i−1)s}` and `v_{is}`, and place the length-
//! `D/s` construction on the shortcut endpoints.

use arrow_core::{Instance, RequestSchedule};
use desim::SimTime;
use netgraph::{generators, NodeId};
use std::collections::BTreeSet;

/// The recommended number of time layers, `k = max(2, ⌊log₂ D / log₂ log₂ D⌋)`,
/// rounded to an even number as in the paper's construction.
pub fn recommended_layers(diameter: usize) -> usize {
    let d = diameter.max(4) as f64;
    let k = (d.log2() / d.log2().log2()).floor() as usize;
    let k = k.max(2);
    if k.is_multiple_of(2) {
        k
    } else {
        k + 1
    }
}

/// The recursive request pattern of Theorem 4.1 on a path of length `diameter`
/// (nodes `0..=diameter`), with `k` time layers. Returns the `(node, time)` pairs
/// (deduplicated — the recursion and the boundary requests overlap).
///
/// # Panics
/// If `diameter` is not a power of two or `k == 0`.
pub fn theorem_4_1_requests(diameter: usize, k: usize) -> Vec<(NodeId, u64)> {
    assert!(
        diameter.is_power_of_two(),
        "the construction needs a power-of-two diameter, got {diameter}"
    );
    assert!(k > 0, "need at least one time layer");
    let log_d = diameter.trailing_zeros() as usize;
    let mut set: BTreeSet<(NodeId, u64)> = BTreeSet::new();

    // Recursive generation. `dir` is +1 or -1.
    fn generate(
        set: &mut BTreeSet<(NodeId, u64)>,
        diameter: usize,
        node: isize,
        t: u64,
        size: usize,
        dir: isize,
    ) {
        debug_assert!(
            node >= 0 && node <= diameter as isize,
            "node {node} off the path"
        );
        set.insert((node as NodeId, t));
        if t == 0 {
            return;
        }
        for j in 0..size {
            let child = node - dir * (1isize << j);
            generate(set, diameter, child, t - 1, j, -dir);
        }
    }
    generate(&mut set, diameter, diameter as isize, k as u64, log_d, 1);

    // Boundary requests at v_0 and v_D for all times 0..k-1.
    for t in 0..k as u64 {
        set.insert((0, t));
        set.insert((diameter, t));
    }
    set.into_iter().collect()
}

/// A complete Theorem 4.1 instance: the path graph (`G = T`), the rooted tree
/// (rooted at `v_0`), and the request schedule.
pub fn theorem_4_1_instance(diameter: usize, k: usize) -> (Instance, RequestSchedule) {
    let graph = generators::path(diameter + 1);
    let instance = Instance::tree_only(graph, 0);
    let pairs: Vec<(NodeId, SimTime)> = theorem_4_1_requests(diameter, k)
        .into_iter()
        .map(|(v, t)| (v, SimTime::from_units(t)))
        .collect();
    (instance, RequestSchedule::from_pairs(&pairs))
}

/// The Theorem 4.2 instance for a given stretch `s`: the tree is a path of length
/// `diameter`, the graph additionally has shortcut edges `{v_{(i−1)s}, v_{is}}`, and
/// the scaled-down construction (diameter `D/s`) is placed on the shortcut endpoints.
///
/// # Panics
/// If `stretch` does not divide `diameter`, `diameter/stretch` is not a power of two,
/// or `stretch < 2` (use Theorem 4.1 directly for stretch 1).
pub fn theorem_4_2_instance(
    diameter: usize,
    stretch: usize,
    k: usize,
) -> (Instance, RequestSchedule) {
    assert!(stretch >= 2, "use theorem_4_1_instance for stretch 1");
    assert!(
        diameter.is_multiple_of(stretch),
        "stretch {stretch} must divide the diameter {diameter}"
    );
    let scaled = diameter / stretch;
    assert!(
        scaled.is_power_of_two(),
        "diameter / stretch = {scaled} must be a power of two"
    );
    // Tree: the path. Graph: path + shortcuts.
    let mut graph = generators::path(diameter + 1);
    for i in 1..=scaled {
        graph.add_weighted_edge((i - 1) * stretch, i * stretch, 1.0);
    }
    let tree = netgraph::RootedTree::from_tree_graph(&generators::path(diameter + 1), 0);
    let instance = Instance::new(graph, tree);
    let pairs: Vec<(NodeId, SimTime)> = theorem_4_1_requests(scaled, k)
        .into_iter()
        .map(|(v, t)| (v * stretch, SimTime::from_units(t)))
        .collect();
    (instance, RequestSchedule::from_pairs(&pairs))
}

/// The analytical cost of the arrow protocol on the Theorem 4.1 instance: `k · D`
/// (the protocol sweeps the whole path once per time layer).
pub fn predicted_arrow_cost(diameter: usize, k: usize) -> f64 {
    (k * diameter) as f64
}

/// The paper's upper bound on the Manhattan-MST of the Theorem 4.1 request set:
/// `D + log^{k+1} D / (log D − 1)^2`, which is `O(D)` for `k = log D / log log D`.
pub fn manhattan_mst_upper_bound(diameter: usize, k: usize) -> f64 {
    let d = diameter as f64;
    let log_d = d.log2();
    d + log_d.powi(k as i32 + 1) / (log_d - 1.0).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_layers_grows_slowly() {
        assert!(recommended_layers(16) >= 2);
        assert!(recommended_layers(64) >= 2);
        assert!(recommended_layers(1024) >= recommended_layers(64));
        assert_eq!(recommended_layers(64) % 2, 0);
        // log 1024 / log log 1024 = 10 / log2(10) ≈ 3.01 -> 3 -> rounded to 4.
        assert_eq!(recommended_layers(1024), 4);
    }

    #[test]
    fn requests_lie_on_the_path_and_cover_the_boundary() {
        let d = 64;
        let k = 6;
        let reqs = theorem_4_1_requests(d, k);
        assert!(!reqs.is_empty());
        for &(v, t) in &reqs {
            assert!(v <= d, "node {v} off the path");
            assert!(t <= k as u64);
        }
        // Boundary requests at all times 0..k-1 at both ends.
        for t in 0..k as u64 {
            assert!(reqs.contains(&(0, t)));
            assert!(reqs.contains(&(d, t)));
        }
        // The seed request at time k at node D.
        assert!(reqs.contains(&(d, k as u64)));
        // No duplicates (BTreeSet) and a reasonable count: at least k per layer ends
        // plus the recursion, at most (k+1) * (D+1).
        assert!(reqs.len() >= 2 * k);
        assert!(reqs.len() <= (k + 1) * (d + 1));
    }

    #[test]
    fn figure_9_size_matches_the_paper_example() {
        // Figure 9 uses D = 64 and k = 6; the recursion then produces requests at
        // every time layer. Check layer counts are non-increasing in expansion size:
        // one request at time k, log D at time k-1, fewer than log^2 D at k-2 ...
        let d = 64;
        let k = 6;
        let reqs = theorem_4_1_requests(d, k);
        let count_at = |t: u64| reqs.iter().filter(|&&(_, rt)| rt == t).count();
        assert_eq!(count_at(k as u64), 1);
        // At time k-1: the log D = 6 recursion children plus possibly the boundary
        // nodes (v0 and vD): between 6 and 8.
        let at_k1 = count_at(k as u64 - 1);
        assert!((6..=8).contains(&at_k1), "layer k-1 has {at_k1} requests");
        // Layers are at most log^j D-ish; just verify the whole instance is modest.
        assert!(
            reqs.len() < 400,
            "instance unexpectedly large: {}",
            reqs.len()
        );
    }

    #[test]
    fn instance_construction_is_consistent() {
        let (instance, schedule) = theorem_4_1_instance(16, 4);
        assert_eq!(instance.node_count(), 17);
        assert_eq!(instance.tree().root(), 0);
        assert!(schedule.len() > 8);
        let report = instance.stretch_report();
        assert_eq!(report.max_stretch, 1.0);
        assert_eq!(report.tree_diameter, 16.0);
    }

    #[test]
    fn theorem_4_2_instance_has_the_requested_stretch() {
        let (instance, schedule) = theorem_4_2_instance(64, 4, 4);
        let report = instance.stretch_report();
        assert_eq!(report.max_stretch, 4.0);
        assert_eq!(report.tree_diameter, 64.0);
        // All requests sit on shortcut endpoints (multiples of the stretch).
        for r in schedule.requests() {
            assert_eq!(r.node % 4, 0);
        }
    }

    #[test]
    fn predicted_costs() {
        assert_eq!(predicted_arrow_cost(64, 6), 384.0);
        let bound = manhattan_mst_upper_bound(64, 6);
        assert!(bound > 64.0);
        assert!(bound.is_finite());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_diameter_panics() {
        theorem_4_1_requests(60, 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_stretch_panics() {
        theorem_4_2_instance(64, 5, 4);
    }
}
