//! The cost measures of Section 3.
//!
//! For two requests `r_i = (v_i, t_i)` and `r_j = (v_j, t_j)` the paper defines:
//!
//! * `c_A(r_i, r_j) = d_T(v_i, v_j)` — the latency arrow pays when it orders `r_j`
//!   immediately after `r_i` (equation (1));
//! * `c_T(r_i, r_j)` — the asymmetric "nearest-neighbour" cost (Definition 3.5):
//!   `t_j - t_i + d_T(v_i, v_j)` when that is non-negative, else
//!   `t_i - t_j + d_T(v_i, v_j)` (which makes `c_T ≥ 0`, Fact 3.6);
//! * `c_M(r_i, r_j) = d_T(v_i, v_j) + |t_i - t_j|` — the Manhattan metric
//!   (Definition 3.14);
//! * `c_O(r_i, r_j) = max{d_T(v_i, v_j), t_i - t_j}` and
//!   `c_Opt(r_i, r_j) = max{d_G(v_i, v_j), t_i - t_j}` — the lower bounds on the
//!   latency an optimal offline algorithm pays for ordering `r_j` right after `r_i`
//!   (equation (3)); note these are costs *of the edge into `r_j`*, so the time term
//!   is `t_i - t_j` (positive only when the predecessor is issued later).
//!
//! The functions here operate on a [`RequestSet`] view which pairs the schedule with
//! the tree (and optionally graph) distances and includes the virtual root request
//! `r_0 = (root, 0)` at index 0, following the paper's indexing.

use arrow_core::{Request, RequestId, RequestSchedule};
use desim::SimTime;
use netgraph::{DistanceMatrix, NodeId, RootedTree};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A request set `R ∪ {r0}` together with the distance structures needed to evaluate
/// the paper's cost functions. Index 0 is always the virtual root request.
#[derive(Debug, Clone)]
pub struct RequestSet {
    /// Requests; index 0 is the virtual root request `(root, 0)`.
    points: Vec<Request>,
    /// The spanning tree (for `d_T`).
    tree: RootedTree,
    /// Graph distances (for `d_G`), if a graph distinct from the tree is relevant.
    /// Shared, because the same all-pairs matrix typically backs a whole sweep.
    graph_dist: Option<Arc<DistanceMatrix>>,
}

impl RequestSet {
    /// Build a request set from a schedule and the spanning tree the protocol runs on.
    pub fn new(schedule: &RequestSchedule, tree: &RootedTree) -> Self {
        Self::with_graph_distances(schedule, tree, None)
    }

    /// Build a request set that also knows the graph metric `d_G` (needed for
    /// `c_Opt`; when absent, `c_Opt` falls back to `c_O`, i.e. `d_G = d_T`).
    pub fn with_graph_distances(
        schedule: &RequestSchedule,
        tree: &RootedTree,
        graph_dist: Option<Arc<DistanceMatrix>>,
    ) -> Self {
        let mut points = Vec::with_capacity(schedule.len() + 1);
        points.push(Request {
            id: RequestId::ROOT,
            node: tree.root(),
            time: SimTime::ZERO,
            obj: arrow_core::ObjectId::DEFAULT,
        });
        points.extend_from_slice(schedule.requests());
        RequestSet {
            points,
            tree: tree.clone(),
            graph_dist,
        }
    }

    /// Number of points including the virtual root request.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if only the root request is present.
    pub fn is_empty(&self) -> bool {
        self.points.len() <= 1
    }

    /// The request at index `i` (index 0 is the root request).
    pub fn request(&self, i: usize) -> &Request {
        &self.points[i]
    }

    /// All points (root request first).
    pub fn requests(&self) -> &[Request] {
        &self.points
    }

    /// Index of a request id within this set.
    pub fn index_of(&self, id: RequestId) -> Option<usize> {
        self.points.iter().position(|r| r.id == id)
    }

    /// The spanning tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// Issue time of point `i` in time units.
    pub fn time(&self, i: usize) -> f64 {
        self.points[i].time.as_units_f64()
    }

    /// Node of point `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.points[i].node
    }

    /// Tree distance between the origins of points `i` and `j`.
    pub fn d_tree(&self, i: usize, j: usize) -> f64 {
        self.tree.distance(self.points[i].node, self.points[j].node)
    }

    /// Graph distance between the origins of points `i` and `j` (falls back to the
    /// tree distance when no graph metric was supplied).
    pub fn d_graph(&self, i: usize, j: usize) -> f64 {
        match &self.graph_dist {
            Some(dm) => dm.dist(self.points[i].node, self.points[j].node),
            None => self.d_tree(i, j),
        }
    }

    /// `c_A(r_i, r_j) = d_T(v_i, v_j)` — arrow's latency for ordering `r_j` right
    /// after `r_i` (equation (1)).
    pub fn cost_arrow(&self, i: usize, j: usize) -> f64 {
        self.d_tree(i, j)
    }

    /// `c_T(r_i, r_j)` — the nearest-neighbour cost of Definition 3.5.
    pub fn cost_t(&self, i: usize, j: usize) -> f64 {
        let dt = self.d_tree(i, j);
        let d = self.time(j) - self.time(i) + dt;
        if d >= 0.0 {
            d
        } else {
            self.time(i) - self.time(j) + dt
        }
    }

    /// `c_M(r_i, r_j) = d_T + |Δt|` — the Manhattan metric of Definition 3.14.
    pub fn cost_manhattan(&self, i: usize, j: usize) -> f64 {
        self.d_tree(i, j) + (self.time(i) - self.time(j)).abs()
    }

    /// `c_O(r_i, r_j) = max{d_T(v_i, v_j), t_i - t_j}` (equation (3)): a lower bound on
    /// the optimal latency of `r_j` when ordered right after `r_i`, measured on the tree.
    pub fn cost_o(&self, i: usize, j: usize) -> f64 {
        self.d_tree(i, j).max(self.time(i) - self.time(j)).max(0.0)
    }

    /// `c_Opt(r_i, r_j) = max{d_G(v_i, v_j), t_i - t_j}` (equation (3)): the same lower
    /// bound measured on the communication graph.
    pub fn cost_opt(&self, i: usize, j: usize) -> f64 {
        self.d_graph(i, j).max(self.time(i) - self.time(j)).max(0.0)
    }

    /// Total cost of visiting the points in the order `perm` (a permutation of
    /// `1..len()`, the root is the implicit start) under the given pairwise cost.
    pub fn path_cost(&self, perm: &[usize], cost: impl Fn(&Self, usize, usize) -> f64) -> f64 {
        let mut total = 0.0;
        let mut prev = 0;
        for &i in perm {
            total += cost(self, prev, i);
            prev = i;
        }
        total
    }
}

/// Which cost function to use in generic helpers (harness configuration / reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostKind {
    /// `c_A`: tree distance.
    Arrow,
    /// `c_T`: the asymmetric nearest-neighbour cost.
    NearestNeighbor,
    /// `c_M`: the Manhattan metric.
    Manhattan,
    /// `c_O`: `max{d_T, Δt}`.
    OptimalTree,
    /// `c_Opt`: `max{d_G, Δt}`.
    OptimalGraph,
}

impl RequestSet {
    /// Evaluate the chosen cost function on the pair `(i, j)`.
    pub fn cost(&self, kind: CostKind, i: usize, j: usize) -> f64 {
        match kind {
            CostKind::Arrow => self.cost_arrow(i, j),
            CostKind::NearestNeighbor => self.cost_t(i, j),
            CostKind::Manhattan => self.cost_manhattan(i, j),
            CostKind::OptimalTree => self.cost_o(i, j),
            CostKind::OptimalGraph => self.cost_opt(i, j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::workload;
    use netgraph::generators;

    /// Path 0-1-2-3-4 rooted at 0; requests at nodes 4 (t=0) and 1 (t=2).
    fn small_set() -> RequestSet {
        let tree_graph = generators::path(5);
        let tree = RootedTree::from_tree_graph(&tree_graph, 0);
        let schedule =
            RequestSchedule::from_pairs(&[(4, SimTime::ZERO), (1, SimTime::from_units(2))]);
        RequestSet::new(&schedule, &tree)
    }

    #[test]
    fn indexing_and_basic_accessors() {
        let rs = small_set();
        assert_eq!(rs.len(), 3);
        assert!(!rs.is_empty());
        assert_eq!(rs.request(0).id, RequestId::ROOT);
        assert_eq!(rs.node(0), 0);
        assert_eq!(rs.node(1), 4);
        assert_eq!(rs.time(2), 2.0);
        assert_eq!(rs.index_of(RequestId::ROOT), Some(0));
        assert_eq!(rs.index_of(RequestId(2)), Some(2));
        assert_eq!(rs.index_of(RequestId(99)), None);
    }

    #[test]
    fn arrow_cost_is_tree_distance() {
        let rs = small_set();
        assert_eq!(rs.cost_arrow(0, 1), 4.0);
        assert_eq!(rs.cost_arrow(1, 2), 3.0);
        assert_eq!(rs.cost_arrow(1, 1), 0.0);
    }

    #[test]
    fn cost_t_matches_definition_3_5() {
        let rs = small_set();
        // r0 = (0, 0), r1 = (4, 0), r2 = (1, 2).
        // c_T(r0, r1) = 0 - 0 + 4 = 4.
        assert_eq!(rs.cost_t(0, 1), 4.0);
        // c_T(r1, r2) = 2 - 0 + 3 = 5; c_T(r2, r1) = d = 0-2+3 = 1 >= 0 so 1.
        assert_eq!(rs.cost_t(1, 2), 5.0);
        assert_eq!(rs.cost_t(2, 1), 1.0);
        // Asymmetry is expected.
        assert_ne!(rs.cost_t(1, 2), rs.cost_t(2, 1));
    }

    #[test]
    fn cost_t_negative_branch() {
        // Request j issued *before* i by more than the distance: d < 0 branch.
        let tree = RootedTree::from_tree_graph(&generators::path(3), 0);
        let schedule =
            RequestSchedule::from_pairs(&[(1, SimTime::ZERO), (2, SimTime::from_units(10))]);
        let rs = RequestSet::new(&schedule, &tree);
        // i = index of the later request (t=10, node 2), j = earlier (t=0, node 1).
        // d = 0 - 10 + 1 = -9 < 0, so c_T = 10 - 0 + 1 = 11.
        assert_eq!(rs.cost_t(2, 1), 11.0);
        // Fact 3.6: c_T >= 0 for all pairs.
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                assert!(rs.cost_t(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn manhattan_and_optimal_costs() {
        let rs = small_set();
        // c_M(r1, r2) = 3 + |0 - 2| = 5.
        assert_eq!(rs.cost_manhattan(1, 2), 5.0);
        assert_eq!(rs.cost_manhattan(2, 1), 5.0);
        // c_O(r1, r2) = max{3, 0 - 2} = 3 ; c_O(r2, r1) = max{3, 2 - 0} = 3.
        assert_eq!(rs.cost_o(1, 2), 3.0);
        assert_eq!(rs.cost_o(2, 1), 3.0);
        // c_T dominates neither but is always <= c_M (used in Theorem 3.19's proof).
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                assert!(rs.cost_t(i, j) <= rs.cost_manhattan(i, j) + 1e-12);
            }
        }
    }

    #[test]
    fn cost_opt_uses_graph_distances_when_available() {
        // Cycle graph: tree is a path, so tree distance 4 but graph distance 1 for the
        // endpoints.
        let graph = generators::cycle(5);
        let tree = netgraph::spanning::shortest_path_tree(&graph, 0);
        let schedule = RequestSchedule::from_pairs(&[(4, SimTime::ZERO)]);
        let rs = RequestSet::with_graph_distances(
            &schedule,
            &tree,
            Some(DistanceMatrix::shared(&graph)),
        );
        assert_eq!(rs.cost_o(0, 1), rs.d_tree(0, 1));
        assert_eq!(rs.cost_opt(0, 1), 1.0);
        assert!(rs.cost_opt(0, 1) <= rs.cost_o(0, 1));
    }

    #[test]
    fn path_cost_sums_edges_in_order() {
        let rs = small_set();
        let cost = rs.path_cost(&[1, 2], RequestSet::cost_arrow);
        assert_eq!(cost, 4.0 + 3.0);
        let cost_rev = rs.path_cost(&[2, 1], RequestSet::cost_arrow);
        assert_eq!(cost_rev, 1.0 + 3.0);
    }

    #[test]
    fn cost_kind_dispatch_matches_direct_calls() {
        let rs = small_set();
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                assert_eq!(rs.cost(CostKind::Arrow, i, j), rs.cost_arrow(i, j));
                assert_eq!(rs.cost(CostKind::NearestNeighbor, i, j), rs.cost_t(i, j));
                assert_eq!(rs.cost(CostKind::Manhattan, i, j), rs.cost_manhattan(i, j));
                assert_eq!(rs.cost(CostKind::OptimalTree, i, j), rs.cost_o(i, j));
                assert_eq!(rs.cost(CostKind::OptimalGraph, i, j), rs.cost_opt(i, j));
            }
        }
    }

    #[test]
    fn one_shot_burst_costs_are_symmetric_in_time() {
        // With all requests at t=0, c_T = c_M = d_T.
        let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(7), 0);
        let schedule = workload::one_shot_burst(&[1, 3, 6], SimTime::ZERO);
        let rs = RequestSet::new(&schedule, &tree);
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                assert_eq!(rs.cost_t(i, j), rs.d_tree(i, j));
                assert_eq!(rs.cost_manhattan(i, j), rs.d_tree(i, j));
            }
        }
    }
}
