//! Lower bounds on the cost of the optimal offline queuing algorithm.
//!
//! The optimal algorithm `Opt` of Section 3.3 knows all requests in advance, may pick
//! any queuing order, and communicates over the graph `G`. Its total latency is lower
//! bounded by `min_π Σ c_Opt(r_π(i-1), r_π(i)) ≥ (1/s) · min_π Σ c_O(...)`
//! (equation (4)). The paper never runs `Opt` — it only ever uses these bounds — and
//! neither do we: the measured competitive ratios divide arrow's real cost by a
//! certified *lower bound* on `Opt`, so the reported ratios are upper bounds on the
//! true ratio and can be compared directly against the `O(s · log D)` theorem.
//!
//! Estimators, from tight-and-expensive to loose-and-cheap:
//!
//! 1. [`exact_optimal_cost`] — Held–Karp over `c_Opt` (exact `min_π`, affordable up
//!    to [`EXACT_CUTOFF`] points including the virtual root, i.e. 15 real requests;
//!    [`best_lower_bound`] switches estimator there);
//! 2. [`manhattan_mst_bound`] — `MST_{c_M} / 12`, via Lemma 3.17 (`C_M ≤ 12 C_O`) and
//!    the fact that any path costs at least the MST weight;
//! 3. [`distance_only_bound`] — `MST_{d_G} `, ignoring time altogether (every request
//!    except possibly the first must be reached over the graph).

use crate::cost::RequestSet;
use crate::tsp_bounds::{held_karp_path, mst_weight};
use serde::{Deserialize, Serialize};

/// Which estimator produced an optimal-cost bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptBoundKind {
    /// Exact Held–Karp minimisation of `Σ c_Opt` over all orders.
    Exact,
    /// `MST` under the Manhattan metric divided by 12 (Lemma 3.17).
    ManhattanMst,
    /// `MST` under the graph distance only.
    DistanceMst,
}

/// A certified lower bound on the optimal offline cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptBound {
    /// The bound value (total latency, in time units).
    pub value: f64,
    /// Which estimator produced it.
    pub kind: OptBoundKind,
}

/// Exact optimal cost `min_π Σ c_Opt(π)` by Held–Karp. Only for small request sets.
pub fn exact_optimal_cost(rs: &RequestSet) -> OptBound {
    let (value, _) = held_karp_path(rs, RequestSet::cost_opt);
    OptBound {
        value,
        kind: OptBoundKind::Exact,
    }
}

/// The Manhattan-MST lower bound: any order's `c_M`-cost is at least the `c_M`-MST
/// weight, and `C_M ≤ 12 C_O` for every order (Lemma 3.17), with `C_O ≤ s · C_Opt`
/// handled by the caller via [`crate::ratio`]. So `Opt_T ≥ MST_{c_M} / 12` where
/// `Opt_T` is the optimum measured with tree distances.
pub fn manhattan_mst_bound(rs: &RequestSet) -> OptBound {
    let value = mst_weight(rs, RequestSet::cost_manhattan) / 12.0;
    OptBound {
        value,
        kind: OptBoundKind::ManhattanMst,
    }
}

/// A purely spatial lower bound: the optimal algorithm must at least connect all
/// request origins over the graph, so its total latency is at least the graph-distance
/// MST weight of the request set.
pub fn distance_only_bound(rs: &RequestSet) -> OptBound {
    let value = mst_weight(rs, RequestSet::cost_opt_distance_only);
    OptBound {
        value,
        kind: OptBoundKind::DistanceMst,
    }
}

impl RequestSet {
    /// Helper cost for [`distance_only_bound`]: just the graph distance.
    pub fn cost_opt_distance_only(&self, i: usize, j: usize) -> f64 {
        self.d_graph(i, j)
    }
}

/// Largest request-set size — in [`RequestSet::len`] terms, i.e. *including* the
/// virtual root request at index 0 — for which [`best_lower_bound`] runs the exact
/// Held–Karp estimator: up to 15 real requests. Held–Karp is `O(2^k · k²)`; this
/// keeps a single evaluation in the low milliseconds, and past it only the
/// MST-based bounds are used.
pub const EXACT_CUTOFF: usize = 16;

/// The best (largest) applicable lower bound for a request set: the max over every
/// estimator that applies — the exact Held–Karp value (for sets of at most
/// [`EXACT_CUTOFF`] requests) and both MST-based bounds.
///
/// Taking the max matters even when the exact bound is available: a degenerate
/// instance (e.g. every request at the root at time 0) has exact optimum 0, and the
/// MST bounds are 0 too — the caller must treat a zero bound as *degenerate* (no
/// ratio can be certified against it) rather than clamp it; see
/// [`crate::ratio::RatioReport::opt_bound_degenerate`].
pub fn best_lower_bound(rs: &RequestSet) -> OptBound {
    let mut best = manhattan_mst_bound(rs);
    let spatial = distance_only_bound(rs);
    if spatial.value > best.value {
        best = spatial;
    }
    if rs.len() <= EXACT_CUTOFF {
        let exact = exact_optimal_cost(rs);
        // ≥, not >: the exact value dominates the MST bounds by construction, so
        // prefer reporting `Exact` on ties (including the all-zero degenerate case).
        if exact.value >= best.value {
            best = exact;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::RequestSchedule;
    use desim::SimTime;
    use netgraph::{generators, DistanceMatrix, RootedTree};

    fn set_on_path(positions: &[(usize, u64)], n: usize) -> RequestSet {
        let tree = RootedTree::from_tree_graph(&generators::path(n), 0);
        let schedule = RequestSchedule::from_pairs(
            &positions
                .iter()
                .map(|&(v, t)| (v, SimTime::from_units(t)))
                .collect::<Vec<_>>(),
        );
        RequestSet::new(&schedule, &tree)
    }

    #[test]
    fn exact_bound_on_a_simple_line() {
        // Simultaneous requests at 2 and 6 on a path rooted at 0: Opt must reach node 2
        // (cost >= 2) and then node 6 (cost >= 4) or vice versa; optimum is 2 + 4 = 6.
        let rs = set_on_path(&[(2, 0), (6, 0)], 8);
        let b = exact_optimal_cost(&rs);
        assert_eq!(b.kind, OptBoundKind::Exact);
        assert_eq!(b.value, 6.0);
    }

    #[test]
    fn exact_bound_includes_waiting_time() {
        // A single request at node 1 issued at t = 10: Opt cannot inform anyone before
        // the request exists... but the latency of the first request only counts from
        // its issue, so the bound is just the distance 1.
        let rs = set_on_path(&[(1, 10)], 4);
        assert_eq!(exact_optimal_cost(&rs).value, 1.0);
        // Two requests at the same node, the second issued *before* the first in the
        // chosen order costs the waiting time t_i - t_j.
        let rs2 = set_on_path(&[(3, 0), (3, 5)], 6);
        // Optimal order: (3,0) then (3,5): c = 3 (reach node 3) + 0 = 3.
        assert_eq!(exact_optimal_cost(&rs2).value, 3.0);
    }

    #[test]
    fn mst_bounds_never_exceed_exact() {
        for seed in 0..5u64 {
            let positions: Vec<(usize, u64)> = (0..7)
                .map(|i| {
                    (
                        (1 + (i * 3 + seed as usize) % 10),
                        (i as u64 * 2 + seed) % 8,
                    )
                })
                .collect();
            let rs = set_on_path(&positions, 12);
            let exact = exact_optimal_cost(&rs).value;
            let manhattan = manhattan_mst_bound(&rs).value;
            let spatial = distance_only_bound(&rs).value;
            assert!(
                manhattan <= exact + 1e-9,
                "seed {seed}: manhattan {manhattan} > exact {exact}"
            );
            // The distance-only bound uses d_G <= c_Opt edge-wise and MST <= any path.
            assert!(
                spatial <= exact + 1e-9,
                "seed {seed}: spatial {spatial} > exact {exact}"
            );
        }
    }

    #[test]
    fn best_lower_bound_picks_exact_for_small_sets() {
        let rs = set_on_path(&[(2, 0), (6, 0)], 8);
        let b = best_lower_bound(&rs);
        assert_eq!(b.kind, OptBoundKind::Exact);
    }

    #[test]
    fn best_lower_bound_is_the_max_over_all_estimators() {
        // Regression: best_lower_bound used to early-return the exact value for
        // small sets; it must now report the max over every applicable estimator
        // (the exact value dominates mathematically, so the max never loses to it).
        for seed in 0..5u64 {
            let positions: Vec<(usize, u64)> = (0..8)
                .map(|i| ((1 + (i * 5 + seed as usize) % 11), (i as u64 + seed) % 6))
                .collect();
            let rs = set_on_path(&positions, 13);
            let best = best_lower_bound(&rs);
            let exact = exact_optimal_cost(&rs);
            let manhattan = manhattan_mst_bound(&rs);
            let spatial = distance_only_bound(&rs);
            let expected = exact.value.max(manhattan.value).max(spatial.value);
            assert_eq!(best.value, expected, "seed {seed}");
            assert_eq!(best.kind, OptBoundKind::Exact, "exact dominates on ties");
        }
    }

    #[test]
    fn exact_cutoff_matches_the_documented_threshold() {
        // A set one past the cutoff must use an MST bound; at the cutoff, exact.
        // EXACT_CUTOFF counts RequestSet::len points, which include the virtual
        // root request — so "at the cutoff" means EXACT_CUTOFF - 1 real requests.
        let at: Vec<(usize, u64)> = (0..EXACT_CUTOFF - 1).map(|i| (1 + i % 9, 0)).collect();
        let past: Vec<(usize, u64)> = (0..EXACT_CUTOFF).map(|i| (1 + i % 9, 0)).collect();
        assert_eq!(
            best_lower_bound(&set_on_path(&at, 11)).kind,
            OptBoundKind::Exact
        );
        assert!(matches!(
            best_lower_bound(&set_on_path(&past, 11)).kind,
            OptBoundKind::ManhattanMst | OptBoundKind::DistanceMst
        ));
    }

    #[test]
    fn best_lower_bound_uses_mst_for_large_sets() {
        let positions: Vec<(usize, u64)> = (0..30).map(|i| (1 + i % 14, (i / 3) as u64)).collect();
        let rs = set_on_path(&positions, 16);
        let b = best_lower_bound(&rs);
        assert!(matches!(
            b.kind,
            OptBoundKind::ManhattanMst | OptBoundKind::DistanceMst
        ));
        assert!(b.value > 0.0);
    }

    #[test]
    fn graph_distances_tighten_the_spatial_bound() {
        // On a cycle, the tree forces long detours but Opt can use the short way round.
        let graph = generators::cycle(10);
        let tree = netgraph::spanning::shortest_path_tree(&graph, 0);
        let schedule = RequestSchedule::from_pairs(&[(5, SimTime::ZERO), (9, SimTime::ZERO)]);
        let with_graph = RequestSet::with_graph_distances(
            &schedule,
            &tree,
            Some(DistanceMatrix::shared(&graph)),
        );
        let tree_only = RequestSet::new(&schedule, &tree);
        assert!(distance_only_bound(&with_graph).value < distance_only_bound(&tree_only).value);
    }
}
