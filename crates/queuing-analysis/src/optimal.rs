//! Lower bounds on the cost of the optimal offline queuing algorithm.
//!
//! The optimal algorithm `Opt` of Section 3.3 knows all requests in advance, may pick
//! any queuing order, and communicates over the graph `G`. Its total latency is lower
//! bounded by `min_π Σ c_Opt(r_π(i-1), r_π(i)) ≥ (1/s) · min_π Σ c_O(...)`
//! (equation (4)). The paper never runs `Opt` — it only ever uses these bounds — and
//! neither do we: the measured competitive ratios divide arrow's real cost by a
//! certified *lower bound* on `Opt`, so the reported ratios are upper bounds on the
//! true ratio and can be compared directly against the `O(s · log D)` theorem.
//!
//! Estimators, from tight-and-expensive to loose-and-cheap:
//!
//! 1. [`exact_optimal_cost`] — Held–Karp over `c_Opt` (exact `min_π`, ≤ ~18 requests);
//! 2. [`manhattan_mst_bound`] — `MST_{c_M} / 12`, via Lemma 3.17 (`C_M ≤ 12 C_O`) and
//!    the fact that any path costs at least the MST weight;
//! 3. [`distance_only_bound`] — `MST_{d_G} `, ignoring time altogether (every request
//!    except possibly the first must be reached over the graph).

use crate::cost::RequestSet;
use crate::tsp_bounds::{held_karp_path, mst_weight};
use serde::{Deserialize, Serialize};

/// Which estimator produced an optimal-cost bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptBoundKind {
    /// Exact Held–Karp minimisation of `Σ c_Opt` over all orders.
    Exact,
    /// `MST` under the Manhattan metric divided by 12 (Lemma 3.17).
    ManhattanMst,
    /// `MST` under the graph distance only.
    DistanceMst,
}

/// A certified lower bound on the optimal offline cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptBound {
    /// The bound value (total latency, in time units).
    pub value: f64,
    /// Which estimator produced it.
    pub kind: OptBoundKind,
}

/// Exact optimal cost `min_π Σ c_Opt(π)` by Held–Karp. Only for small request sets.
pub fn exact_optimal_cost(rs: &RequestSet) -> OptBound {
    let (value, _) = held_karp_path(rs, RequestSet::cost_opt);
    OptBound {
        value,
        kind: OptBoundKind::Exact,
    }
}

/// The Manhattan-MST lower bound: any order's `c_M`-cost is at least the `c_M`-MST
/// weight, and `C_M ≤ 12 C_O` for every order (Lemma 3.17), with `C_O ≤ s · C_Opt`
/// handled by the caller via [`crate::ratio`]. So `Opt_T ≥ MST_{c_M} / 12` where
/// `Opt_T` is the optimum measured with tree distances.
pub fn manhattan_mst_bound(rs: &RequestSet) -> OptBound {
    let value = mst_weight(rs, RequestSet::cost_manhattan) / 12.0;
    OptBound {
        value,
        kind: OptBoundKind::ManhattanMst,
    }
}

/// A purely spatial lower bound: the optimal algorithm must at least connect all
/// request origins over the graph, so its total latency is at least the graph-distance
/// MST weight of the request set.
pub fn distance_only_bound(rs: &RequestSet) -> OptBound {
    let value = mst_weight(rs, RequestSet::cost_opt_distance_only);
    OptBound {
        value,
        kind: OptBoundKind::DistanceMst,
    }
}

impl RequestSet {
    /// Helper cost for [`distance_only_bound`]: just the graph distance.
    pub fn cost_opt_distance_only(&self, i: usize, j: usize) -> f64 {
        self.d_graph(i, j)
    }
}

/// The best (largest) applicable lower bound for a request set: exact when the set is
/// small enough, otherwise the max of the MST-based bounds.
pub fn best_lower_bound(rs: &RequestSet) -> OptBound {
    if rs.len() <= 15 {
        let exact = exact_optimal_cost(rs);
        // The exact bound dominates by definition, but guard against degenerate zero
        // values (e.g. all requests at the root at time 0) to avoid division by zero
        // downstream.
        if exact.value > 0.0 {
            return exact;
        }
    }
    let a = manhattan_mst_bound(rs);
    let b = distance_only_bound(rs);
    if a.value >= b.value {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_core::RequestSchedule;
    use desim::SimTime;
    use netgraph::{generators, DistanceMatrix, RootedTree};

    fn set_on_path(positions: &[(usize, u64)], n: usize) -> RequestSet {
        let tree = RootedTree::from_tree_graph(&generators::path(n), 0);
        let schedule = RequestSchedule::from_pairs(
            &positions
                .iter()
                .map(|&(v, t)| (v, SimTime::from_units(t)))
                .collect::<Vec<_>>(),
        );
        RequestSet::new(&schedule, &tree)
    }

    #[test]
    fn exact_bound_on_a_simple_line() {
        // Simultaneous requests at 2 and 6 on a path rooted at 0: Opt must reach node 2
        // (cost >= 2) and then node 6 (cost >= 4) or vice versa; optimum is 2 + 4 = 6.
        let rs = set_on_path(&[(2, 0), (6, 0)], 8);
        let b = exact_optimal_cost(&rs);
        assert_eq!(b.kind, OptBoundKind::Exact);
        assert_eq!(b.value, 6.0);
    }

    #[test]
    fn exact_bound_includes_waiting_time() {
        // A single request at node 1 issued at t = 10: Opt cannot inform anyone before
        // the request exists... but the latency of the first request only counts from
        // its issue, so the bound is just the distance 1.
        let rs = set_on_path(&[(1, 10)], 4);
        assert_eq!(exact_optimal_cost(&rs).value, 1.0);
        // Two requests at the same node, the second issued *before* the first in the
        // chosen order costs the waiting time t_i - t_j.
        let rs2 = set_on_path(&[(3, 0), (3, 5)], 6);
        // Optimal order: (3,0) then (3,5): c = 3 (reach node 3) + 0 = 3.
        assert_eq!(exact_optimal_cost(&rs2).value, 3.0);
    }

    #[test]
    fn mst_bounds_never_exceed_exact() {
        for seed in 0..5u64 {
            let positions: Vec<(usize, u64)> = (0..7)
                .map(|i| {
                    (
                        (1 + (i * 3 + seed as usize) % 10),
                        (i as u64 * 2 + seed) % 8,
                    )
                })
                .collect();
            let rs = set_on_path(&positions, 12);
            let exact = exact_optimal_cost(&rs).value;
            let manhattan = manhattan_mst_bound(&rs).value;
            let spatial = distance_only_bound(&rs).value;
            assert!(
                manhattan <= exact + 1e-9,
                "seed {seed}: manhattan {manhattan} > exact {exact}"
            );
            // The distance-only bound uses d_G <= c_Opt edge-wise and MST <= any path.
            assert!(
                spatial <= exact + 1e-9,
                "seed {seed}: spatial {spatial} > exact {exact}"
            );
        }
    }

    #[test]
    fn best_lower_bound_picks_exact_for_small_sets() {
        let rs = set_on_path(&[(2, 0), (6, 0)], 8);
        let b = best_lower_bound(&rs);
        assert_eq!(b.kind, OptBoundKind::Exact);
    }

    #[test]
    fn best_lower_bound_uses_mst_for_large_sets() {
        let positions: Vec<(usize, u64)> = (0..30).map(|i| (1 + i % 14, (i / 3) as u64)).collect();
        let rs = set_on_path(&positions, 16);
        let b = best_lower_bound(&rs);
        assert!(matches!(
            b.kind,
            OptBoundKind::ManhattanMst | OptBoundKind::DistanceMst
        ));
        assert!(b.value > 0.0);
    }

    #[test]
    fn graph_distances_tighten_the_spatial_bound() {
        // On a cycle, the tree forces long detours but Opt can use the short way round.
        let graph = generators::cycle(10);
        let tree = netgraph::spanning::shortest_path_tree(&graph, 0);
        let schedule = RequestSchedule::from_pairs(&[(5, SimTime::ZERO), (9, SimTime::ZERO)]);
        let with_graph = RequestSet::with_graph_distances(
            &schedule,
            &tree,
            Some(DistanceMatrix::shared(&graph)),
        );
        let tree_only = RequestSet::new(&schedule, &tree);
        assert!(distance_only_bound(&with_graph).value < distance_only_bound(&tree_only).value);
    }
}
