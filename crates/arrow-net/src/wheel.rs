//! The per-shard timer wheel: a slotted ring of millisecond buckets with an
//! overflow list, replacing the per-node binary-heap timer threads.
//!
//! Every time-driven concern of a reactor shard lives here — injected-latency
//! frame release, dial-retry backoff, handshake and drain deadlines — and the
//! wheel's [`next_due`](TimerWheel::next_due) feeds the shard's `epoll_wait`
//! timeout, so a shard sleeps in exactly one place.
//!
//! Ordering contract: entries inserted with non-decreasing due times pop in
//! insertion order (same-slot entries keep insertion order, earlier slots pop
//! first). The reactor relies on this for per-link FIFO: a link's due times
//! are a running maximum, so its frames can never overtake each other.

use std::time::{Duration, Instant};

/// Ring granularity: one slot per millisecond.
const GRANULARITY: Duration = Duration::from_millis(1);
/// Slots in the ring: ~half a second of horizon before entries overflow.
const SLOTS: usize = 512;

/// A monotonic millisecond-slotted timer wheel.
pub(crate) struct TimerWheel<T> {
    origin: Instant,
    slots: Vec<Vec<(Instant, T)>>,
    /// Entries due beyond the ring horizon; re-bucketed as the cursor wraps.
    overflow: Vec<(Instant, T)>,
    /// Absolute slot index (monotone, not wrapped) the cursor sits in.
    cursor: u64,
    /// Entries currently in `slots` (not counting `overflow`).
    in_ring: usize,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new(origin: Instant) -> Self {
        TimerWheel {
            origin,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor: 0,
            in_ring: 0,
        }
    }

    fn abs_slot(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.origin).as_nanos() / GRANULARITY.as_nanos()) as u64
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.in_ring == 0 && self.overflow.is_empty()
    }

    /// Schedule `item` at `due`. A due time in the past lands in the cursor's
    /// slot and pops on the next [`pop_due`](TimerWheel::pop_due).
    pub(crate) fn insert(&mut self, due: Instant, item: T) {
        let abs = self.abs_slot(due).max(self.cursor);
        if abs >= self.cursor + SLOTS as u64 {
            self.overflow.push((due, item));
        } else {
            self.slots[(abs % SLOTS as u64) as usize].push((due, item));
            self.in_ring += 1;
        }
    }

    /// Move every overflow entry now within the ring horizon into its slot.
    fn rebucket(&mut self) {
        let horizon = self.cursor + SLOTS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let abs = self.abs_slot(self.overflow[i].0).max(self.cursor);
            if abs < horizon {
                let (due, item) = self.overflow.swap_remove(i);
                self.slots[(abs % SLOTS as u64) as usize].push((due, item));
                self.in_ring += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Pop every entry due at or before `now` into `out`, preserving the
    /// ordering contract (see module docs).
    pub(crate) fn pop_due(&mut self, now: Instant, out: &mut Vec<T>) {
        let now_abs = self.abs_slot(now);
        loop {
            if self.in_ring == 0 {
                // Nothing in the ring: jump the cursor instead of stepping
                // through empty slots one by one, then see if the jump brought
                // overflow entries inside the horizon.
                self.cursor = self.cursor.max(now_abs);
                if self.overflow.is_empty() {
                    return;
                }
                self.rebucket();
                if self.in_ring == 0 {
                    return;
                }
            }
            if self.cursor >= now_abs {
                // The cursor's own slot may mix due and not-yet-due entries
                // (sub-millisecond resolution): take only what is due.
                let slot = &mut self.slots[(self.cursor % SLOTS as u64) as usize];
                let before = slot.len();
                let mut kept = Vec::new();
                for (due, item) in slot.drain(..) {
                    if due <= now {
                        out.push(item);
                    } else {
                        kept.push((due, item));
                    }
                }
                self.in_ring -= before - kept.len();
                *slot = kept;
                return;
            }
            // Every entry in a slot strictly behind `now`'s slot is due.
            let slot = &mut self.slots[(self.cursor % SLOTS as u64) as usize];
            self.in_ring -= slot.len();
            out.extend(slot.drain(..).map(|(_, item)| item));
            self.cursor += 1;
            if self.cursor.is_multiple_of(SLOTS as u64) {
                self.rebucket();
            }
        }
    }

    /// Drain *every* pending entry into `out`, due or not, preserving the
    /// per-link FIFO contract: ring slots drain in cursor order, then overflow
    /// entries in due order (stable, so equal dues keep insertion order). A
    /// link's dues are non-decreasing and overflow dues sit beyond every ring
    /// due, so a link's frames still come out in insertion order. Used by
    /// shutdown to deliver all scheduled frames immediately.
    pub(crate) fn drain_all(&mut self, out: &mut Vec<(Instant, T)>) {
        for off in 0..SLOTS as u64 {
            let slot = &mut self.slots[((self.cursor + off) % SLOTS as u64) as usize];
            out.append(slot);
        }
        self.in_ring = 0;
        self.overflow.sort_by_key(|(due, _)| *due);
        out.append(&mut self.overflow);
    }

    /// The earliest due time of any pending entry (ring or overflow).
    pub(crate) fn next_due(&self) -> Option<Instant> {
        let mut best: Option<Instant> = None;
        if self.in_ring > 0 {
            for off in 0..SLOTS as u64 {
                let slot = &self.slots[((self.cursor + off) % SLOTS as u64) as usize];
                if let Some(m) = slot.iter().map(|(due, _)| *due).min() {
                    best = Some(m);
                    break;
                }
            }
        }
        for (due, _) in &self.overflow {
            if best.is_none_or(|b| *due < b) {
                best = Some(*due);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_only_what_is_due() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.insert(t0 + Duration::from_millis(5), "a");
        w.insert(t0 + Duration::from_millis(50), "b");
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_millis(10), &mut out);
        assert_eq!(out, vec!["a"]);
        assert_eq!(w.next_due(), Some(t0 + Duration::from_millis(50)));
        w.pop_due(t0 + Duration::from_millis(60), &mut out);
        assert_eq!(out, vec!["a", "b"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_entries_keep_insertion_order() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let due = t0 + Duration::from_millis(3);
        for i in 0..10 {
            w.insert(due, i);
        }
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_millis(4), &mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nondecreasing_dues_pop_in_insertion_order_across_slots() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        // A link's running-maximum due times, spanning ring and overflow.
        let dues: Vec<u64> = vec![0, 1, 1, 7, 300, 300, 700, 1500];
        for (i, ms) in dues.iter().enumerate() {
            w.insert(t0 + Duration::from_millis(*ms), i);
        }
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_secs(10), &mut out);
        assert_eq!(out, (0..dues.len()).collect::<Vec<_>>());
    }

    #[test]
    fn past_due_entries_pop_immediately() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_secs(2), &mut out); // cursor well ahead
        w.insert(t0, "late");
        assert!(w.next_due().is_some());
        w.pop_due(t0 + Duration::from_secs(2), &mut out);
        assert_eq!(out, vec!["late"]);
    }

    #[test]
    fn drain_all_returns_everything_in_link_fifo_order() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let dues: Vec<u64> = vec![2, 2, 9, 400, 900, 2000];
        for (i, ms) in dues.iter().enumerate() {
            w.insert(t0 + Duration::from_millis(*ms), i);
        }
        let mut out = Vec::new();
        w.drain_all(&mut out);
        let items: Vec<usize> = out.into_iter().map(|(_, item)| item).collect();
        assert_eq!(items, (0..dues.len()).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn overflow_entries_survive_long_idle_gaps() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.insert(t0 + Duration::from_secs(5), "deadline");
        assert_eq!(w.next_due(), Some(t0 + Duration::from_secs(5)));
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_secs(4), &mut out);
        assert!(out.is_empty());
        w.pop_due(t0 + Duration::from_secs(6), &mut out);
        assert_eq!(out, vec!["deadline"]);
    }
}
