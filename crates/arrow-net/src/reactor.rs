//! The sharded reactor core of the socket tier.
//!
//! Instead of three threads per node (accept/read/write), the runtime spawns a
//! small fixed pool of *shards*. Each shard owns a disjoint subset of the
//! nodes, runs one epoll loop over all of their listeners and connections, and
//! drives every per-node Arrow core, handshake state machine, timer, and send
//! buffer from that single thread. Thread count is `O(shards)`, not
//! `O(nodes)`, which is what lets one process host ≥1024 nodes.
//!
//! A TCP connection between nodes on different shards appears as two
//! independent [`Conn`] entries, one in each shard's slab; the kernel socket
//! is the only shared state. Cross-shard control (acquire, crash, epoch,
//! shutdown) travels through each shard's [`Inbox`], woken via an eventfd.
//!
//! Handshakes are nonblocking state machines ([`ConnState`]): a dialer drives
//! `Connecting → AwaitWelcome → Established`, an acceptor `AwaitHello →
//! Established`. When two nodes dial each other simultaneously, both sides
//! deterministically keep the connection dialed by the lower node id and
//! drain the loser (see [`Shard::promote`]), so exactly one link survives and
//! no staged frame is lost.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::mem;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use arrow_core::live::{ArrowCore, CoreAction};
use arrow_core::prelude::{ObjectId, OrderRecord, ProtoMsg, Request, RequestId};
use arrow_trace::{HistMetric, Metric, Probe, ProbeEvent};
use desim::{SimTime, SUBTICKS_PER_UNIT};
use netgraph::{NodeId, RootedTree};

use crate::mesh::{DelayPolicy, NetConfig, NetStats, HANDSHAKE_TIMEOUT, RECV_BUF_INIT};
use crate::runtime::{Grant, NetFailure, NodeJournal};
use crate::wheel::TimerWheel;
use crate::wire::{Frame, MAX_FRAME_LEN};

/// Poll token reserved for the shard's inbox eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Base backoff between dial retries (scaled by attempt number).
const DIAL_BACKOFF: Duration = Duration::from_millis(5);
/// How long a dedupe-losing connection may keep draining before being cut.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// A draining connection idle (no reads) this long is assumed flushed.
const DRAIN_IDLE: Duration = Duration::from_secs(2);
/// Hard deadline for graceful shutdown before remaining sockets are cut.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);
/// Max `read(2)` calls per readiness event before yielding to other sockets.
const READS_PER_EVENT: usize = 16;

/// A control-plane command injected into a shard from outside its thread.
pub(crate) enum ShardCmd {
    /// Issue an acquire on `node` for `obj`; the grant goes to `reply`.
    Acquire {
        node: NodeId,
        obj: ObjectId,
        reply: Sender<Grant>,
    },
    /// Release the token for `obj` held by `node` under request `req`.
    Release {
        node: NodeId,
        obj: ObjectId,
        req: RequestId,
    },
    /// Another shard's node failed; propagate to this shard's nodes.
    PeerFailed { failure: NetFailure },
    /// Fault injection: crash `node` (sever sockets, reboot core).
    Crash { node: NodeId },
    /// Fault injection: restart a crashed `node`.
    Restart { node: NodeId },
    /// Adopt recovery epoch `epoch` on every node of this shard.
    Epoch { epoch: u64 },
    /// Begin graceful shutdown of the shard.
    Shutdown,
}

/// The cross-thread mailbox of one shard: a locked queue plus an eventfd that
/// pulls the shard out of `epoll_wait` when a command lands.
pub(crate) struct Inbox {
    queue: Mutex<VecDeque<ShardCmd>>,
    waker: netpoll::Waker,
    /// Set by the shard as it exits; late senders see `send` return `false`.
    closed: AtomicBool,
}

/// A cheap cloneable handle for injecting commands into one shard.
pub(crate) struct ShardInjector {
    inbox: Arc<Inbox>,
}

impl Clone for ShardInjector {
    fn clone(&self) -> Self {
        ShardInjector {
            inbox: Arc::clone(&self.inbox),
        }
    }
}

impl std::fmt::Debug for ShardInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShardInjector")
    }
}

impl ShardInjector {
    /// Enqueue `cmd` and wake the shard. Returns `false` if the shard has
    /// already drained its inbox for the last time and exited.
    pub(crate) fn send(&self, cmd: ShardCmd) -> bool {
        // The closed check happens before the push: once `closed` is set the
        // shard never locks the queue again, so a command enqueued after a
        // `true` load here may be dropped — callers treat `false` (and only
        // `false`) as "runtime has shut down".
        if self.inbox.closed.load(Ordering::Acquire) {
            return false;
        }
        self.inbox
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(cmd);
        let _ = self.inbox.waker.wake();
        true
    }
}

/// One slab slot: a generation counter (folded into poll tokens so stale
/// epoll events for a reused slot are ignored) plus the event source.
struct SlabEntry {
    gen: u32,
    src: Option<Source>,
}

/// Anything a shard registers with its poller.
enum Source {
    /// A node's accept socket.
    Listener { node: NodeId, listener: TcpListener },
    /// A live or in-handshake connection.
    Conn(Box<Conn>),
}

/// Handshake progression of a connection.
#[derive(Clone, Copy, PartialEq)]
enum ConnState {
    /// Dialer: `connect(2)` in flight, waiting for writability.
    Connecting,
    /// Dialer: `Hello` sent, waiting for the peer's `Welcome`.
    AwaitWelcome,
    /// Acceptor: waiting for the peer's `Hello`.
    AwaitHello,
    /// Handshake complete; protocol frames flow.
    Established,
}

/// Per-connection state: socket, framing buffer, send buffer, lifecycle.
struct Conn {
    stream: TcpStream,
    /// The local node that owns this endpoint.
    node: NodeId,
    /// The remote node, once known (dialers know at creation, acceptors after
    /// `Hello`).
    peer: Option<NodeId>,
    /// Whether this endpoint initiated the connection.
    dialed: bool,
    state: ConnState,
    /// Read buffer; frames are scanned out of `buf[start..end]`.
    buf: Vec<u8>,
    start: usize,
    end: usize,
    out: SendBuf,
    /// Last interest registered with the poller (read, write).
    interest: (bool, bool),
    /// Peer sent `Goodbye`: no more inbound frames expected.
    peer_closed: bool,
    /// Half-close the write side once `out` fully flushes.
    close_write_after_flush: bool,
    /// Write side has been shut down.
    write_closed: bool,
    /// Lost a dial-race dedupe; being drained of in-flight frames.
    draining: bool,
    /// Already queued in the shard's flush list this cycle.
    in_flushq: bool,
    last_read: Instant,
}

/// A connection's pending outbound bytes, with frame accounting for the
/// write-batch histogram.
struct SendBuf {
    buf: Vec<u8>,
    written: usize,
    frames: u64,
}

impl SendBuf {
    fn new() -> Self {
        SendBuf {
            buf: Vec::new(),
            written: 0,
            frames: 0,
        }
    }

    fn stage(&mut self, frame: &Frame) {
        frame.encode_into(&mut self.buf);
        self.frames += 1;
    }
}

enum FlushOutcome {
    Done,
    Blocked,
    Dead(io::Error),
}

/// Write as much of `c.out` as the socket accepts right now.
fn flush_send_buf(c: &mut Conn, stats: &NetStats) -> FlushOutcome {
    while c.out.written < c.out.buf.len() {
        match (&c.stream).write(&c.out.buf[c.out.written..]) {
            Ok(0) => return FlushOutcome::Dead(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                stats.inc(Metric::SocketWrites);
                stats.add(Metric::BytesSent, n as u64);
                c.out.written += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                stats.inc(Metric::WouldBlockRetries);
                return FlushOutcome::Blocked;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return FlushOutcome::Dead(e),
        }
    }
    if c.out.frames > 0 {
        stats.add(Metric::FramesSent, c.out.frames);
        stats.observe(HistMetric::WriteBatchFrames, c.out.frames);
    }
    c.out.buf.clear();
    c.out.written = 0;
    c.out.frames = 0;
    FlushOutcome::Done
}

/// Why a node started a dial; decides how a final dial failure is handled.
#[derive(Clone, Copy, PartialEq)]
enum DialIntent {
    /// Initial parent dial at startup: failure fails the node.
    Bootstrap,
    /// Re-dial of the parent after a restart: failure is ignored.
    Restart,
    /// Dial carrying protocol traffic: failure drops or fails per config.
    Traffic,
}

/// A dial in flight: frames staged for the link pile up here until the
/// handshake completes.
struct PendingDial {
    /// Slab index of the connecting socket, if one is currently open.
    conn: Option<usize>,
    frames: Vec<Frame>,
    attempt: u32,
    intent: DialIntent,
}

/// The established link a node holds toward one peer.
struct Link {
    /// Slab index of the winning connection.
    conn: usize,
    /// Slab index of a dedupe loser still draining, if any.
    loser: Option<usize>,
    /// Frames read from the loser while the race was unresolved; replayed in
    /// order once the loser finishes draining.
    deferred: Vec<Frame>,
}

/// Injected-latency state for one directed link.
struct LinkDelay {
    policy: DelayPolicy,
    /// Running maximum of scheduled due times, enforcing per-link FIFO.
    last_due: Instant,
}

/// Everything one node carries inside its shard.
struct NodeState<P: Probe> {
    me: NodeId,
    core: ArrowCore<P>,
    /// Scratch buffer for core actions (reused across dispatches).
    actions: Vec<CoreAction>,
    /// In-flight acquires awaiting a `Granted` action.
    waiting: HashMap<(ObjectId, RequestId), (Sender<Grant>, Instant)>,
    failed: Option<NetFailure>,
    crashed: bool,
    links: HashMap<NodeId, Link>,
    pending: HashMap<NodeId, PendingDial>,
    delay: HashMap<NodeId, LinkDelay>,
    journal: NodeJournal,
    /// Core actions are pending dispatch (node is queued in `dirtyq`).
    dirty: bool,
}

/// A timer wheel entry.
enum TimerEntry {
    /// Injected-latency release of one frame toward `peer`.
    FlushFrame {
        node: NodeId,
        peer: NodeId,
        frame: Frame,
        due: Instant,
    },
    /// Backoff expiry for a failed dial attempt.
    RetryDial { node: NodeId, peer: NodeId },
    /// Handshake/drain deadline for the connection behind `token`.
    ConnDeadline { token: u64 },
    /// Graceful-shutdown grace period expired: cut remaining sockets.
    ShutdownDeadline,
}

/// Immutable state shared by every shard, built once by the runtime.
#[derive(Clone)]
pub(crate) struct ReactorShared {
    pub(crate) cfg: NetConfig,
    pub(crate) tree: Arc<RootedTree>,
    pub(crate) addrs: Arc<Vec<SocketAddr>>,
    pub(crate) stats: Arc<NetStats>,
    /// Normalized `(min, max)` pairs of links currently severed by faults.
    pub(crate) blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    /// Fast path: skip the `blocked` lock entirely until faults are armed.
    pub(crate) faults_armed: Arc<AtomicBool>,
    /// Wall-clock origin for journal timestamps and the timer wheels.
    pub(crate) epoch0: Instant,
}

/// One node's slice of the spawn manifest: its id, protocol core, and bound
/// listener.
pub(crate) type NodeSeed<P> = (NodeId, ArrowCore<P>, TcpListener);

/// A shard thread's join handle; joining yields the shard's node journals.
pub(crate) type ShardJoin = JoinHandle<Vec<(NodeId, NodeJournal)>>;

/// Spawn the shard threads. `shard_nodes[s]` lists the nodes shard `s` owns,
/// each with its protocol core and bound listener. Returns one injector per
/// shard plus the join handles (each yields the shard's node journals).
pub(crate) fn spawn_shards<P: Probe + Send + 'static>(
    shared: &ReactorShared,
    shard_nodes: Vec<Vec<NodeSeed<P>>>,
) -> (Vec<ShardInjector>, Vec<ShardJoin>) {
    let inboxes: Vec<Arc<Inbox>> = shard_nodes
        .iter()
        .map(|_| {
            Arc::new(Inbox {
                queue: Mutex::new(VecDeque::new()),
                waker: netpoll::Waker::new().expect("eventfd waker"),
                closed: AtomicBool::new(false),
            })
        })
        .collect();
    let injectors: Vec<ShardInjector> = inboxes
        .iter()
        .map(|inbox| ShardInjector {
            inbox: Arc::clone(inbox),
        })
        .collect();
    let peers = Arc::new(injectors.clone());
    let mut threads = Vec::with_capacity(shard_nodes.len());
    for (s, nodes) in shard_nodes.into_iter().enumerate() {
        let shared = shared.clone();
        let inbox = Arc::clone(&inboxes[s]);
        let peers = Arc::clone(&peers);
        threads.push(
            std::thread::Builder::new()
                .name(format!("arrow-net-shard-{s}"))
                .spawn(move || Shard::new(&shared, inbox, peers, nodes).run())
                .expect("spawn shard thread"),
        );
    }
    (injectors, threads)
}

/// One reactor shard: a single-threaded event loop over a subset of nodes.
struct Shard<P: Probe> {
    cfg: NetConfig,
    tree: Arc<RootedTree>,
    addrs: Arc<Vec<SocketAddr>>,
    stats: Arc<NetStats>,
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    faults_armed: Arc<AtomicBool>,
    epoch0: Instant,
    poller: netpoll::Poller,
    slab: Vec<SlabEntry>,
    free: Vec<usize>,
    nodes: HashMap<NodeId, NodeState<P>>,
    wheel: TimerWheel<TimerEntry>,
    inbox: Arc<Inbox>,
    peers: Arc<Vec<ShardInjector>>,
    /// Connections (by token) with staged bytes to flush this cycle.
    flushq: Vec<u64>,
    /// Nodes with undispatched core actions this cycle.
    dirtyq: Vec<NodeId>,
    shutting_down: bool,
    shutdown_forced: bool,
}

/// Drain `state.waiting` into failure grants and mark the node failed.
fn enter_failed_state<P: Probe>(state: &mut NodeState<P>, failure: NetFailure) {
    for ((obj, _req), (reply, issued)) in state.waiting.drain() {
        let _ = reply.send(Grant {
            node: state.me,
            obj,
            result: Err(failure.clone()),
            wait: issued.elapsed(),
        });
    }
    state.failed = Some(failure);
}

impl<P: Probe> Shard<P> {
    fn new(
        shared: &ReactorShared,
        inbox: Arc<Inbox>,
        peers: Arc<Vec<ShardInjector>>,
        owned: Vec<(NodeId, ArrowCore<P>, TcpListener)>,
    ) -> Self {
        let poller = netpoll::Poller::new().expect("epoll instance");
        poller
            .register(inbox.waker.as_raw_fd(), WAKER_TOKEN, true, false)
            .expect("register waker");
        let mut shard = Shard {
            cfg: shared.cfg,
            tree: Arc::clone(&shared.tree),
            addrs: Arc::clone(&shared.addrs),
            stats: Arc::clone(&shared.stats),
            blocked: Arc::clone(&shared.blocked),
            faults_armed: Arc::clone(&shared.faults_armed),
            epoch0: shared.epoch0,
            poller,
            slab: Vec::new(),
            free: Vec::new(),
            nodes: HashMap::with_capacity(owned.len()),
            wheel: TimerWheel::new(shared.epoch0),
            inbox,
            peers,
            flushq: Vec::new(),
            dirtyq: Vec::new(),
            shutting_down: false,
            shutdown_forced: false,
        };
        for (v, core, listener) in owned {
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            let fd = listener.as_raw_fd();
            let (_, tok) = shard.slab_insert(Source::Listener { node: v, listener });
            shard
                .poller
                .register(fd, tok, true, false)
                .expect("register listener");
            shard.nodes.insert(
                v,
                NodeState {
                    me: v,
                    core,
                    actions: Vec::new(),
                    waiting: HashMap::new(),
                    failed: None,
                    crashed: false,
                    links: HashMap::new(),
                    pending: HashMap::new(),
                    delay: HashMap::new(),
                    journal: NodeJournal::default(),
                    dirty: false,
                },
            );
        }
        shard
    }

    // ---- slab --------------------------------------------------------------

    /// Insert an event source, returning its slot index and poll token. The
    /// token packs `(generation << 32) | index` so a stale event for a reused
    /// slot fails to resolve instead of hitting the wrong connection.
    fn slab_insert(&mut self, src: Source) -> (usize, u64) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(SlabEntry { gen: 0, src: None });
                self.slab.len() - 1
            }
        };
        let entry = &mut self.slab[idx];
        entry.gen = entry.gen.wrapping_add(1);
        entry.src = Some(src);
        (idx, ((entry.gen as u64) << 32) | idx as u64)
    }

    /// Remove and return the source at `idx`, deregistering its fd.
    fn slab_remove(&mut self, idx: usize) -> Source {
        let src = self.slab[idx].src.take().expect("slab slot occupied");
        let fd = match &src {
            Source::Listener { listener, .. } => listener.as_raw_fd(),
            Source::Conn(c) => c.stream.as_raw_fd(),
        };
        let _ = self.poller.deregister(fd);
        self.free.push(idx);
        src
    }

    /// Map a poll token back to a live slab index, or `None` if stale.
    fn resolve(&self, token: u64) -> Option<usize> {
        if token == WAKER_TOKEN {
            return None;
        }
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        if idx < self.slab.len() && self.slab[idx].gen == gen && self.slab[idx].src.is_some() {
            Some(idx)
        } else {
            None
        }
    }

    /// The current token of an occupied slot.
    fn token_of(&self, idx: usize) -> u64 {
        ((self.slab[idx].gen as u64) << 32) | idx as u64
    }

    fn conn(&self, idx: usize) -> &Conn {
        match self.slab[idx].src.as_ref().expect("occupied") {
            Source::Conn(c) => c,
            Source::Listener { .. } => panic!("slot {idx} is a listener"),
        }
    }

    fn conn_mut(&mut self, idx: usize) -> &mut Conn {
        match self.slab[idx].src.as_mut().expect("occupied") {
            Source::Conn(c) => c,
            Source::Listener { .. } => panic!("slot {idx} is a listener"),
        }
    }

    // ---- loop --------------------------------------------------------------

    fn now(&self) -> SimTime {
        SimTime::from_subticks(
            (self.epoch0.elapsed().as_secs_f64() * SUBTICKS_PER_UNIT as f64) as u64,
        )
    }

    fn mark_dirty(&mut self, v: NodeId) {
        let node = self.nodes.get_mut(&v).expect("owned node");
        if !node.dirty {
            node.dirty = true;
            self.dirtyq.push(v);
        }
    }

    fn run(mut self) -> Vec<(NodeId, NodeJournal)> {
        // Bootstrap: every non-root node dials its tree parent.
        let owned: Vec<NodeId> = self.nodes.keys().copied().collect();
        for v in owned {
            if let Some(p) = self.tree.parent(v) {
                self.start_dial(v, p, DialIntent::Bootstrap, Vec::new());
            }
        }
        let mut events = Vec::new();
        let mut due = Vec::new();
        loop {
            let timeout = self
                .wheel
                .next_due()
                .map(|d| d.saturating_duration_since(Instant::now()));
            let _ = self.poller.wait(&mut events, timeout);
            self.stats.inc(Metric::ReactorWakeups);
            self.stats
                .observe(HistMetric::EventsPerWakeup, events.len() as u64);
            for ev in &events {
                let ev = *ev;
                if ev.token == WAKER_TOKEN {
                    self.inbox.waker.drain();
                    continue;
                }
                if ev.readable {
                    if let Some(idx) = self.resolve(ev.token) {
                        self.handle_readable(idx);
                    }
                }
                // Re-resolve: the readable half may have closed the conn.
                if ev.writable {
                    if let Some(idx) = self.resolve(ev.token) {
                        self.handle_writable(idx);
                    }
                }
            }
            let cmds = mem::take(
                &mut *self
                    .inbox
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            if !cmds.is_empty() {
                self.stats
                    .observe(HistMetric::ShardQueueDepth, cmds.len() as u64);
            }
            for cmd in cmds {
                self.handle_cmd(cmd);
            }
            due.clear();
            self.wheel.pop_due(Instant::now(), &mut due);
            for entry in due.drain(..) {
                self.handle_timer(entry);
            }
            let dirty = mem::take(&mut self.dirtyq);
            for v in dirty {
                if self.nodes.get(&v).is_some_and(|n| n.dirty) {
                    self.apply_actions(v);
                }
            }
            let flush = mem::take(&mut self.flushq);
            for tok in flush {
                if let Some(idx) = self.resolve(tok) {
                    self.conn_mut(idx).in_flushq = false;
                    self.flush_conn(idx);
                }
            }
            if self.shutting_down {
                if self.shutdown_forced {
                    let conns: Vec<usize> = self
                        .slab
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| matches!(e.src, Some(Source::Conn(_))))
                        .map(|(i, _)| i)
                        .collect();
                    for idx in conns {
                        if let Source::Conn(c) = self.slab_remove(idx) {
                            let _ = c.stream.shutdown(Shutdown::Both);
                        }
                    }
                }
                let live = self
                    .slab
                    .iter()
                    .any(|e| matches!(e.src, Some(Source::Conn(_))));
                if !live {
                    break;
                }
            }
        }
        self.inbox.closed.store(true, Ordering::Release);
        let mut out = Vec::with_capacity(self.nodes.len());
        for (v, node) in self.nodes.drain() {
            self.stats
                .add(Metric::StaleEpochDrops, node.core.stale_drops());
            out.push((v, node.journal));
        }
        out
    }

    // ---- control plane -----------------------------------------------------

    fn handle_cmd(&mut self, cmd: ShardCmd) {
        match cmd {
            ShardCmd::Acquire { node, obj, reply } => self.cmd_acquire(node, obj, reply),
            ShardCmd::Release { node, obj, req } => {
                let state = self.nodes.get_mut(&node).expect("owned node");
                if state.crashed {
                    return;
                }
                state.core.on_release(obj, req, &mut state.actions);
                self.mark_dirty(node);
            }
            ShardCmd::PeerFailed { failure } => {
                for state in self.nodes.values_mut() {
                    if !state.crashed && state.failed.is_none() {
                        enter_failed_state(state, failure.clone());
                    }
                }
            }
            ShardCmd::Crash { node } => self.cmd_crash(node),
            ShardCmd::Restart { node } => self.cmd_restart(node),
            ShardCmd::Epoch { epoch } => {
                let owned: Vec<NodeId> = self.nodes.keys().copied().collect();
                for v in owned {
                    if !self.nodes[&v].crashed {
                        self.adopt_epoch(v, epoch);
                    }
                }
            }
            ShardCmd::Shutdown => self.begin_shutdown(),
        }
    }

    fn cmd_acquire(&mut self, v: NodeId, obj: ObjectId, reply: Sender<Grant>) {
        let time = self.now();
        let state = self.nodes.get_mut(&v).expect("owned node");
        if state.crashed {
            let _ = reply.send(Grant {
                node: v,
                obj,
                result: Err(NetFailure {
                    node: v,
                    description: "node is crashed (fault injection)".into(),
                }),
                wait: Duration::ZERO,
            });
            return;
        }
        if let Some(failure) = &state.failed {
            let _ = reply.send(Grant {
                node: v,
                obj,
                result: Err(failure.clone()),
                wait: Duration::ZERO,
            });
            return;
        }
        self.stats.inc(Metric::RequestsIssued);
        let req = state.core.acquire(obj, &mut state.actions);
        state.waiting.insert((obj, req), (reply, Instant::now()));
        state.journal.issued.push(Request {
            id: req,
            node: v,
            time,
            obj,
        });
        self.mark_dirty(v);
    }

    fn cmd_crash(&mut self, v: NodeId) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        if state.crashed {
            return;
        }
        // Sever every socket this node owns, bypassing close_conn bookkeeping
        // — the links/pending maps are wiped wholesale below.
        let victims: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(&e.src, Some(Source::Conn(c)) if c.node == v))
            .map(|(i, _)| i)
            .collect();
        for idx in victims {
            if let Source::Conn(c) = self.slab_remove(idx) {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        let state = self.nodes.get_mut(&v).expect("owned node");
        state.links.clear();
        state.pending.clear();
        state.core.reboot();
        state.actions.clear();
        let me = state.me;
        for ((obj, _req), (reply, issued)) in state.waiting.drain() {
            let _ = reply.send(Grant {
                node: me,
                obj,
                result: Err(NetFailure {
                    node: me,
                    description: "node crashed (fault injection)".into(),
                }),
                wait: issued.elapsed(),
            });
        }
        state.crashed = true;
    }

    fn cmd_restart(&mut self, v: NodeId) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        if !state.crashed {
            return;
        }
        state.crashed = false;
        if let Some(p) = self.tree.parent(v) {
            let state = &self.nodes[&v];
            if !state.links.contains_key(&p) && !state.pending.contains_key(&p) {
                self.start_dial(v, p, DialIntent::Restart, Vec::new());
            }
        }
    }

    fn adopt_epoch(&mut self, v: NodeId, epoch: u64) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        let before = state.core.epoch();
        state.core.on_epoch(epoch, &mut state.actions);
        if state.core.epoch() > before {
            self.stats.inc(Metric::EpochsAdopted);
        }
        self.mark_dirty(v);
    }

    // ---- core action dispatch ----------------------------------------------

    fn apply_actions(&mut self, v: NodeId) {
        loop {
            let mut orphaned: Vec<(ObjectId, RequestId)> = Vec::new();
            let state = self.nodes.get_mut(&v).expect("owned node");
            let actions = mem::take(&mut state.actions);
            state.dirty = false;
            if actions.is_empty() {
                return;
            }
            for action in &actions {
                match *action {
                    CoreAction::SendQueue {
                        to,
                        obj,
                        req,
                        origin,
                        epoch,
                    } => {
                        self.stats.inc(Metric::QueueFrames);
                        self.send_frame(
                            v,
                            to,
                            Frame::Proto(ProtoMsg::Queue {
                                req,
                                obj,
                                origin,
                                epoch,
                            }),
                        );
                    }
                    CoreAction::SendToken {
                        to,
                        obj,
                        req,
                        epoch,
                    } => {
                        self.stats.inc(Metric::TokenFrames);
                        self.send_frame(v, to, Frame::Token { obj, req, epoch });
                    }
                    CoreAction::Granted { obj, req } => {
                        self.stats.inc(Metric::Acquisitions);
                        let state = self.nodes.get_mut(&v).expect("owned node");
                        match state.waiting.remove(&(obj, req)) {
                            Some((reply, issued)) => {
                                let wait = issued.elapsed();
                                self.stats
                                    .observe(HistMetric::AcquireNanos, wait.as_nanos() as u64);
                                let _ = reply.send(Grant {
                                    node: v,
                                    obj,
                                    result: Ok(req),
                                    wait,
                                });
                            }
                            // A grant with no waiter (the waiter was dropped
                            // by a crash/restart cycle) releases the token
                            // straight back into the tree.
                            None => orphaned.push((obj, req)),
                        }
                    }
                    CoreAction::Queued {
                        obj,
                        pred,
                        succ,
                        origin,
                        epoch,
                    } => {
                        let at = self.now();
                        let state = self.nodes.get_mut(&v).expect("owned node");
                        state.journal.records.push(OrderRecord {
                            predecessor: pred,
                            successor: succ,
                            obj,
                            at_node: v,
                            informed_at: at,
                            epoch,
                        });
                        let _ = origin;
                    }
                }
            }
            let state = self.nodes.get_mut(&v).expect("owned node");
            let mut drained = actions;
            drained.clear();
            // Give the emptied buffer's capacity back to the node; actions
            // emitted during dispatch were pushed into the fresh Vec left by
            // mem::take and are carried over for the next pass.
            drained.append(&mut state.actions);
            state.actions = drained;
            if orphaned.is_empty() {
                if state.actions.is_empty() {
                    return;
                }
                continue;
            }
            for (obj, req) in orphaned {
                self.stats.inc(Metric::OrphanReleases);
                let state = self.nodes.get_mut(&v).expect("owned node");
                state.core.probe_mut().record(ProbeEvent::OrphanRelease {
                    obj: obj.0,
                    req: req.0,
                });
                state.core.on_release(obj, req, &mut state.actions);
            }
        }
    }

    // ---- outbound frames ---------------------------------------------------

    /// Entry point for protocol frames leaving node `v` toward `to`: applies
    /// injected latency, then delivers (or schedules delivery of) the frame.
    fn send_frame(&mut self, v: NodeId, to: NodeId, frame: Frame) {
        let state = &self.nodes[&v];
        if state.failed.is_some() {
            return;
        }
        if self.faults_armed.load(Ordering::Relaxed) {
            let severed = state.crashed || {
                let key = (v.min(to), v.max(to));
                self.blocked
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .contains(&key)
            };
            if severed {
                self.stats.inc(Metric::FramesDropped);
                return;
            }
        }
        if self.cfg.unit_latency.is_zero() {
            self.deliver_frame(v, to, frame);
            return;
        }
        let now = Instant::now();
        let cfg = self.cfg;
        let dist = self.tree.distance(v, to);
        let state = self.nodes.get_mut(&v).expect("owned node");
        let delay = state.delay.entry(to).or_insert_with(|| LinkDelay {
            policy: DelayPolicy::new(&cfg, dist, v, to),
            last_due: now,
        });
        let due = delay.last_due.max(now + delay.policy.sample());
        delay.last_due = due;
        self.wheel.insert(
            due,
            TimerEntry::FlushFrame {
                node: v,
                peer: to,
                frame,
                due,
            },
        );
    }

    /// Hand a frame to the link toward `to`, dialing it if absent.
    fn deliver_frame(&mut self, v: NodeId, to: NodeId, frame: Frame) {
        let state = &self.nodes[&v];
        if state.failed.is_some() {
            return;
        }
        if state.crashed {
            self.stats.inc(Metric::FramesDropped);
            return;
        }
        if let Some(link) = state.links.get(&to) {
            let idx = link.conn;
            self.stage_frame(idx, &frame);
            return;
        }
        if self.shutting_down {
            return;
        }
        let state = self.nodes.get_mut(&v).expect("owned node");
        if let Some(p) = state.pending.get_mut(&to) {
            p.frames.push(frame);
            return;
        }
        self.start_dial(v, to, DialIntent::Traffic, vec![frame]);
    }

    /// Append `frame` to a connection's send buffer and queue it for flush.
    fn stage_frame(&mut self, idx: usize, frame: &Frame) {
        let tok = self.token_of(idx);
        let c = self.conn_mut(idx);
        c.out.stage(frame);
        if !c.in_flushq {
            c.in_flushq = true;
            self.flushq.push(tok);
        }
    }

    // ---- dialing -----------------------------------------------------------

    fn start_dial(&mut self, v: NodeId, to: NodeId, intent: DialIntent, frames: Vec<Frame>) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        state.pending.insert(
            to,
            PendingDial {
                conn: None,
                frames,
                attempt: 0,
                intent,
            },
        );
        self.dial_now(v, to);
    }

    fn dial_now(&mut self, v: NodeId, to: NodeId) {
        match netpoll::connect_stream(&self.addrs[to]) {
            Ok(stream) => {
                let fd = stream.as_raw_fd();
                let (idx, tok) = self.slab_insert(Source::Conn(Box::new(Conn {
                    stream,
                    node: v,
                    peer: Some(to),
                    dialed: true,
                    state: ConnState::Connecting,
                    buf: vec![0; RECV_BUF_INIT],
                    start: 0,
                    end: 0,
                    out: SendBuf::new(),
                    interest: (false, true),
                    peer_closed: false,
                    close_write_after_flush: false,
                    write_closed: false,
                    draining: false,
                    in_flushq: false,
                    last_read: Instant::now(),
                })));
                if let Err(e) = self.poller.register(fd, tok, false, true) {
                    self.slab_remove(idx);
                    self.dial_failed(v, to, e);
                    return;
                }
                self.wheel.insert(
                    Instant::now() + HANDSHAKE_TIMEOUT,
                    TimerEntry::ConnDeadline { token: tok },
                );
                self.nodes
                    .get_mut(&v)
                    .expect("owned node")
                    .pending
                    .get_mut(&to)
                    .expect("pending dial")
                    .conn = Some(idx);
            }
            Err(e) => self.dial_failed(v, to, e),
        }
    }

    fn dial_failed(&mut self, v: NodeId, to: NodeId, err: io::Error) {
        if self.shutting_down {
            self.nodes
                .get_mut(&v)
                .expect("owned node")
                .pending
                .remove(&to);
            return;
        }
        let dial_retries = self.cfg.dial_retries;
        let state = self.nodes.get_mut(&v).expect("owned node");
        let Some(p) = state.pending.get_mut(&to) else {
            // The pending dial resolved some other way (e.g. the peer dialed
            // us and the race collapsed onto their connection).
            return;
        };
        p.conn = None;
        if p.attempt < dial_retries {
            p.attempt += 1;
            let backoff = DIAL_BACKOFF * p.attempt;
            self.wheel.insert(
                Instant::now() + backoff,
                TimerEntry::RetryDial { node: v, peer: to },
            );
            return;
        }
        let p = state.pending.remove(&to).expect("pending dial");
        match p.intent {
            DialIntent::Bootstrap => self.fail_node(v, to, &err),
            DialIntent::Restart if p.frames.is_empty() => {}
            _ => {
                if self.cfg.fault_tolerant {
                    self.stats.add(Metric::FramesDropped, p.frames.len() as u64);
                } else {
                    self.fail_node(v, to, &err);
                }
            }
        }
    }

    /// Permanently fail node `v` and propagate the failure to every shard.
    fn fail_node(&mut self, v: NodeId, peer: NodeId, error: &io::Error) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        if state.failed.is_some() {
            return;
        }
        let failure = NetFailure {
            node: v,
            description: format!("failed to dial peer {peer}: {error}"),
        };
        self.stats.inc(Metric::DialFailures);
        state.journal.failures.push(failure.clone());
        // The waiting requests' queue() frames died with the failed dial: they
        // never entered the distributed queue, so they must not appear in the
        // reconstructed schedule (a scheduled request that no surviving node
        // ever queued would fail order validation as missing). Un-journal them
        // before the drain below fails their acquirers.
        let doomed: HashSet<(ObjectId, RequestId)> = state.waiting.keys().copied().collect();
        state
            .journal
            .issued
            .retain(|r| !doomed.contains(&(r.obj, r.id)));
        state
            .journal
            .records
            .retain(|rec| !doomed.contains(&(rec.obj, rec.successor)));
        enter_failed_state(state, failure.clone());
        for injector in self.peers.iter() {
            let _ = injector.send(ShardCmd::PeerFailed {
                failure: failure.clone(),
            });
        }
    }

    // ---- inbound I/O -------------------------------------------------------

    fn handle_accept(&mut self, idx: usize) {
        // Phase 1: drain the accept queue while the listener is borrowed.
        let (owner, streams) = {
            let (node, listener) = match self.slab[idx].src.as_ref().expect("occupied") {
                Source::Listener { node, listener } => (*node, listener),
                Source::Conn(_) => panic!("accept on a connection slot"),
            };
            let mut streams = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => streams.push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            (node, streams)
        };
        // Phase 2: register each accepted socket as an AwaitHello connection.
        for stream in streams {
            let refuse = self.shutting_down || self.nodes[&owner].crashed;
            if refuse {
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let (cidx, tok) = self.slab_insert(Source::Conn(Box::new(Conn {
                stream,
                node: owner,
                peer: None,
                dialed: false,
                state: ConnState::AwaitHello,
                buf: vec![0; RECV_BUF_INIT],
                start: 0,
                end: 0,
                out: SendBuf::new(),
                interest: (true, false),
                peer_closed: false,
                close_write_after_flush: false,
                write_closed: false,
                draining: false,
                in_flushq: false,
                last_read: Instant::now(),
            })));
            if self.poller.register(fd, tok, true, false).is_err() {
                self.slab_remove(cidx);
                continue;
            }
            self.wheel.insert(
                Instant::now() + HANDSHAKE_TIMEOUT,
                TimerEntry::ConnDeadline { token: tok },
            );
        }
    }

    fn handle_readable(&mut self, idx: usize) {
        if matches!(self.slab[idx].src, Some(Source::Listener { .. })) {
            self.handle_accept(idx);
            return;
        }
        if self.conn(idx).state == ConnState::Connecting {
            // Spurious (error-folded) readability; the writable handler owns
            // connect completion and error surfacing.
            return;
        }
        // Phase 1: pull bytes and scan frames, touching only the connection
        // and the stats handle (disjoint struct fields).
        let mut frames: Vec<Frame> = Vec::new();
        let mut ended: Option<io::Error> = None;
        {
            let stats = &self.stats;
            let c = match self.slab[idx].src.as_mut().expect("occupied") {
                Source::Conn(c) => c,
                Source::Listener { .. } => unreachable!(),
            };
            'reads: for _ in 0..READS_PER_EVENT {
                if c.start > 0 {
                    c.buf.copy_within(c.start..c.end, 0);
                    c.end -= c.start;
                    c.start = 0;
                }
                while c.buf.len() - c.end < 4 + MAX_FRAME_LEN as usize {
                    let double = c.buf.len() * 2;
                    c.buf.resize(double, 0);
                }
                match (&c.stream).read(&mut c.buf[c.end..]) {
                    Ok(0) => {
                        ended = Some(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed by peer",
                        ));
                        break 'reads;
                    }
                    Ok(n) => {
                        c.end += n;
                        c.last_read = Instant::now();
                        stats.inc(Metric::SocketReads);
                        stats.add(Metric::BytesReceived, n as u64);
                        loop {
                            match Frame::scan(&c.buf[c.start..c.end]) {
                                Ok(Some((frame, used))) => {
                                    c.start += used;
                                    let bye = matches!(frame, Frame::Goodbye);
                                    frames.push(frame);
                                    if bye {
                                        break 'reads;
                                    }
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    ended = Some(io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        "undecodable bytes on the wire",
                                    ));
                                    break 'reads;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'reads,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        ended = Some(e);
                        break 'reads;
                    }
                }
            }
        }
        if frames.is_empty() && ended.is_none() {
            return;
        }
        // Phase 2: run the frames through the handshake/protocol machinery.
        self.process_inbound(idx, frames, ended);
    }

    fn process_inbound(&mut self, idx: usize, frames: Vec<Frame>, ended: Option<io::Error>) {
        let tok = self.token_of(idx);
        for frame in frames {
            // Processing a frame can close this connection (protocol error,
            // dedupe collapse): stop feeding it if it died.
            if self.resolve(tok).is_none() {
                return;
            }
            let (state, v, peer) = {
                let c = self.conn(idx);
                (c.state, c.node, c.peer)
            };
            match state {
                ConnState::Connecting => {}
                ConnState::AwaitWelcome => match frame {
                    Frame::Welcome { node } if Some(node) == peer => self.promote(idx),
                    other => {
                        self.close_conn(
                            idx,
                            Some(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("expected Welcome during handshake, got {other:?}"),
                            )),
                        );
                        return;
                    }
                },
                ConnState::AwaitHello => match frame {
                    Frame::Hello { node } => {
                        if node >= self.addrs.len() {
                            self.stats.inc(Metric::UnexpectedFrames);
                            self.close_conn(idx, None);
                            return;
                        }
                        self.conn_mut(idx).peer = Some(node);
                        self.stage_frame(idx, &Frame::Welcome { node: v });
                        self.promote(idx);
                    }
                    _ => {
                        self.close_conn(idx, None);
                        return;
                    }
                },
                ConnState::Established => {
                    let from = peer.expect("established conn has a peer");
                    // While a dial race is unresolved, frames arriving on the
                    // winner are deferred behind the loser's drain so the
                    // per-link order (loser's in-flight frames first) holds.
                    let gated = self.nodes[&v]
                        .links
                        .get(&from)
                        .is_some_and(|l| l.conn == idx && l.loser.is_some());
                    if gated {
                        self.nodes
                            .get_mut(&v)
                            .expect("owned node")
                            .links
                            .get_mut(&from)
                            .expect("link")
                            .deferred
                            .push(frame);
                    } else if matches!(frame, Frame::Goodbye) {
                        self.on_goodbye(idx);
                    } else {
                        self.on_frame(v, from, frame);
                    }
                }
            }
        }
        if let Some(e) = ended {
            if self.resolve(tok).is_some() {
                self.close_conn(idx, Some(e));
            }
        }
    }

    /// A handshake completed on `idx`: install the connection as the node's
    /// link toward its peer, resolving any dial race deterministically.
    fn promote(&mut self, idx: usize) {
        let (v, peer, dialed) = {
            let c = self.conn_mut(idx);
            c.state = ConnState::Established;
            (c.node, c.peer.expect("peer known at promote"), c.dialed)
        };
        if dialed {
            self.stats.inc(Metric::ConnectionsDialed);
        } else {
            self.stats.inc(Metric::ConnectionsAccepted);
        }
        if self.nodes[&v].crashed {
            if let Source::Conn(c) = self.slab_remove(idx) {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
            return;
        }
        // Frames staged while dialing follow the surviving link, whichever
        // connection that turns out to be. A different still-handshaking dial
        // socket (if any) collapses on its own promote.
        let pending_frames = self
            .nodes
            .get_mut(&v)
            .expect("owned node")
            .pending
            .remove(&peer)
            .map(|p| p.frames);
        let old = self.nodes[&v].links.get(&peer).map(|l| l.conn);
        match old {
            None => {
                self.nodes.get_mut(&v).expect("owned node").links.insert(
                    peer,
                    Link {
                        conn: idx,
                        loser: None,
                        deferred: Vec::new(),
                    },
                );
            }
            Some(old_idx) => {
                // Simultaneous dial: both endpoints keep the connection
                // dialed by the lower node id, so they agree on the winner.
                self.stats.inc(Metric::DialRacesCollapsed);
                let old_dialed = self.conn(old_idx).dialed;
                let canon_dialer = v.min(peer);
                let new_dialer = if dialed { v } else { peer };
                let old_dialer = if old_dialed { v } else { peer };
                let new_wins = if (new_dialer == canon_dialer) != (old_dialer == canon_dialer) {
                    new_dialer == canon_dialer
                } else {
                    // Same direction twice (reconnect overtaking a stale
                    // link): the newest connection wins.
                    true
                };
                let (winner, loser) = if new_wins {
                    (idx, old_idx)
                } else {
                    (old_idx, idx)
                };
                let prev_loser = {
                    let link = self
                        .nodes
                        .get_mut(&v)
                        .expect("owned node")
                        .links
                        .get_mut(&peer)
                        .expect("link");
                    link.loser.take()
                };
                if let Some(pl) = prev_loser {
                    // A third connection raced in while an older loser was
                    // still draining: that drain is done being waited on.
                    let deferred = {
                        let link = self
                            .nodes
                            .get_mut(&v)
                            .expect("owned node")
                            .links
                            .get_mut(&peer)
                            .expect("link");
                        mem::take(&mut link.deferred)
                    };
                    self.replay_frames(v, peer, deferred);
                    if let Source::Conn(c) = self.slab_remove(pl) {
                        let _ = c.stream.shutdown(Shutdown::Both);
                    }
                }
                let link = self
                    .nodes
                    .get_mut(&v)
                    .expect("owned node")
                    .links
                    .get_mut(&peer)
                    .expect("link");
                link.conn = winner;
                link.loser = Some(loser);
                self.demote(loser);
            }
        }
        if let Some(frames) = pending_frames {
            let target = self.nodes[&v].links[&peer].conn;
            for frame in &frames {
                self.stage_frame(target, frame);
            }
        }
        self.update_interest(idx);
    }

    /// Start draining a dedupe-losing connection: flush and half-close its
    /// write side, keep reading until the peer closes or it idles out.
    fn demote(&mut self, loser: usize) {
        let tok = self.token_of(loser);
        let c = self.conn_mut(loser);
        c.draining = true;
        c.close_write_after_flush = true;
        if !c.in_flushq {
            c.in_flushq = true;
            self.flushq.push(tok);
        }
        self.wheel.insert(
            Instant::now() + DRAIN_GRACE,
            TimerEntry::ConnDeadline { token: tok },
        );
    }

    fn on_goodbye(&mut self, idx: usize) {
        let (v, peer) = {
            let c = self.conn_mut(idx);
            c.peer_closed = true;
            (c.node, c.peer.expect("established conn has a peer"))
        };
        self.unlink_established(v, peer, idx);
        self.maybe_reap(idx);
    }

    /// Detach connection `idx` from node `v`'s link toward `peer`, replaying
    /// any frames that were deferred behind it.
    fn unlink_established(&mut self, v: NodeId, peer: NodeId, idx: usize) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        let (was_live, was_loser) = match state.links.get(&peer) {
            Some(link) => (link.conn == idx, link.loser == Some(idx)),
            None => return,
        };
        let deferred = if was_live {
            // The live link went away; an unresolved loser (if any) lives on
            // as an orphan and reaps itself when its drain completes.
            state.links.remove(&peer).expect("link").deferred
        } else if was_loser {
            let link = state.links.get_mut(&peer).expect("link");
            link.loser = None;
            mem::take(&mut link.deferred)
        } else {
            return;
        };
        if !deferred.is_empty() {
            self.replay_frames(v, peer, deferred);
        }
    }

    /// Feed frames that were deferred behind a draining loser into the
    /// protocol as if they had just arrived from `peer`.
    fn replay_frames(&mut self, v: NodeId, peer: NodeId, frames: Vec<Frame>) {
        for frame in frames {
            if matches!(frame, Frame::Goodbye) {
                let live = self.nodes[&v].links.get(&peer).map(|l| l.conn);
                if let Some(idx) = live {
                    self.on_goodbye(idx);
                }
            } else {
                self.on_frame(v, peer, frame);
            }
        }
    }

    /// Drop a connection whose peer said Goodbye once its sendbuf is flushed.
    fn maybe_reap(&mut self, idx: usize) {
        let done = {
            let c = self.conn(idx);
            c.peer_closed && c.out.buf.is_empty()
        };
        if done {
            // Link bookkeeping already happened in on_goodbye.
            if let Source::Conn(c) = self.slab_remove(idx) {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// A protocol frame arrived at node `v` from `from`.
    fn on_frame(&mut self, v: NodeId, from: NodeId, frame: Frame) {
        let state = self.nodes.get_mut(&v).expect("owned node");
        if state.crashed {
            self.stats.inc(Metric::FramesDropped);
            return;
        }
        match frame {
            Frame::Proto(ProtoMsg::Queue {
                req,
                obj,
                origin,
                epoch,
            }) => {
                if origin >= self.addrs.len() {
                    self.stats.inc(Metric::UnexpectedFrames);
                    return;
                }
                state
                    .core
                    .on_queue(from, obj, req, origin, epoch, &mut state.actions);
            }
            Frame::Token { obj, req, epoch } => {
                state.core.on_token(obj, req, epoch, &mut state.actions);
            }
            Frame::Proto(ProtoMsg::Epoch { epoch }) => {
                let before = state.core.epoch();
                state.core.on_epoch(epoch, &mut state.actions);
                if state.core.epoch() > before {
                    self.stats.inc(Metric::EpochsAdopted);
                }
            }
            _ => {
                self.stats.inc(Metric::UnexpectedFrames);
                return;
            }
        }
        self.mark_dirty(v);
    }

    // ---- outbound I/O ------------------------------------------------------

    fn handle_writable(&mut self, idx: usize) {
        if self.conn(idx).state == ConnState::Connecting {
            match netpoll::take_socket_error(&self.conn(idx).stream) {
                Ok(None) => {
                    let v = {
                        let c = self.conn_mut(idx);
                        let _ = c.stream.set_nodelay(true);
                        c.state = ConnState::AwaitWelcome;
                        c.node
                    };
                    self.stage_frame(idx, &Frame::Hello { node: v });
                    self.update_interest(idx);
                }
                Ok(Some(e)) | Err(e) => self.close_conn(idx, Some(e)),
            }
            return;
        }
        self.flush_conn(idx);
    }

    fn flush_conn(&mut self, idx: usize) {
        let outcome = {
            let stats = &self.stats;
            let c = match self.slab[idx].src.as_mut().expect("occupied") {
                Source::Conn(c) => c,
                Source::Listener { .. } => unreachable!(),
            };
            if c.write_closed {
                c.out.buf.clear();
                c.out.written = 0;
                c.out.frames = 0;
                FlushOutcome::Done
            } else {
                flush_send_buf(c, stats)
            }
        };
        match outcome {
            FlushOutcome::Done => {
                let c = self.conn_mut(idx);
                if c.close_write_after_flush && !c.write_closed {
                    let _ = c.stream.shutdown(Shutdown::Write);
                    c.write_closed = true;
                }
                self.update_interest(idx);
                self.maybe_reap(idx);
            }
            FlushOutcome::Blocked => self.update_interest(idx),
            FlushOutcome::Dead(e) => self.close_conn(idx, Some(e)),
        }
    }

    /// Re-register the poller interest to match what the connection needs
    /// right now (level-triggered epoll: a stale EPOLLOUT would busy-loop).
    fn update_interest(&mut self, idx: usize) {
        let tok = self.token_of(idx);
        let (fd, want, have) = {
            let c = self.conn(idx);
            let want = if c.state == ConnState::Connecting {
                (false, true)
            } else {
                (!c.peer_closed, !c.out.buf.is_empty())
            };
            (c.stream.as_raw_fd(), want, c.interest)
        };
        if want != have && self.poller.modify(fd, tok, want.0, want.1).is_ok() {
            self.conn_mut(idx).interest = want;
        }
    }

    /// Tear down connection `idx`, propagating the failure according to its
    /// handshake state.
    fn close_conn(&mut self, idx: usize, err: Option<io::Error>) {
        let src = self.slab_remove(idx);
        let Source::Conn(c) = src else {
            panic!("close_conn on a listener slot");
        };
        let _ = c.stream.shutdown(Shutdown::Both);
        match c.state {
            ConnState::Connecting | ConnState::AwaitWelcome => {
                if !self.shutting_down {
                    if let Some(to) = c.peer {
                        let e = err.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                "connection closed during handshake",
                            )
                        });
                        self.dial_failed(c.node, to, e);
                    }
                }
            }
            // An acceptor that never identified itself needs no bookkeeping.
            ConnState::AwaitHello => {}
            ConnState::Established => {
                let peer = c.peer.expect("established conn has a peer");
                self.unlink_established(c.node, peer, idx);
            }
        }
    }

    // ---- timers ------------------------------------------------------------

    fn handle_timer(&mut self, entry: TimerEntry) {
        match entry {
            TimerEntry::FlushFrame {
                node,
                peer,
                frame,
                due,
            } => {
                let dwell = Instant::now().saturating_duration_since(due);
                self.stats
                    .observe(HistMetric::TimerDwellNanos, dwell.as_nanos() as u64);
                self.deliver_frame(node, peer, frame);
            }
            TimerEntry::RetryDial { node, peer } => {
                if self.shutting_down {
                    return;
                }
                let state = self.nodes.get_mut(&node).expect("owned node");
                if state.crashed || state.failed.is_some() {
                    state.pending.remove(&peer);
                    return;
                }
                if state.pending.get(&peer).is_some_and(|p| p.conn.is_none()) {
                    self.dial_now(node, peer);
                }
            }
            TimerEntry::ConnDeadline { token } => {
                let Some(idx) = self.resolve(token) else {
                    return;
                };
                let state = self.conn(idx).state;
                match state {
                    ConnState::Connecting | ConnState::AwaitWelcome | ConnState::AwaitHello => {
                        self.close_conn(
                            idx,
                            Some(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "handshake timed out",
                            )),
                        );
                    }
                    ConnState::Established => {
                        let c = self.conn(idx);
                        if c.draining || c.close_write_after_flush {
                            if c.last_read.elapsed() >= DRAIN_IDLE {
                                self.close_conn(idx, None);
                            } else {
                                self.wheel.insert(
                                    Instant::now() + DRAIN_IDLE,
                                    TimerEntry::ConnDeadline { token },
                                );
                            }
                        }
                        // A healthy established conn simply outlived its
                        // handshake deadline; nothing to do.
                    }
                }
            }
            TimerEntry::ShutdownDeadline => self.shutdown_forced = true,
        }
    }

    // ---- shutdown ----------------------------------------------------------

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        // 1. Deliver every latency-delayed frame immediately so the protocol
        //    quiesces with nothing stuck in the wheel.
        let mut entries = Vec::new();
        self.wheel.drain_all(&mut entries);
        debug_assert!(self.wheel.is_empty(), "drain_all empties the wheel");
        for (_, entry) in entries {
            if let TimerEntry::FlushFrame {
                node,
                peer,
                frame,
                due,
            } = entry
            {
                let dwell = Instant::now().saturating_duration_since(due);
                self.stats
                    .observe(HistMetric::TimerDwellNanos, dwell.as_nanos() as u64);
                self.deliver_frame(node, peer, frame);
            }
        }
        // 2. Stop accepting and abandon half-done handshakes.
        let stale: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter(|(_, e)| match &e.src {
                Some(Source::Listener { .. }) => true,
                Some(Source::Conn(c)) => c.state != ConnState::Established,
                None => false,
            })
            .map(|(i, _)| i)
            .collect();
        for idx in stale {
            if let Source::Conn(c) = self.slab_remove(idx) {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        for state in self.nodes.values_mut() {
            state.pending.clear();
        }
        // 3. Say Goodbye on every live link and half-close once flushed.
        let live: Vec<usize> = self
            .nodes
            .values()
            .flat_map(|n| n.links.values().map(|l| l.conn))
            .collect();
        for idx in live {
            self.stage_frame(idx, &Frame::Goodbye);
            self.conn_mut(idx).close_write_after_flush = true;
        }
        // 4. Whatever is left after the grace period gets cut.
        self.wheel.insert(
            Instant::now() + SHUTDOWN_GRACE,
            TimerEntry::ShutdownDeadline,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrow_trace::NoProbe;
    use netgraph::generators;

    /// A [`ReactorShared`] for a tiny hand-driven mesh.
    fn shared_for(tree: RootedTree, addrs: Vec<SocketAddr>) -> ReactorShared {
        ReactorShared {
            cfg: NetConfig::instant(),
            tree: Arc::new(tree),
            addrs: Arc::new(addrs),
            stats: Arc::new(NetStats::default()),
            blocked: Arc::new(Mutex::new(HashSet::new())),
            faults_armed: Arc::new(AtomicBool::new(false)),
            epoch0: Instant::now(),
        }
    }

    /// Read frames off a blocking socket until `want` have been scanned out.
    fn read_frames(stream: &mut TcpStream, want: usize) -> Vec<Frame> {
        let mut got = Vec::new();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 1024];
        while got.len() < want {
            while let Some((frame, used)) = Frame::scan(&buf).expect("valid frame bytes") {
                buf.drain(..used);
                got.push(frame);
            }
            if got.len() >= want {
                break;
            }
            let n = stream.read(&mut tmp).expect("read within timeout");
            assert!(n > 0, "peer closed after {} of {want} frames", got.len());
            buf.extend_from_slice(&tmp[..n]);
        }
        got
    }

    /// A frame dribbled in over several readiness events must reassemble: a
    /// fake peer splits its `Hello` across two delayed writes and then feeds a
    /// `queue()` frame one byte at a time. The shard has to buffer the partial
    /// prefixes, scan each frame exactly once it completes, and answer with
    /// `Welcome` and the token grant as if the bytes had arrived whole.
    #[test]
    fn partial_frames_reassemble_across_readiness_events() {
        let tree = RootedTree::from_tree_graph(&generators::path(2), 0);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr0 = listener.local_addr().expect("listener addr");
        // Node 1 is played by this test over a plain blocking socket; its
        // address is never dialed.
        let addrs = vec![addr0, "127.0.0.1:1".parse().expect("addr literal")];
        let shared = shared_for(tree, addrs);
        let core = ArrowCore::for_tree_with_probe(0, &shared.tree, 1, NoProbe);
        let (injectors, threads) = spawn_shards(&shared, vec![vec![(0, core, listener)]]);

        let mut peer = TcpStream::connect(addr0).expect("dial the shard");
        peer.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        peer.set_nodelay(true).expect("nodelay");

        // Handshake: Hello split across two kernel-visible writes.
        let hello = Frame::Hello { node: 1 }.encode();
        peer.write_all(&hello[..2]).expect("hello prefix");
        peer.flush().expect("flush prefix");
        std::thread::sleep(Duration::from_millis(40));
        peer.write_all(&hello[2..]).expect("hello suffix");
        assert_eq!(
            read_frames(&mut peer, 1),
            vec![Frame::Welcome { node: 0 }],
            "acceptor must answer the reassembled Hello"
        );

        // A queue() for the root's token, one byte per write.
        let queue = Frame::Proto(ProtoMsg::Queue {
            req: RequestId(7),
            obj: ObjectId(0),
            origin: 1,
            epoch: 0,
        })
        .encode();
        for byte in &queue {
            peer.write_all(std::slice::from_ref(byte)).expect("dribble");
            peer.flush().expect("flush byte");
            std::thread::sleep(Duration::from_millis(2));
        }
        let token = read_frames(&mut peer, 1);
        assert!(
            matches!(
                token[0],
                Frame::Token {
                    obj: ObjectId(0),
                    req: RequestId(7),
                    ..
                }
            ),
            "the dribbled queue() must win the root token, got {token:?}"
        );

        let goodbye = Frame::Goodbye.encode();
        peer.write_all(&goodbye).expect("goodbye");

        // Every dribbled byte must land before shutdown: poll the shared
        // counters until the receive side accounts for all three frames.
        let sent = (hello.len() + queue.len() + goodbye.len()) as u64;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = shared.stats.snapshot();
            if snap.bytes_received == sent {
                assert_eq!(snap.unexpected_frames, 0);
                assert_eq!(snap.connections_accepted, 1);
                assert!(
                    snap.socket_reads >= 3,
                    "dribbled writes must arrive across separate readiness events, \
                     saw {} reads",
                    snap.socket_reads
                );
                break;
            }
            assert!(
                Instant::now() < deadline,
                "reactor never scanned the dribbled bytes: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        drop(peer);
        assert!(injectors[0].send(ShardCmd::Shutdown));
        for t in threads {
            t.join().expect("shard joins");
        }
    }

    /// EPOLLOUT backpressure: with nobody reading, staged frames must fill the
    /// kernel send buffer until `flush_send_buf` reports [`FlushOutcome::Blocked`]
    /// (counting a `WouldBlock` retry) instead of spinning or dropping bytes;
    /// once the slow reader drains, the flush resumes and every staged frame
    /// arrives intact and in order.
    #[test]
    fn backpressure_flush_blocks_then_drains_without_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("listener addr");
        let writer = TcpStream::connect(addr).expect("dial");
        writer.set_nonblocking(true).expect("nonblocking writer");
        let (reader, _) = listener.accept().expect("accept");

        let stats = NetStats::default();
        let mut conn = Conn {
            stream: writer,
            node: 0,
            peer: Some(1),
            dialed: true,
            state: ConnState::Established,
            buf: vec![0; RECV_BUF_INIT],
            start: 0,
            end: 0,
            out: SendBuf::new(),
            interest: (true, false),
            peer_closed: false,
            close_write_after_flush: false,
            write_closed: false,
            draining: false,
            in_flushq: false,
            last_read: Instant::now(),
        };

        let frame = Frame::Token {
            obj: ObjectId(0),
            req: RequestId(1),
            epoch: 0,
        };
        let frame_len = frame.encode().len() as u64;
        let mut staged: u64 = 0;
        let mut blocked = false;
        // Stage batches until the kernel buffer fills; 512 * 4096 frames is far
        // beyond any autotuned loopback send buffer.
        for _ in 0..512 {
            for _ in 0..4096 {
                conn.out.stage(&frame);
                staged += 1;
            }
            match flush_send_buf(&mut conn, &stats) {
                FlushOutcome::Blocked => {
                    blocked = true;
                    break;
                }
                FlushOutcome::Done => continue,
                FlushOutcome::Dead(e) => panic!("healthy loopback socket died: {e}"),
            }
        }
        assert!(blocked, "the unread socket never exerted backpressure");
        assert!(stats.snapshot().would_block_retries >= 1);

        // Slow reader starts draining only after the writer is already blocked.
        let drainer = std::thread::spawn(move || {
            let mut reader = reader;
            let mut buf: Vec<u8> = Vec::new();
            let mut tmp = [0u8; 64 * 1024];
            let mut bytes: u64 = 0;
            let mut frames: u64 = 0;
            loop {
                let n = reader.read(&mut tmp).expect("drain read");
                if n == 0 {
                    break;
                }
                bytes += n as u64;
                buf.extend_from_slice(&tmp[..n]);
                let mut used_total = 0;
                while let Some((frame, used)) =
                    Frame::scan(&buf[used_total..]).expect("staged bytes stay well-framed")
                {
                    assert!(matches!(frame, Frame::Token { .. }));
                    frames += 1;
                    used_total += used;
                }
                buf.drain(..used_total);
            }
            assert!(buf.is_empty(), "trailing partial frame after EOF");
            (bytes, frames)
        });

        // Re-flush until the drained socket accepts the backlog.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match flush_send_buf(&mut conn, &stats) {
                FlushOutcome::Done => break,
                FlushOutcome::Blocked => {
                    assert!(Instant::now() < deadline, "flush never completed");
                    std::thread::sleep(Duration::from_millis(1));
                }
                FlushOutcome::Dead(e) => panic!("healthy loopback socket died: {e}"),
            }
        }
        conn.stream
            .shutdown(Shutdown::Write)
            .expect("half-close after flush");
        let (bytes, frames) = drainer.join().expect("drainer joins");

        let snap = stats.snapshot();
        assert_eq!(frames, staged, "every staged frame arrived exactly once");
        assert_eq!(bytes, staged * frame_len);
        assert_eq!(snap.bytes_sent, bytes, "sender accounting matches the wire");
        assert_eq!(snap.frames_sent, staged);
        assert!(
            snap.socket_writes >= 2,
            "a blocked flush must take more than one write syscall"
        );
    }
}
