//! The arrow-net wire format: a compact hand-rolled binary codec for protocol and
//! control frames.
//!
//! Every frame on a socket is length-prefixed and carries a versioned header, so a
//! peer can reject traffic from a different protocol revision (or random garbage)
//! before interpreting a single payload byte:
//!
//! ```text
//! [len: u32 LE]  [magic: u8 = 0xA7]  [version: u8]  [kind: u8]  [payload ...]
//!  └ bytes after the prefix ┘
//! ```
//!
//! Payload fields are fixed-width little-endian integers: request ids are `u64`,
//! object ids `u32`, node ids `u32` (a directory with more than `u32::MAX` nodes is
//! far beyond this runtime's ambitions; encoding checks the bound). The codec does
//! not depend on the serde shim's encoding — it *is* the interchange format, byte
//! stable across builds, and every frame's payload length is checked exactly
//! ([`WireError::TrailingBytes`] rejects over-long payloads rather than ignoring
//! them).
//!
//! [`Frame`] covers the full [`ProtoMsg`] surface (so centralized-baseline traffic
//! can share the codec) plus the control frames the mesh needs: the `Hello`/`Welcome`
//! join handshake, the `Goodbye` shutdown notice, and the `Token` grant that moves an
//! object's exclusion token between peers.

use arrow_core::prelude::{ObjectId, ProtoMsg, RequestId};
use netgraph::NodeId;
use std::io::{Read, Write};

/// First byte of every frame after the length prefix.
pub const WIRE_MAGIC: u8 = 0xA7;

/// Wire protocol revision. Bump on any layout change; peers reject mismatches.
/// Version 2 added the recovery-epoch stamp to `Queue`, `Found` and `Token`
/// frames and the `Epoch` detection broadcast.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on the length prefix. Arrow frames are tiny (≤ 35 bytes today); any
/// larger claim is a corrupt or hostile stream and is rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 256;

mod kind {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const GOODBYE: u8 = 0x03;
    pub const ISSUE: u8 = 0x10;
    pub const QUEUE: u8 = 0x11;
    pub const FOUND: u8 = 0x12;
    pub const CENTRAL_ENQUEUE: u8 = 0x13;
    pub const CENTRAL_REPLY: u8 = 0x14;
    pub const EPOCH: u8 = 0x15;
    pub const TOKEN: u8 = 0x20;
}

/// One unit of traffic between two peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame {
    /// Join handshake, dialer → accepter: "I am node `node`".
    Hello {
        /// The dialing node's id.
        node: NodeId,
    },
    /// Join handshake, accepter → dialer: "and I am node `node`".
    Welcome {
        /// The accepting node's id.
        node: NodeId,
    },
    /// Clean shutdown notice: no further frames will be sent on this connection.
    Goodbye,
    /// A queuing-protocol message (shared with the simulator tier).
    Proto(ProtoMsg),
    /// Object `obj`'s exclusion token, granting request `req` (the socket analogue of
    /// the thread runtime's token transfer), stamped with the sender's recovery
    /// epoch — a stale-epoch token is a ghost from before a regeneration and is
    /// rejected on receipt.
    Token {
        /// Object whose token moves.
        obj: ObjectId,
        /// The request being granted.
        req: RequestId,
        /// Recovery epoch the token belongs to.
        epoch: u64,
    },
}

/// Why a byte sequence is not a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer or stream ended before the frame was complete.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The first header byte is not [`WIRE_MAGIC`].
    BadMagic(u8),
    /// The peer speaks a different wire revision.
    UnsupportedVersion(u8),
    /// Unknown frame kind tag.
    UnknownKind(u8),
    /// The payload is longer than the frame kind's layout allows.
    TrailingBytes {
        /// The frame kind whose payload overflowed.
        kind: u8,
        /// How many unexpected extra bytes followed the payload.
        extra: usize,
    },
    /// An I/O error while reading from a stream.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::FrameTooLarge(len) => {
                write!(
                    f,
                    "length prefix {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
                )
            }
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::TrailingBytes { kind, extra } => {
                write!(f, "{extra} trailing bytes after frame kind {kind:#04x}")
            }
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_node(out: &mut Vec<u8>, v: NodeId) {
    let v = u32::try_from(v).expect("node id exceeds the u32 wire range");
    put_u32(out, v);
}

/// A cursor over a frame payload with exact-length accounting.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Payload { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let end = self.pos.checked_add(N).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        // `slice` has exactly N bytes by construction; map the impossible
        // mismatch into the error path rather than panicking in the decoder.
        slice.try_into().map_err(|_| WireError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(self.u32()? as NodeId)
    }

    fn finish(self, kind: u8) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                kind,
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => kind::HELLO,
            Frame::Welcome { .. } => kind::WELCOME,
            Frame::Goodbye => kind::GOODBYE,
            Frame::Proto(ProtoMsg::Issue { .. }) => kind::ISSUE,
            Frame::Proto(ProtoMsg::Queue { .. }) => kind::QUEUE,
            Frame::Proto(ProtoMsg::Found { .. }) => kind::FOUND,
            Frame::Proto(ProtoMsg::CentralEnqueue { .. }) => kind::CENTRAL_ENQUEUE,
            Frame::Proto(ProtoMsg::CentralReply { .. }) => kind::CENTRAL_REPLY,
            Frame::Proto(ProtoMsg::Epoch { .. }) => kind::EPOCH,
            Frame::Token { .. } => kind::TOKEN,
        }
    }

    /// Encode the frame, including its length prefix, into a fresh buffer.
    ///
    /// # Panics
    /// If a node id exceeds `u32::MAX` (the wire range).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Append the frame's wire encoding (length prefix included) to `out`,
    /// leaving existing bytes in place. This is the zero-allocation encode path:
    /// the writer keeps one reusable buffer per link and appends every frame of a
    /// coalesced batch before a single `write_all`, so steady-state encoding
    /// performs no heap allocation at all.
    ///
    /// # Panics
    /// If a node id exceeds `u32::MAX` (the wire range).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let base = out.len();
        out.extend_from_slice(&[0, 0, 0, 0]); // length prefix, patched below
        out.push(WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.kind());
        match *self {
            Frame::Hello { node } | Frame::Welcome { node } => put_node(out, node),
            Frame::Goodbye => {}
            Frame::Proto(ProtoMsg::Issue { req, obj }) => {
                put_u64(out, req.0);
                put_u32(out, obj.0);
            }
            Frame::Proto(ProtoMsg::Queue {
                req,
                obj,
                origin,
                epoch,
            }) => {
                put_u64(out, req.0);
                put_u32(out, obj.0);
                put_node(out, origin);
                put_u64(out, epoch);
            }
            Frame::Proto(ProtoMsg::CentralEnqueue { req, obj, origin }) => {
                put_u64(out, req.0);
                put_u32(out, obj.0);
                put_node(out, origin);
            }
            Frame::Proto(ProtoMsg::Found {
                req,
                obj,
                pred,
                epoch,
            }) => {
                put_u64(out, req.0);
                put_u32(out, obj.0);
                put_u64(out, pred.0);
                put_u64(out, epoch);
            }
            Frame::Proto(ProtoMsg::CentralReply { req, obj, pred }) => {
                put_u64(out, req.0);
                put_u32(out, obj.0);
                put_u64(out, pred.0);
            }
            Frame::Proto(ProtoMsg::Epoch { epoch }) => put_u64(out, epoch),
            Frame::Token { obj, req, epoch } => {
                put_u32(out, obj.0);
                put_u64(out, req.0);
                put_u64(out, epoch);
            }
        }
        let len = (out.len() - base - 4) as u32;
        debug_assert!(len <= MAX_FRAME_LEN);
        out[base..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Decode one frame from the front of `buf`. Returns the frame and the number of
    /// bytes consumed (length prefix included).
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        let prefix: [u8; 4] = buf
            .get(..4)
            .ok_or(WireError::Truncated)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let total = 4 + len as usize;
        let body = buf.get(4..total).ok_or(WireError::Truncated)?;
        let frame = Frame::decode_body(body)?;
        Ok((frame, total))
    }

    /// Decode a frame body (everything after the length prefix).
    fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut p = Payload::new(body);
        let [magic] = p.take::<1>()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let [version] = p.take::<1>()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let [kind] = p.take::<1>()?;
        let frame = match kind {
            kind::HELLO => Frame::Hello { node: p.node()? },
            kind::WELCOME => Frame::Welcome { node: p.node()? },
            kind::GOODBYE => Frame::Goodbye,
            kind::ISSUE => Frame::Proto(ProtoMsg::Issue {
                req: RequestId(p.u64()?),
                obj: ObjectId(p.u32()?),
            }),
            kind::QUEUE => Frame::Proto(ProtoMsg::Queue {
                req: RequestId(p.u64()?),
                obj: ObjectId(p.u32()?),
                origin: p.node()?,
                epoch: p.u64()?,
            }),
            kind::FOUND => Frame::Proto(ProtoMsg::Found {
                req: RequestId(p.u64()?),
                obj: ObjectId(p.u32()?),
                pred: RequestId(p.u64()?),
                epoch: p.u64()?,
            }),
            kind::CENTRAL_ENQUEUE => Frame::Proto(ProtoMsg::CentralEnqueue {
                req: RequestId(p.u64()?),
                obj: ObjectId(p.u32()?),
                origin: p.node()?,
            }),
            kind::CENTRAL_REPLY => Frame::Proto(ProtoMsg::CentralReply {
                req: RequestId(p.u64()?),
                obj: ObjectId(p.u32()?),
                pred: RequestId(p.u64()?),
            }),
            kind::EPOCH => Frame::Proto(ProtoMsg::Epoch { epoch: p.u64()? }),
            kind::TOKEN => Frame::Token {
                obj: ObjectId(p.u32()?),
                req: RequestId(p.u64()?),
                epoch: p.u64()?,
            },
            other => return Err(WireError::UnknownKind(other)),
        };
        p.finish(kind)?;
        Ok(frame)
    }

    /// Write the frame to a stream. Returns the number of bytes written.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<usize> {
        let bytes = self.encode();
        w.write_all(&bytes)?;
        Ok(bytes.len())
    }

    /// Scan one frame out of the front of a growing receive buffer.
    ///
    /// Unlike [`Frame::decode`], an *incomplete* frame (the length prefix or the
    /// declared payload has not fully arrived yet) is `Ok(None)` — the caller
    /// should read more bytes and try again — while a frame that is complete but
    /// malformed is a hard error. This is the distinction the batched reader
    /// needs: it reads whole kernel buffers at a time and decodes every complete
    /// frame out of its scratch buffer, so "not enough bytes yet" is routine and
    /// must not be confused with corruption.
    pub fn scan(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        let Some(prefix) = buf.get(..4) else {
            return Ok(None);
        };
        let prefix: [u8; 4] = prefix.try_into().map_err(|_| WireError::Truncated)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let total = 4 + len as usize;
        let Some(body) = buf.get(4..total) else {
            return Ok(None);
        };
        Ok(Some((Frame::decode_body(body)?, total)))
    }

    /// Read exactly one frame from a stream (blocking until it is complete).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode_body(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_control_frame() {
        for frame in [
            Frame::Hello { node: 0 },
            Frame::Welcome {
                node: 4_000_000_000usize,
            },
            Frame::Goodbye,
            Frame::Token {
                obj: ObjectId(u32::MAX),
                req: RequestId(u64::MAX),
                epoch: 0,
            },
        ] {
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn roundtrip_every_proto_variant() {
        let req = RequestId(0x0123_4567_89AB_CDEF);
        let obj = ObjectId(7);
        for msg in [
            ProtoMsg::Issue { req, obj },
            ProtoMsg::Queue {
                req,
                obj,
                origin: 42,
                epoch: 0,
            },
            ProtoMsg::Found {
                req,
                obj,
                pred: RequestId::ROOT,
                epoch: 0,
            },
            ProtoMsg::CentralEnqueue {
                req,
                obj,
                origin: 0,
            },
            ProtoMsg::CentralReply {
                req,
                obj,
                pred: RequestId(1),
            },
            ProtoMsg::Epoch { epoch: 0xDEAD_BEEF },
        ] {
            let frame = Frame::Proto(msg);
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = [
            Frame::Hello { node: 3 },
            Frame::Proto(ProtoMsg::Queue {
                req: RequestId(9),
                obj: ObjectId(1),
                origin: 3,
                epoch: 0,
            }),
            Frame::Token {
                obj: ObjectId(1),
                req: RequestId(9),
                epoch: 0,
            },
            Frame::Goodbye,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), *f);
        }
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err(),
            WireError::Truncated,
            "clean EOF at a frame boundary reads as truncation"
        );
    }

    #[test]
    fn encode_into_appends_without_disturbing_earlier_frames() {
        let mut buf = Vec::new();
        let frames = [
            Frame::Hello { node: 3 },
            Frame::Token {
                obj: ObjectId(1),
                req: RequestId(9),
                epoch: 0,
            },
            Frame::Goodbye,
        ];
        for f in &frames {
            f.encode_into(&mut buf);
        }
        let mut at = 0;
        for f in &frames {
            let (decoded, used) = Frame::decode(&buf[at..]).unwrap();
            assert_eq!(decoded, *f);
            at += used;
        }
        assert_eq!(at, buf.len(), "no stray bytes between coalesced frames");
    }

    #[test]
    fn scan_distinguishes_incomplete_from_malformed() {
        let bytes = Frame::Hello { node: 7 }.encode();
        // Every strict prefix is "not yet": more bytes may complete it.
        for cut in 0..bytes.len() {
            assert_eq!(Frame::scan(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
        // The complete frame scans out with its exact length.
        let (frame, used) = Frame::scan(&bytes).unwrap().unwrap();
        assert_eq!(frame, Frame::Hello { node: 7 });
        assert_eq!(used, bytes.len());
        // A complete frame whose payload is short for its kind is corruption,
        // not "need more data" — waiting for more bytes would hang the link.
        let mut short = Frame::Hello { node: 7 }.encode();
        short.truncate(short.len() - 1);
        let len = (short.len() - 4) as u32;
        short[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(Frame::scan(&short).unwrap_err(), WireError::Truncated);
        // An oversized length prefix is rejected before any allocation.
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::scan(&huge).unwrap_err(),
            WireError::FrameTooLarge(u32::MAX)
        );
    }

    #[test]
    fn scan_walks_a_coalesced_batch() {
        let frames = [
            Frame::Proto(ProtoMsg::Queue {
                req: RequestId(5),
                obj: ObjectId(0),
                origin: 2,
                epoch: 0,
            }),
            Frame::Token {
                obj: ObjectId(0),
                req: RequestId(5),
                epoch: 0,
            },
            Frame::Goodbye,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.encode_into(&mut buf);
        }
        // Append a partial fourth frame: the scan must stop cleanly before it.
        let tail = Frame::Hello { node: 1 }.encode();
        buf.extend_from_slice(&tail[..5]);
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((frame, used)) = Frame::scan(&buf[at..]).unwrap() {
            seen.push(frame);
            at += used;
        }
        assert_eq!(seen, frames);
        assert_eq!(buf.len() - at, 5, "partial frame left in the buffer");
    }

    #[test]
    fn bad_magic_version_kind_are_rejected() {
        let good = Frame::Goodbye.encode();
        let mut bad_magic = good.clone();
        bad_magic[4] = 0x00;
        assert_eq!(
            Frame::decode(&bad_magic).unwrap_err(),
            WireError::BadMagic(0x00)
        );
        let mut bad_version = good.clone();
        bad_version[5] = WIRE_VERSION + 1;
        assert_eq!(
            Frame::decode(&bad_version).unwrap_err(),
            WireError::UnsupportedVersion(WIRE_VERSION + 1)
        );
        let mut bad_kind = good;
        bad_kind[6] = 0xEE;
        assert_eq!(
            Frame::decode(&bad_kind).unwrap_err(),
            WireError::UnknownKind(0xEE)
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::FrameTooLarge(u32::MAX)
        );
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut bytes = Frame::Hello { node: 1 }.encode();
        bytes.push(0xFF);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::TrailingBytes {
                kind: 0x01,
                extra: 1
            }
        );
    }
}
