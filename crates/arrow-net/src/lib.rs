//! # arrow-net — the arrow directory protocol over real sockets
//!
//! The third and most realistic of the repository's three execution tiers:
//!
//! 1. **Simulator** (`arrow-core::run` on [`desim`]) — deterministic discrete-event
//!    runs, millions of requests, the measurement tool.
//! 2. **Threads** (`arrow-core::live`) — one OS thread per node over in-process
//!    mpsc channels, the concurrency demonstration.
//! 3. **Sockets** (this crate) — each node is a process-independent peer whose
//!    *only* protocol channel is loopback TCP. Throughput here pays for real
//!    serialization, framing, kernel round-trips and (optionally) injected link
//!    latency — the per-message cost that the paper's Section 5 experiment runs on
//!    real processors to expose.
//!
//! All three tiers execute the same per-node state machine: the simulator's
//! [`arrow_core::arrow`] automaton and the shared [`arrow_core::live::ArrowCore`]
//! core that this crate and the thread runtime both consume.
//!
//! ## Architecture
//!
//! * [`wire`] — a compact hand-rolled binary codec: length-prefixed, versioned
//!   frames for every [`arrow_core::prelude::ProtoMsg`] variant plus the mesh's
//!   control frames (`Hello`/`Welcome` join handshake, `Goodbye` shutdown, `Token`
//!   grants). No serde involved; the bytes are the contract. Encoding appends into
//!   pooled buffers ([`Frame::encode_into`]); decoding scans complete frames out
//!   of a growing receive buffer ([`Frame::scan`]).
//! * [`mesh`] — mesh policy: the [`NetConfig`] knobs (latency model, dial
//!   retries, reactor [`mesh::NetConfig::shards`]), the per-link latency law
//!   (tree distance × [`mesh::NetConfig::unit_latency`], scaled by the seeded
//!   async factor in the asynchronous model, FIFO-preserving — the same law as
//!   a simulator run), the shared [`NetStats`] counters, and the blocking dial
//!   helpers external tooling uses.
//! * `reactor` (internal) — the event-driven socket engine: nodes are
//!   partitioned across a small pool of shard threads, each running one `epoll`
//!   loop (via the `netpoll` shim) over the nonblocking listeners and
//!   connections of its nodes. Handshakes are nonblocking state machines,
//!   simultaneous-dial races collapse onto one canonical connection per peer
//!   pair, injected latency rides a per-shard timer wheel whose next deadline
//!   doubles as the `epoll_wait` timeout, and every flush coalesces a link's
//!   staged frames into a single `write` syscall. Thread count is O(shards),
//!   not O(nodes) — a single process hosts ≥1024 nodes.
//! * [`runtime`] — the [`NetRuntime`]: spawn/shutdown over the shard pool,
//!   application-facing [`NetHandle`]s with blocking *and* pipelined
//!   `acquire`/`release` per object ([`NetHandle::start_acquire_object`],
//!   [`Grant`] routing for open-loop drivers), and a shutdown [`NetReport`] whose
//!   per-object queuing orders validate through the same machinery as the
//!   simulator harness.
//!
//! ## Quick example
//!
//! ```
//! use arrow_net::{NetConfig, NetRuntime};
//! use netgraph::{generators, RootedTree};
//!
//! let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(7), 0);
//! let rt = NetRuntime::spawn_multi(&tree, 2, NetConfig::instant());
//! let handle = rt.handle(6);
//! let req = handle.acquire(); // queue() frames travel real TCP sockets
//! handle.release(req);
//! let report = rt.shutdown();
//! assert_eq!(report.stats().acquisitions, 1);
//! assert!(report.validated_orders().is_ok());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod mesh;
mod reactor;
pub mod runtime;
mod wheel;
pub mod wire;

pub use mesh::{dial_with_budget, NetConfig, NetStats, NetStatsSnapshot};
pub use runtime::{
    Grant, NetFailure, NetFaultHandle, NetHandle, NetReport, NetRuntime, PendingAcquire,
};
pub use wire::{Frame, WireError, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION};
