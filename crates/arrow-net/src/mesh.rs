//! The peer mesh: loopback TCP connections, join/shutdown handshakes, and per-link
//! latency injection.
//!
//! Topology is deliberately sparse: the mesh materializes only the spanning-tree
//! edges (dialed eagerly at bootstrap — every non-root node dials its parent), plus
//! *direct token channels* dialed lazily the first time one node grants a token to a
//! non-neighbour. This mirrors the protocol's traffic pattern exactly: `queue()`
//! messages travel tree edges only, while token grants jump straight to the granted
//! request's origin (the socket analogue of the simulator's direct-ack sends).
//!
//! Every connection starts with a `Hello`/`Welcome` handshake so each side knows the
//! peer's node id, and ends with a `Goodbye` notice at shutdown. Each established
//! connection gets two service threads per endpoint:
//!
//! * a **reader** that decodes frames off the socket and forwards them to the node's
//!   event loop, and
//! * a **delay-queue writer** that injects link latency before each frame hits the
//!   kernel: frame `i` is written at `max(due_{i-1}, now + delay_i)` where `delay_i`
//!   is the link's tree distance scaled by [`NetConfig::unit_latency`] (and, in the
//!   asynchronous model, by a seeded per-frame factor drawn from
//!   `[lo_factor, 1.0]` — the same latency law and floor the simulator applies).
//!   The running `due` maximum keeps every link FIFO, which the arrow protocol
//!   requires.
//!
//! The runtime is handed only the spanning tree, so the tree *is* its
//! communication graph: direct token channels pay the tree distance `d_T(u, v)`.
//! That matches simulator runs on tree-only instances (`Instance::tree_only`,
//! stretch 1) exactly; on a general graph the simulator's direct sends pay the
//! graph distance `d_G`, which can be smaller than `d_T`.

use crate::wire::{Frame, WireError};
use arrow_core::prelude::{RunConfig, SyncMode};
use desim::SimRng;
use netgraph::NodeId;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a handshake partner may stall before the connection is abandoned.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Latency configuration of the socket runtime.
///
/// The delay injected before writing a frame on the link `{u, v}` is
/// `d_T(u, v) × unit_latency × factor`, with `factor = 1` in the synchronous model
/// and `factor ~ U[lo_factor, 1]` (seeded, per frame) in the asynchronous one. With
/// [`NetConfig::instant`] no artificial delay is added and throughput reflects pure
/// serialization + kernel cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Wall-clock duration of one simulated time unit (one unit of tree edge
    /// weight). `Duration::ZERO` disables latency injection entirely.
    pub unit_latency: Duration,
    /// Asynchronous jitter: `Some((lo_factor, seed))` draws each frame's latency
    /// factor uniformly from `[lo_factor, 1.0]` with a deterministic per-link stream
    /// derived from `seed`; `None` is the synchronous model (factor exactly 1).
    pub jitter: Option<(f64, u64)>,
    /// How many times a failed dial is retried (with linear backoff) before the
    /// node gives up and reports the peer unreachable. A peer that stays
    /// unreachable fails the run *cleanly*: the node marks itself failed, pending
    /// acquires on it error out, and the failure is surfaced in the shutdown
    /// report — it no longer panics a node thread.
    pub dial_retries: u32,
}

impl NetConfig {
    /// Default dial retry budget (see [`NetConfig::dial_retries`]).
    pub const DEFAULT_DIAL_RETRIES: u32 = 3;

    /// No injected latency: frames hit the socket as fast as the delay queue drains.
    pub fn instant() -> Self {
        NetConfig {
            unit_latency: Duration::ZERO,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
        }
    }

    /// Synchronous model: every frame on link `{u, v}` is delayed by exactly
    /// `d_T(u, v) × unit_latency`.
    pub fn synchronous(unit_latency: Duration) -> Self {
        NetConfig {
            unit_latency,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
        }
    }

    /// Asynchronous model: each frame's delay factor is drawn from
    /// `[lo_factor, 1.0]` (the async floor), seeded deterministically.
    pub fn asynchronous(unit_latency: Duration, lo_factor: f64, seed: u64) -> Self {
        NetConfig {
            unit_latency,
            jitter: Some((lo_factor, seed)),
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
        }
    }

    /// Override the dial retry budget.
    pub fn with_dial_retries(mut self, retries: u32) -> Self {
        self.dial_retries = retries;
        self
    }

    /// Derive the socket latency model from a simulator [`RunConfig`], so socket
    /// runs stay comparable to simulator runs on tree-only instances (see the
    /// module docs for the `d_T` vs `d_G` caveat on general graphs): the synchrony
    /// mode, the async floor (`async_lo_factor`) and the seed all carry over;
    /// `unit_latency` sets the wall-clock scale of one simulated unit.
    pub fn from_run_config(config: &RunConfig, unit_latency: Duration) -> Self {
        match config.sync {
            SyncMode::Synchronous => NetConfig::synchronous(unit_latency),
            SyncMode::Asynchronous => {
                NetConfig::asynchronous(unit_latency, config.async_lo_factor, config.seed)
            }
        }
    }
}

/// Counters shared by all threads of one [`crate::NetRuntime`].
#[derive(Debug, Default)]
pub struct NetStats {
    /// Arrow `queue()` frames sent (all objects).
    pub queue_frames: AtomicU64,
    /// Token grant frames sent (all objects).
    pub token_frames: AtomicU64,
    /// Every frame written to a socket, handshakes and goodbyes included.
    pub frames_sent: AtomicU64,
    /// Total bytes written to sockets (wire encoding, length prefixes included).
    pub bytes_sent: AtomicU64,
    /// Connections this runtime's nodes dialed (tree edges + lazy token channels).
    pub connections_dialed: AtomicU64,
    /// Connections this runtime's nodes accepted.
    pub connections_accepted: AtomicU64,
    /// Acquisitions granted (all objects).
    pub acquisitions: AtomicU64,
    /// Frames that arrived outside the protocol (stray handshakes, unsupported
    /// [`arrow_core::prelude::ProtoMsg`] variants); should stay zero.
    pub unexpected_frames: AtomicU64,
    /// Dials that exhausted their retry budget ([`NetConfig::dial_retries`]) and
    /// marked the dialing node failed; should stay zero on a healthy mesh.
    pub dial_failures: AtomicU64,
}

/// A plain-number snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Arrow `queue()` frames sent.
    pub queue_frames: u64,
    /// Token grant frames sent.
    pub token_frames: u64,
    /// Every frame written to a socket.
    pub frames_sent: u64,
    /// Total bytes written to sockets.
    pub bytes_sent: u64,
    /// Connections dialed.
    pub connections_dialed: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Acquisitions granted.
    pub acquisitions: u64,
    /// Out-of-protocol frames received.
    pub unexpected_frames: u64,
    /// Dials that exhausted their retry budget.
    pub dial_failures: u64,
}

impl NetStats {
    /// Read all counters at once (relaxed; exact once the runtime is quiescent).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            queue_frames: self.queue_frames.load(Ordering::Relaxed),
            token_frames: self.token_frames.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            connections_dialed: self.connections_dialed.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            unexpected_frames: self.unexpected_frames.load(Ordering::Relaxed),
            dial_failures: self.dial_failures.load(Ordering::Relaxed),
        }
    }
}

/// The sending half of one established link, backed by the delay-queue writer
/// thread. Dropping the handle closes the channel; the writer drains what is queued,
/// then shuts the socket down.
#[derive(Debug)]
pub(crate) struct LinkHandle {
    tx: Sender<Frame>,
}

impl LinkHandle {
    /// Queue a frame for (delayed) transmission. Returns false if the link is dead.
    pub(crate) fn send(&self, frame: Frame) -> bool {
        self.tx.send(frame).is_ok()
    }
}

/// Per-frame latency policy of one writer thread.
struct DelayPolicy {
    base: Duration,
    jitter: Option<(f64, SimRng)>,
}

impl DelayPolicy {
    /// Build the policy for the link `{me, peer}` with tree distance `weight`.
    fn new(cfg: &NetConfig, weight: f64, me: NodeId, peer: NodeId) -> Self {
        let base = cfg.unit_latency.mul_f64(weight.max(0.0));
        let jitter = cfg.jitter.map(|(lo, seed)| {
            // One deterministic stream per directed link: mix the endpoints into the
            // seed so links don't share jitter sequences.
            let mix = seed
                ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (peer as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            (lo, SimRng::new(mix))
        });
        DelayPolicy { base, jitter }
    }

    fn sample(&mut self) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        match &mut self.jitter {
            None => self.base,
            Some((lo, rng)) => {
                let factor = rng.uniform((*lo).clamp(0.0, 1.0), 1.0);
                self.base.mul_f64(factor)
            }
        }
    }
}

/// Spawn the delay-queue writer for an established connection and return the send
/// handle. `weight` is the link's tree distance (its latency basis).
pub(crate) fn spawn_writer(
    stream: TcpStream,
    me: NodeId,
    peer: NodeId,
    weight: f64,
    cfg: &NetConfig,
    stats: Arc<NetStats>,
) -> LinkHandle {
    let (tx, rx): (Sender<Frame>, Receiver<Frame>) = channel();
    let mut policy = DelayPolicy::new(cfg, weight, me, peer);
    std::thread::Builder::new()
        .name(format!("arrow-net-writer-{me}-{peer}"))
        .spawn(move || {
            let mut stream = stream;
            let mut due = Instant::now();
            while let Ok(frame) = rx.recv() {
                let now = Instant::now();
                // FIFO floor: a frame is never written before its predecessor's due
                // time, so injected jitter cannot reorder a link.
                due = due.max(now + policy.sample());
                let wait = due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                match frame.write_to(&mut stream) {
                    Ok(n) => {
                        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                        stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(_) => break,
                }
            }
            // Close both directions so the peer's reader observes EOF promptly.
            let _ = stream.shutdown(Shutdown::Both);
        })
        .expect("failed to spawn link writer thread");
    LinkHandle { tx }
}

/// Spawn the reader for an established connection: decoded frames are forwarded to
/// the node's event loop tagged with the peer they came from.
pub(crate) fn spawn_reader<E, F>(mut stream: TcpStream, peer: NodeId, forward: F)
where
    F: Fn(NodeId, Frame) -> Result<(), E> + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("arrow-net-reader-{peer}"))
        .spawn(move || loop {
            match Frame::read_from(&mut stream) {
                // Goodbye is the clean end of the connection; anything undecodable
                // (or EOF) ends it too.
                Ok(Frame::Goodbye) | Err(_) => break,
                Ok(frame) => {
                    if forward(peer, frame).is_err() {
                        break;
                    }
                }
            }
        })
        .expect("failed to spawn link reader thread");
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Dial a peer and run the join handshake (send `Hello{me}`, await `Welcome`),
/// retrying transient failures up to `retries` times with linear backoff before
/// reporting the peer unreachable. This is the budgeted dial the runtime uses
/// ([`NetConfig::dial_retries`]); it is public so failure-injection tests can
/// exercise the budget against a refused address directly.
pub fn dial_with_budget(
    addr: SocketAddr,
    me: NodeId,
    retries: u32,
) -> io::Result<(TcpStream, NodeId)> {
    let mut attempt = 0;
    loop {
        match dial(addr, me) {
            Ok(pair) => return Ok(pair),
            Err(e) if attempt < retries => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(5 * attempt as u64));
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Dial a peer and run the join handshake: send `Hello{me}`, await `Welcome`.
/// Returns the connected stream and the peer's confirmed node id.
pub(crate) fn dial(addr: SocketAddr, me: NodeId) -> io::Result<(TcpStream, NodeId)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    Frame::Hello { node: me }.write_to(&mut stream)?;
    let reply = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    stream.set_read_timeout(None)?;
    match reply {
        Frame::Welcome { node } => Ok((stream, node)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Welcome during handshake, got {other:?}"),
        )),
    }
}

/// Accepter half of the join handshake: await `Hello`, reply `Welcome{me}`.
/// Returns the stream and the dialing peer's node id.
pub(crate) fn accept_handshake(
    mut stream: TcpStream,
    me: NodeId,
) -> io::Result<(TcpStream, NodeId)> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let hello = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    let peer = match hello {
        Frame::Hello { node } => node,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello during handshake, got {other:?}"),
            ))
        }
    };
    Frame::Welcome { node: me }.write_to(&mut stream)?;
    stream.set_read_timeout(None)?;
    Ok((stream, peer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn handshake_exchanges_node_ids() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 7).unwrap()
        });
        let (_stream, peer) = dial(addr, 3).unwrap();
        assert_eq!(peer, 7);
        let (_stream, dialer) = accepter.join().unwrap();
        assert_eq!(dialer, 3);
    }

    #[test]
    fn garbage_handshake_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 0)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        stream.write_all(&[0xFF; 16]).unwrap();
        assert!(accepter.join().unwrap().is_err());
    }

    #[test]
    fn synchronous_delay_policy_is_the_scaled_weight() {
        let cfg = NetConfig::synchronous(Duration::from_millis(10));
        let mut p = DelayPolicy::new(&cfg, 3.0, 0, 1);
        assert_eq!(p.sample(), Duration::from_millis(30));
        assert_eq!(p.sample(), Duration::from_millis(30));
    }

    #[test]
    fn asynchronous_delay_respects_the_floor() {
        let cfg = NetConfig::asynchronous(Duration::from_millis(100), 0.4, 11);
        let mut p = DelayPolicy::new(&cfg, 1.0, 2, 5);
        for _ in 0..200 {
            let d = p.sample();
            assert!(
                d >= Duration::from_millis(40),
                "{d:?} under the async floor"
            );
            assert!(
                d <= Duration::from_millis(100),
                "{d:?} over the link weight"
            );
        }
    }

    #[test]
    fn instant_config_injects_nothing() {
        let mut p = DelayPolicy::new(&NetConfig::instant(), 5.0, 0, 1);
        assert_eq!(p.sample(), Duration::ZERO);
    }

    #[test]
    fn from_run_config_carries_the_async_floor_and_seed() {
        use arrow_core::prelude::ProtocolKind;
        let sync = NetConfig::from_run_config(
            &RunConfig::analysis(ProtocolKind::Arrow),
            Duration::from_millis(2),
        );
        assert_eq!(sync, NetConfig::synchronous(Duration::from_millis(2)));
        let run = RunConfig::analysis(ProtocolKind::Arrow)
            .asynchronous(9)
            .with_async_floor(0.25);
        let net = NetConfig::from_run_config(&run, Duration::from_millis(2));
        assert_eq!(net.jitter, Some((0.25, 9)));
    }
}
