//! Mesh policy of the socket tier: latency law, dial budget, stats schema.
//!
//! Topology is deliberately sparse: the mesh materializes only the spanning-tree
//! edges (dialed eagerly at bootstrap — every non-root node dials its parent), plus
//! *direct token channels* dialed lazily the first time one node grants a token to a
//! non-neighbour. This mirrors the protocol's traffic pattern exactly: `queue()`
//! messages travel tree edges only, while token grants jump straight to the granted
//! request's origin (the socket analogue of the simulator's direct-ack sends).
//!
//! Every connection starts with a `Hello`/`Welcome` handshake so each side knows the
//! peer's node id, and ends with a `Goodbye` notice at shutdown. The handshake,
//! socket I/O, and timers all run inside the sharded reactors (the crate's
//! internal `reactor` module); this module holds the *policy* the reactors apply:
//!
//! - [`NetConfig`]: latency model, dial retry budget, churn mode, and the
//!   [`shards`](NetConfig::shards) knob sizing the reactor pool.
//! - `DelayPolicy` (internal): the per-link latency law. The delay of a frame on the
//!   link `{u, v}` is the link's tree distance scaled by
//!   [`NetConfig::unit_latency`] (and, in the asynchronous model, by a seeded
//!   per-frame factor drawn from `[lo_factor, 1.0]` — the same latency law and
//!   floor the simulator applies).
//! - [`NetStats`] / [`NetStatsSnapshot`]: the counter and histogram schema all
//!   reactor shards share.
//!
//! The runtime is handed only the spanning tree, so the tree *is* its
//! communication graph: direct token channels pay the tree distance `d_T(u, v)`.
//! That matches simulator runs on tree-only instances (`Instance::tree_only`,
//! stretch 1) exactly; on a general graph the simulator's direct sends pay the
//! graph distance `d_G`, which can be smaller than `d_T`.

use crate::wire::{Frame, WireError};
use arrow_core::prelude::{RunConfig, SyncMode};
use arrow_trace::{HistMetric, Metric, MetricsRegistry, MetricsSnapshot};
use desim::SimRng;
use netgraph::NodeId;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long a handshake partner may stall before the connection is abandoned.
pub(crate) const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Initial capacity of a connection's receive buffer. Grows on demand; a full
/// batch of coalesced arrow frames (≤ 23 bytes each) fits hundreds of frames.
pub(crate) const RECV_BUF_INIT: usize = 16 * 1024;

/// Latency configuration of the socket runtime.
///
/// The delay injected before writing a frame on the link `{u, v}` is
/// `d_T(u, v) × unit_latency × factor`, with `factor = 1` in the synchronous model
/// and `factor ~ U[lo_factor, 1]` (seeded, per frame) in the asynchronous one. With
/// [`NetConfig::instant`] no artificial delay is added and throughput reflects pure
/// serialization + kernel cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Wall-clock duration of one simulated time unit (one unit of tree edge
    /// weight). `Duration::ZERO` disables latency injection entirely.
    pub unit_latency: Duration,
    /// Asynchronous jitter: `Some((lo_factor, seed))` draws each frame's latency
    /// factor uniformly from `[lo_factor, 1.0]` with a deterministic per-link stream
    /// derived from `seed`; `None` is the synchronous model (factor exactly 1).
    pub jitter: Option<(f64, u64)>,
    /// How many times a failed dial is retried (with linear backoff) before the
    /// node gives up and reports the peer unreachable. A peer that stays
    /// unreachable fails the run *cleanly*: the node marks itself failed, pending
    /// acquires on it error out, and the failure is surfaced in the shutdown
    /// report — it no longer panics a node thread.
    pub dial_retries: u32,
    /// Churn mode. With `false` (the default) an unreachable peer is fatal: the
    /// dialing node marks itself failed, and the failure is broadcast so every
    /// pending acquire in the mesh errors out — correct when nodes are not
    /// *supposed* to disappear. With `true` the frame towards the unreachable
    /// peer is dropped (counted by [`arrow_trace::Metric::FramesDropped`] in
    /// the node's metrics registry) and the node
    /// stays up: under fault injection a dropped frame is recovered by the next
    /// epoch bump regenerating the token, so losing it must not condemn the run.
    pub fault_tolerant: bool,
    /// Number of reactor shards (event-loop threads) the runtime spawns. Each
    /// shard owns `n / shards` nodes and multiplexes all of their sockets over
    /// one `epoll` loop, so the process's thread count is `O(shards)` rather
    /// than `O(nodes)`. `0` (the default) auto-sizes to the machine's
    /// available parallelism (at least 2); any other value is clamped to
    /// `[1, node count]` at spawn time.
    pub shards: usize,
}

impl NetConfig {
    /// Default dial retry budget (see [`NetConfig::dial_retries`]).
    pub const DEFAULT_DIAL_RETRIES: u32 = 3;

    /// No injected latency: frames hit the socket as fast as the shards drain.
    pub fn instant() -> Self {
        NetConfig {
            unit_latency: Duration::ZERO,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
            shards: 0,
        }
    }

    /// Synchronous model: every frame on link `{u, v}` is delayed by exactly
    /// `d_T(u, v) × unit_latency`.
    pub fn synchronous(unit_latency: Duration) -> Self {
        NetConfig {
            unit_latency,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
            shards: 0,
        }
    }

    /// Asynchronous model: each frame's delay factor is drawn from
    /// `[lo_factor, 1.0]` (the async floor), seeded deterministically.
    pub fn asynchronous(unit_latency: Duration, lo_factor: f64, seed: u64) -> Self {
        NetConfig {
            unit_latency,
            jitter: Some((lo_factor, seed)),
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
            shards: 0,
        }
    }

    /// Override the dial retry budget.
    pub fn with_dial_retries(mut self, retries: u32) -> Self {
        self.dial_retries = retries;
        self
    }

    /// Enable churn mode (see [`NetConfig::fault_tolerant`]): an unreachable peer
    /// costs the frame, not the run.
    pub fn with_fault_tolerance(mut self) -> Self {
        self.fault_tolerant = true;
        self
    }

    /// Override the reactor shard count (see [`NetConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count a runtime hosting `nodes` nodes actually spawns:
    /// [`NetConfig::shards`], auto-sized when 0, clamped to `[1, nodes]` (one
    /// shard per node is the most that does anything).
    pub fn effective_shards(&self, nodes: usize) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .max(2)
        } else {
            self.shards
        };
        requested.clamp(1, nodes.max(1))
    }

    /// Derive the socket latency model from a simulator [`RunConfig`], so socket
    /// runs stay comparable to simulator runs on tree-only instances (see the
    /// module docs for the `d_T` vs `d_G` caveat on general graphs): the synchrony
    /// mode, the async floor (`async_lo_factor`) and the seed all carry over;
    /// `unit_latency` sets the wall-clock scale of one simulated unit.
    pub fn from_run_config(config: &RunConfig, unit_latency: Duration) -> Self {
        match config.sync {
            SyncMode::Synchronous => NetConfig::synchronous(unit_latency),
            SyncMode::Asynchronous => {
                NetConfig::asynchronous(unit_latency, config.async_lo_factor, config.seed)
            }
        }
    }
}

/// Counters shared by all shards of one [`crate::NetRuntime`], backed by the
/// cross-tier [`arrow_trace::MetricsRegistry`] schema — lock-free atomics, so
/// the hot-path cost is one relaxed `fetch_add` per count. Beyond the counters
/// the registry also carries the socket tier's histograms: frames coalesced
/// per `write` ([`HistMetric::WriteBatchFrames`]), timer-wheel staging
/// lateness ([`HistMetric::TimerDwellNanos`]), acquire latency
/// ([`HistMetric::AcquireNanos`]), events per reactor wakeup
/// ([`HistMetric::EventsPerWakeup`]) and shard inbox depth
/// ([`HistMetric::ShardQueueDepth`]).
///
/// [`NetStats::snapshot`] renders the counters as the traditional
/// [`NetStatsSnapshot`] plain-number view; [`NetStats::metrics`] exposes the
/// full registry snapshot (histograms included) for cross-tier tooling.
#[derive(Debug, Default)]
pub struct NetStats {
    registry: MetricsRegistry,
}

/// A plain-number snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Arrow `queue()` frames sent.
    pub queue_frames: u64,
    /// Token grant frames sent.
    pub token_frames: u64,
    /// Every frame written to a socket, handshake frames included: the
    /// reactors stage `Hello`/`Welcome`/`Goodbye` through the same send
    /// buffers as protocol traffic, so the count is symmetric with what the
    /// peer's reader scans out.
    pub frames_sent: u64,
    /// Total bytes written to sockets (wire encoding, length prefixes
    /// included), handshake frames included. Every byte leaves through a
    /// reactor send buffer and arrives through a reactor receive buffer, so
    /// on a quiescent fault-free mesh `bytes_sent == bytes_received` exactly —
    /// see the `quiescent_run_byte_accounting_is_symmetric` regression test.
    pub bytes_sent: u64,
    /// Total bytes read off sockets, handshake bytes included (symmetric with
    /// `bytes_sent`). Faults break the symmetry in one direction only
    /// (severed links and crashed nodes lose written bytes), so
    /// `bytes_received <= bytes_sent` always holds once the mesh is quiescent.
    pub bytes_received: u64,
    /// `write` syscalls issued by the reactor shards.
    pub socket_writes: u64,
    /// `read` syscalls that returned data to a reactor shard.
    pub socket_reads: u64,
    /// Connections dialed (handshake completed on the dialing side).
    pub connections_dialed: u64,
    /// Connections accepted (handshake completed on the accepting side).
    pub connections_accepted: u64,
    /// Acquisitions granted.
    pub acquisitions: u64,
    /// Out-of-protocol frames received.
    pub unexpected_frames: u64,
    /// Dials that exhausted their retry budget.
    pub dial_failures: u64,
    /// Frames dropped by fault injection (severed links, crashed endpoints,
    /// unreachable peers in fault-tolerant mode).
    pub frames_dropped: u64,
    /// Stale-epoch protocol messages rejected by the recovery layer.
    pub stale_drops: u64,
    /// Times a reactor shard returned from `epoll_wait` (timer expiry or I/O).
    pub reactor_wakeups: u64,
    /// Nonblocking writes that returned `EWOULDBLOCK` (kernel send buffer
    /// full; the shard re-armed write interest and retried later).
    pub would_block_retries: u64,
    /// Simultaneous-dial races collapsed onto a single surviving link.
    pub dial_races_collapsed: u64,
}

impl NetStatsSnapshot {
    /// Mean frames per `write` syscall — the coalescing batch size. 0.0 before any
    /// write happened.
    pub fn frames_per_write(&self) -> f64 {
        if self.socket_writes == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.socket_writes as f64
        }
    }
}

impl NetStats {
    /// The underlying cross-tier metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Full registry snapshot: the counters of [`NetStats::snapshot`] plus the
    /// socket tier's histograms, in the schema shared with the thread tier's
    /// [`arrow_core::live::LiveReport`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Bump counter `m` by one (relaxed).
    pub(crate) fn inc(&self, m: Metric) {
        self.registry.inc(m);
    }

    /// Bump counter `m` by `n` (relaxed).
    pub(crate) fn add(&self, m: Metric, n: u64) {
        self.registry.add(m, n);
    }

    /// Record `v` into histogram `h`.
    pub(crate) fn observe(&self, h: HistMetric, v: u64) {
        self.registry.observe(h, v);
    }

    /// Read all counters at once (relaxed; exact once the runtime is quiescent).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            queue_frames: self.registry.get(Metric::QueueFrames),
            token_frames: self.registry.get(Metric::TokenFrames),
            frames_sent: self.registry.get(Metric::FramesSent),
            bytes_sent: self.registry.get(Metric::BytesSent),
            bytes_received: self.registry.get(Metric::BytesReceived),
            socket_writes: self.registry.get(Metric::SocketWrites),
            socket_reads: self.registry.get(Metric::SocketReads),
            connections_dialed: self.registry.get(Metric::ConnectionsDialed),
            connections_accepted: self.registry.get(Metric::ConnectionsAccepted),
            acquisitions: self.registry.get(Metric::Acquisitions),
            unexpected_frames: self.registry.get(Metric::UnexpectedFrames),
            dial_failures: self.registry.get(Metric::DialFailures),
            frames_dropped: self.registry.get(Metric::FramesDropped),
            stale_drops: self.registry.get(Metric::StaleEpochDrops),
            reactor_wakeups: self.registry.get(Metric::ReactorWakeups),
            would_block_retries: self.registry.get(Metric::WouldBlockRetries),
            dial_races_collapsed: self.registry.get(Metric::DialRacesCollapsed),
        }
    }
}

/// Per-frame latency policy of one directed link.
pub(crate) struct DelayPolicy {
    base: Duration,
    jitter: Option<(f64, SimRng)>,
}

impl DelayPolicy {
    /// Build the policy for the link `{me, peer}` with tree distance `weight`.
    pub(crate) fn new(cfg: &NetConfig, weight: f64, me: NodeId, peer: NodeId) -> Self {
        let base = cfg.unit_latency.mul_f64(weight.max(0.0));
        let jitter = cfg.jitter.map(|(lo, seed)| {
            // One deterministic stream per directed link: mix the endpoints into the
            // seed so links don't share jitter sequences.
            let mix = seed
                ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (peer as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            (lo, SimRng::new(mix))
        });
        DelayPolicy { base, jitter }
    }

    pub(crate) fn sample(&mut self) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        match &mut self.jitter {
            None => self.base,
            Some((lo, rng)) => {
                let factor = rng.uniform((*lo).clamp(0.0, 1.0), 1.0);
                self.base.mul_f64(factor)
            }
        }
    }
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Dial a peer and run the join handshake (send `Hello{me}`, await `Welcome`),
/// retrying transient failures up to `retries` times with linear backoff before
/// reporting the peer unreachable. This is the blocking counterpart of the
/// reactors' nonblocking dial machinery, kept public so external tooling and
/// failure-injection tests can join a mesh (or exercise the retry budget
/// against a refused address) without standing up a reactor.
pub fn dial_with_budget(
    addr: SocketAddr,
    me: NodeId,
    retries: u32,
) -> io::Result<(TcpStream, NodeId)> {
    let mut attempt = 0;
    loop {
        match dial(addr, me) {
            Ok(pair) => return Ok(pair),
            Err(e) if attempt < retries => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(5 * attempt as u64));
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Dial a peer and run the join handshake: send `Hello{me}`, await `Welcome`.
/// Returns the connected stream and the peer's confirmed node id.
pub(crate) fn dial(addr: SocketAddr, me: NodeId) -> io::Result<(TcpStream, NodeId)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    Frame::Hello { node: me }.write_to(&mut stream)?;
    let reply = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    stream.set_read_timeout(None)?;
    match reply {
        Frame::Welcome { node } => Ok((stream, node)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Welcome during handshake, got {other:?}"),
        )),
    }
}

/// Accepter half of the blocking join handshake: await `Hello`, reply
/// `Welcome{me}`. Test-only — live accepts run through the reactors' state
/// machines — but kept as the reference implementation the nonblocking
/// handshake must stay wire-compatible with.
#[cfg(test)]
pub(crate) fn accept_handshake(
    mut stream: TcpStream,
    me: NodeId,
) -> io::Result<(TcpStream, NodeId)> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let hello = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    let peer = match hello {
        Frame::Hello { node } => node,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello during handshake, got {other:?}"),
            ))
        }
    };
    Frame::Welcome { node: me }.write_to(&mut stream)?;
    stream.set_read_timeout(None)?;
    Ok((stream, peer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn handshake_exchanges_node_ids() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 7).unwrap()
        });
        let (_stream, peer) = dial(addr, 3).unwrap();
        assert_eq!(peer, 7);
        let (_stream, dialer) = accepter.join().unwrap();
        assert_eq!(dialer, 3);
    }

    #[test]
    fn garbage_handshake_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 0)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xFF; 16]).unwrap();
        assert!(accepter.join().unwrap().is_err());
    }

    #[test]
    fn synchronous_delay_policy_is_the_scaled_weight() {
        let cfg = NetConfig::synchronous(Duration::from_millis(10));
        let mut p = DelayPolicy::new(&cfg, 3.0, 0, 1);
        assert_eq!(p.sample(), Duration::from_millis(30));
        assert_eq!(p.sample(), Duration::from_millis(30));
    }

    #[test]
    fn asynchronous_delay_respects_the_floor() {
        let cfg = NetConfig::asynchronous(Duration::from_millis(100), 0.4, 11);
        let mut p = DelayPolicy::new(&cfg, 1.0, 2, 5);
        for _ in 0..200 {
            let d = p.sample();
            assert!(
                d >= Duration::from_millis(40),
                "{d:?} under the async floor"
            );
            assert!(
                d <= Duration::from_millis(100),
                "{d:?} over the link weight"
            );
        }
    }

    #[test]
    fn instant_config_injects_nothing() {
        let mut p = DelayPolicy::new(&NetConfig::instant(), 5.0, 0, 1);
        assert_eq!(p.sample(), Duration::ZERO);
    }

    #[test]
    fn from_run_config_carries_the_async_floor_and_seed() {
        use arrow_core::prelude::ProtocolKind;
        let sync = NetConfig::from_run_config(
            &RunConfig::analysis(ProtocolKind::Arrow),
            Duration::from_millis(2),
        );
        assert_eq!(sync, NetConfig::synchronous(Duration::from_millis(2)));
        let run = RunConfig::analysis(ProtocolKind::Arrow)
            .asynchronous(9)
            .with_async_floor(0.25);
        let net = NetConfig::from_run_config(&run, Duration::from_millis(2));
        assert_eq!(net.jitter, Some((0.25, 9)));
    }

    #[test]
    fn effective_shards_clamps_and_autosizes() {
        let cfg = NetConfig::instant().with_shards(4);
        assert_eq!(cfg.effective_shards(100), 4);
        assert_eq!(cfg.effective_shards(2), 2, "never more shards than nodes");
        assert_eq!(cfg.effective_shards(0), 1, "at least one shard");
        let auto = NetConfig::instant();
        assert!(auto.effective_shards(4096) >= 2, "auto-sizing floor is 2");
    }
}
