//! The peer mesh: loopback TCP connections, join/shutdown handshakes, per-link
//! latency injection, and the batched writer/reader hot path.
//!
//! Topology is deliberately sparse: the mesh materializes only the spanning-tree
//! edges (dialed eagerly at bootstrap — every non-root node dials its parent), plus
//! *direct token channels* dialed lazily the first time one node grants a token to a
//! non-neighbour. This mirrors the protocol's traffic pattern exactly: `queue()`
//! messages travel tree edges only, while token grants jump straight to the granted
//! request's origin (the socket analogue of the simulator's direct-ack sends).
//!
//! Every connection starts with a `Hello`/`Welcome` handshake so each side knows the
//! peer's node id, and ends with a `Goodbye` notice at shutdown.
//!
//! # The hot path
//!
//! Each node owns at most **one writer thread** for *all* of its outbound links (the
//! timer writer, used when latency injection is on). The writer keeps, per link, a reusable encode buffer and
//! the link's running FIFO due time, plus one binary heap of `(due, seq)`-ordered
//! scheduled frames across every link. One loop iteration drains the command
//! channel, schedules each frame at `max(link_due, now + delay)` (the running
//! maximum keeps every link FIFO, which the arrow protocol requires), then flushes
//! **all frames that are due now in one `write_all` per link** — so a burst of
//! protocol traffic towards one peer costs one syscall, not one per frame, and a
//! node with `d` links needs one timer thread, not `d` sleeping writers.
//!
//! The delay of a frame on the link `{u, v}` is the link's tree distance scaled by
//! [`NetConfig::unit_latency`] (and, in the asynchronous model, by a seeded
//! per-frame factor drawn from `[lo_factor, 1.0]` — the same latency law and floor
//! the simulator applies). With [`NetConfig::instant`] the heap is bypassed
//! entirely: frames encode straight into their link's buffer and flush at the end
//! of the drain cycle.
//!
//! Each established connection additionally gets a **reader** thread with a
//! single growable receive buffer: every `read` syscall
//! pulls in as many bytes as the kernel has, and complete frames are scanned out of
//! the buffer ([`crate::wire::Frame::scan`]) — one syscall can deliver a whole
//! coalesced batch, where the old per-frame `read_exact` pair paid two syscalls per
//! frame.
//!
//! The runtime is handed only the spanning tree, so the tree *is* its
//! communication graph: direct token channels pay the tree distance `d_T(u, v)`.
//! That matches simulator runs on tree-only instances (`Instance::tree_only`,
//! stretch 1) exactly; on a general graph the simulator's direct sends pay the
//! graph distance `d_G`, which can be smaller than `d_T`.

use crate::wire::{Frame, WireError};
use arrow_core::prelude::{RunConfig, SyncMode};
use arrow_trace::{HistMetric, Metric, MetricsRegistry, MetricsSnapshot};
use desim::SimRng;
use netgraph::NodeId;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a handshake partner may stall before the connection is abandoned.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Initial capacity of a reader's receive buffer. Grows on demand; a full batch of
/// coalesced arrow frames (≤ 23 bytes each) fits hundreds of frames.
const RECV_BUF_INIT: usize = 16 * 1024;

/// Latency configuration of the socket runtime.
///
/// The delay injected before writing a frame on the link `{u, v}` is
/// `d_T(u, v) × unit_latency × factor`, with `factor = 1` in the synchronous model
/// and `factor ~ U[lo_factor, 1]` (seeded, per frame) in the asynchronous one. With
/// [`NetConfig::instant`] no artificial delay is added and throughput reflects pure
/// serialization + kernel cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Wall-clock duration of one simulated time unit (one unit of tree edge
    /// weight). `Duration::ZERO` disables latency injection entirely.
    pub unit_latency: Duration,
    /// Asynchronous jitter: `Some((lo_factor, seed))` draws each frame's latency
    /// factor uniformly from `[lo_factor, 1.0]` with a deterministic per-link stream
    /// derived from `seed`; `None` is the synchronous model (factor exactly 1).
    pub jitter: Option<(f64, u64)>,
    /// How many times a failed dial is retried (with linear backoff) before the
    /// node gives up and reports the peer unreachable. A peer that stays
    /// unreachable fails the run *cleanly*: the node marks itself failed, pending
    /// acquires on it error out, and the failure is surfaced in the shutdown
    /// report — it no longer panics a node thread.
    pub dial_retries: u32,
    /// Churn mode. With `false` (the default) an unreachable peer is fatal: the
    /// dialing node marks itself failed, and the failure is broadcast so every
    /// pending acquire in the mesh errors out — correct when nodes are not
    /// *supposed* to disappear. With `true` the frame towards the unreachable
    /// peer is dropped (counted by [`arrow_trace::Metric::FramesDropped`] in
    /// the node's metrics registry) and the node
    /// stays up: under fault injection a dropped frame is recovered by the next
    /// epoch bump regenerating the token, so losing it must not condemn the run.
    pub fault_tolerant: bool,
}

impl NetConfig {
    /// Default dial retry budget (see [`NetConfig::dial_retries`]).
    pub const DEFAULT_DIAL_RETRIES: u32 = 3;

    /// No injected latency: frames hit the socket as fast as the writer drains.
    pub fn instant() -> Self {
        NetConfig {
            unit_latency: Duration::ZERO,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
        }
    }

    /// Synchronous model: every frame on link `{u, v}` is delayed by exactly
    /// `d_T(u, v) × unit_latency`.
    pub fn synchronous(unit_latency: Duration) -> Self {
        NetConfig {
            unit_latency,
            jitter: None,
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
        }
    }

    /// Asynchronous model: each frame's delay factor is drawn from
    /// `[lo_factor, 1.0]` (the async floor), seeded deterministically.
    pub fn asynchronous(unit_latency: Duration, lo_factor: f64, seed: u64) -> Self {
        NetConfig {
            unit_latency,
            jitter: Some((lo_factor, seed)),
            dial_retries: Self::DEFAULT_DIAL_RETRIES,
            fault_tolerant: false,
        }
    }

    /// Override the dial retry budget.
    pub fn with_dial_retries(mut self, retries: u32) -> Self {
        self.dial_retries = retries;
        self
    }

    /// Enable churn mode (see [`NetConfig::fault_tolerant`]): an unreachable peer
    /// costs the frame, not the run.
    pub fn with_fault_tolerance(mut self) -> Self {
        self.fault_tolerant = true;
        self
    }

    /// Derive the socket latency model from a simulator [`RunConfig`], so socket
    /// runs stay comparable to simulator runs on tree-only instances (see the
    /// module docs for the `d_T` vs `d_G` caveat on general graphs): the synchrony
    /// mode, the async floor (`async_lo_factor`) and the seed all carry over;
    /// `unit_latency` sets the wall-clock scale of one simulated unit.
    pub fn from_run_config(config: &RunConfig, unit_latency: Duration) -> Self {
        match config.sync {
            SyncMode::Synchronous => NetConfig::synchronous(unit_latency),
            SyncMode::Asynchronous => {
                NetConfig::asynchronous(unit_latency, config.async_lo_factor, config.seed)
            }
        }
    }
}

/// Counters shared by all threads of one [`crate::NetRuntime`], backed by the
/// cross-tier [`arrow_trace::MetricsRegistry`] schema — the same lock-free
/// atomics the ad-hoc `AtomicU64` fields used, so the hot-path cost is still
/// one relaxed `fetch_add` per count. Beyond the counters the registry also
/// carries the socket tier's histograms: frames coalesced per `write`
/// ([`HistMetric::WriteBatchFrames`]), timer-heap staging lateness
/// ([`HistMetric::TimerDwellNanos`]) and acquire latency
/// ([`HistMetric::AcquireNanos`]).
///
/// [`NetStats::snapshot`] renders the counters as the traditional
/// [`NetStatsSnapshot`] plain-number view; [`NetStats::metrics`] exposes the
/// full registry snapshot (histograms included) for cross-tier tooling.
#[derive(Debug, Default)]
pub struct NetStats {
    registry: MetricsRegistry,
}

/// A plain-number snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Arrow `queue()` frames sent.
    pub queue_frames: u64,
    /// Token grant frames sent.
    pub token_frames: u64,
    /// Every frame written to a socket: link batches and spare-connection
    /// goodbyes alike. Handshake frames (`Hello`/`Welcome`) are excluded.
    pub frames_sent: u64,
    /// Total bytes written to sockets (wire encoding, length prefixes
    /// included). Counts exactly the bytes that `bytes_received` counts on the
    /// receiving side: link-batch flushes and spare-connection goodbyes, but
    /// not handshake frames (`Hello`/`Welcome` travel through
    /// [`Frame::write_to`] before the link exists). On a quiescent fault-free
    /// mesh `bytes_sent == bytes_received` exactly — see the
    /// `quiescent_run_byte_accounting_is_symmetric` regression test.
    pub bytes_sent: u64,
    /// Total bytes read off sockets by the batched readers. Handshake bytes
    /// are excluded symmetrically with `bytes_sent`: both `Hello` and
    /// `Welcome` are consumed through [`Frame::read_from`] before the link's
    /// reader spawns. Faults break the symmetry in one direction only
    /// (severed links and crashed nodes lose written bytes), so
    /// `bytes_received <= bytes_sent` always holds once the mesh is quiescent.
    pub bytes_received: u64,
    /// `write` syscalls issued by the node writers (one per link per flush).
    pub socket_writes: u64,
    /// `read` syscalls that returned data to a batched reader.
    pub socket_reads: u64,
    /// Connections dialed.
    pub connections_dialed: u64,
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Acquisitions granted.
    pub acquisitions: u64,
    /// Out-of-protocol frames received.
    pub unexpected_frames: u64,
    /// Dials that exhausted their retry budget.
    pub dial_failures: u64,
    /// Frames dropped by fault injection (severed links, crashed endpoints,
    /// unreachable peers in fault-tolerant mode).
    pub frames_dropped: u64,
    /// Stale-epoch protocol messages rejected by the recovery layer.
    pub stale_drops: u64,
}

impl NetStatsSnapshot {
    /// Mean frames per `write` syscall — the coalescing batch size. 0.0 before any
    /// write happened.
    pub fn frames_per_write(&self) -> f64 {
        if self.socket_writes == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.socket_writes as f64
        }
    }
}

impl NetStats {
    /// The underlying cross-tier metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Full registry snapshot: the counters of [`NetStats::snapshot`] plus the
    /// socket tier's histograms, in the schema shared with the thread tier's
    /// [`arrow_core::live::LiveReport`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Bump counter `m` by one (relaxed).
    pub(crate) fn inc(&self, m: Metric) {
        self.registry.inc(m);
    }

    /// Bump counter `m` by `n` (relaxed).
    pub(crate) fn add(&self, m: Metric, n: u64) {
        self.registry.add(m, n);
    }

    /// Record `v` into histogram `h`.
    pub(crate) fn observe(&self, h: HistMetric, v: u64) {
        self.registry.observe(h, v);
    }

    /// Read all counters at once (relaxed; exact once the runtime is quiescent).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            queue_frames: self.registry.get(Metric::QueueFrames),
            token_frames: self.registry.get(Metric::TokenFrames),
            frames_sent: self.registry.get(Metric::FramesSent),
            bytes_sent: self.registry.get(Metric::BytesSent),
            bytes_received: self.registry.get(Metric::BytesReceived),
            socket_writes: self.registry.get(Metric::SocketWrites),
            socket_reads: self.registry.get(Metric::SocketReads),
            connections_dialed: self.registry.get(Metric::ConnectionsDialed),
            connections_accepted: self.registry.get(Metric::ConnectionsAccepted),
            acquisitions: self.registry.get(Metric::Acquisitions),
            unexpected_frames: self.registry.get(Metric::UnexpectedFrames),
            dial_failures: self.registry.get(Metric::DialFailures),
            frames_dropped: self.registry.get(Metric::FramesDropped),
            stale_drops: self.registry.get(Metric::StaleEpochDrops),
        }
    }
}

/// Commands consumed by a node's writer thread.
pub(crate) enum WriterCmd {
    /// Register an established connection to `peer` with tree distance `weight`.
    /// A second connection to an already-registered peer (simultaneous-dial race)
    /// is parked as a spare so the peer's send path stays open.
    AddLink {
        peer: NodeId,
        stream: TcpStream,
        weight: f64,
    },
    /// Queue `frame` for (delayed, coalesced) transmission to `peer`.
    Send { peer: NodeId, frame: Frame },
    /// Flush everything still scheduled (ignoring remaining delays), say goodbye
    /// on spare connections, close every socket, and exit.
    Shutdown,
}

/// The sending half of one node's writer thread. Cloned into the accept loop so
/// accepted connections can register themselves.
#[derive(Debug, Clone)]
pub(crate) struct WriterHandle {
    tx: Sender<WriterCmd>,
}

impl WriterHandle {
    /// Enqueue a command. Returns false if the writer is gone.
    pub(crate) fn send(&self, cmd: WriterCmd) -> bool {
        self.tx.send(cmd).is_ok()
    }
}

/// Per-frame latency policy of one link.
struct DelayPolicy {
    base: Duration,
    jitter: Option<(f64, SimRng)>,
}

impl DelayPolicy {
    /// Build the policy for the link `{me, peer}` with tree distance `weight`.
    fn new(cfg: &NetConfig, weight: f64, me: NodeId, peer: NodeId) -> Self {
        let base = cfg.unit_latency.mul_f64(weight.max(0.0));
        let jitter = cfg.jitter.map(|(lo, seed)| {
            // One deterministic stream per directed link: mix the endpoints into the
            // seed so links don't share jitter sequences.
            let mix = seed
                ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (peer as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            (lo, SimRng::new(mix))
        });
        DelayPolicy { base, jitter }
    }

    fn sample(&mut self) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        match &mut self.jitter {
            None => self.base,
            Some((lo, rng)) => {
                let factor = rng.uniform((*lo).clamp(0.0, 1.0), 1.0);
                self.base.mul_f64(factor)
            }
        }
    }
}

/// One outbound link's write half with its pooled encode buffer — the batching
/// unit shared by the direct-write event loop (instant config) and the timer
/// writer (injected latency), so write accounting and dead-link policy cannot
/// drift between the two modes.
pub(crate) struct LinkBatch {
    stream: TcpStream,
    /// Pooled encode buffer; frames of one flush are appended here and leave in
    /// a single `write_all`.
    buf: Vec<u8>,
    /// Frames currently encoded in `buf`.
    pending: u64,
}

impl LinkBatch {
    pub(crate) fn new(stream: TcpStream) -> Self {
        LinkBatch {
            stream,
            buf: Vec::with_capacity(1024),
            pending: 0,
        }
    }

    /// Append one frame to the staged batch. Returns true if the batch was
    /// empty (the caller's cue to mark the link dirty).
    pub(crate) fn stage(&mut self, frame: &Frame) -> bool {
        let first = self.pending == 0;
        frame.encode_into(&mut self.buf);
        self.pending += 1;
        first
    }

    /// Write the whole staged batch with one `write_all` (no-op when empty),
    /// counting `socket_writes` / `frames_sent` / `bytes_sent`. An `Err` means
    /// the socket is dead: the caller must drop the link (and let a later frame
    /// re-dial or fail the node cleanly).
    pub(crate) fn flush(&mut self, stats: &NetStats) -> io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let result = self.stream.write_all(&self.buf);
        if result.is_ok() {
            stats.inc(Metric::SocketWrites);
            stats.add(Metric::FramesSent, self.pending);
            stats.add(Metric::BytesSent, self.buf.len() as u64);
            stats.observe(HistMetric::WriteBatchFrames, self.pending);
        }
        self.buf.clear();
        self.pending = 0;
        result
    }

    /// Close both directions of the socket abruptly (the peer's reader observes
    /// EOF, and anything unread in our receive queue is discarded) — the crash
    /// half-close. Graceful shutdown uses [`LinkBatch::close_write`].
    pub(crate) fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Close only the write direction: the goodbye just flushed is followed by
    /// `FIN`, the peer's reader drains it before observing end-of-stream, and
    /// our own reader stays open to drain the peer's final bytes in turn. A
    /// `Both` shutdown here would race the peer's goodbye and discard it
    /// unread, breaking the sent/received byte symmetry
    /// (see [`NetStatsSnapshot::bytes_sent`]).
    pub(crate) fn close_write(&self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

/// One registered outbound link inside the timer writer: the shared batching
/// unit plus the link's latency law and FIFO due-time floor.
struct OutLink {
    batch: LinkBatch,
    policy: DelayPolicy,
    /// Running due-time maximum: a frame is never written before its predecessor
    /// on the same link, so injected jitter cannot reorder a link.
    last_due: Instant,
}

/// One frame waiting in the writer's timer heap.
struct Scheduled {
    due: Instant,
    /// Tie-breaker: frames with equal due times flush in scheduling order, which
    /// preserves per-link FIFO among same-instant frames.
    seq: u64,
    peer: NodeId,
    frame: Frame,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest frame on top.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The writer thread's whole state: every outbound link of one node plus the
/// shared timer heap.
struct NodeWriter {
    me: NodeId,
    cfg: NetConfig,
    links: HashMap<NodeId, OutLink>,
    /// Redundant connections from simultaneous-dial races; kept open (the peer may
    /// be sending on them) and told goodbye at shutdown.
    spares: Vec<TcpStream>,
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    stats: Arc<NetStats>,
    /// Tells the owning node that a link's socket died and was dropped, so the
    /// node forgets the peer and a later frame re-dials (or fails the node
    /// cleanly) — the same dead-link policy as the direct-write mode.
    link_down: Box<dyn Fn(NodeId) + Send>,
}

impl NodeWriter {
    fn add_link(&mut self, peer: NodeId, stream: TcpStream, weight: f64) {
        match self.links.entry(peer) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OutLink {
                    batch: LinkBatch::new(stream),
                    policy: DelayPolicy::new(&self.cfg, weight, self.me, peer),
                    last_due: Instant::now(),
                });
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.spares.push(stream);
            }
        }
    }

    /// Schedule (or, with no injected latency, directly stage) one frame.
    fn send(&mut self, peer: NodeId, frame: Frame) {
        let Some(link) = self.links.get_mut(&peer) else {
            // The link died and was dropped (heap entries included) in an
            // earlier flush; frames still in flight towards it race the node's
            // LinkDown processing and are lost, exactly like the batch that
            // failed the write.
            return;
        };
        if self.cfg.unit_latency.is_zero() {
            // Instant fast path: no timer heap, straight into the link's batch.
            link.batch.stage(&frame);
        } else {
            let due = link.last_due.max(Instant::now() + link.policy.sample());
            link.last_due = due;
            self.heap.push(Scheduled {
                due,
                seq: self.next_seq,
                peer,
                frame,
            });
            self.next_seq += 1;
        }
    }

    /// Move every frame due at or before `now` (or *every* frame, at shutdown)
    /// from the heap into its link's encode buffer. Each staged frame's
    /// lateness — how long past its due instant it dwelt in the heap before
    /// this pass picked it up — is recorded into
    /// [`HistMetric::TimerDwellNanos`]; a shutdown drain stages not-yet-due
    /// frames at lateness zero (saturated), which keeps the histogram a pure
    /// measure of timer slop.
    fn stage_due(&mut self, now: Instant, drain_all: bool) {
        while self.heap.peek().is_some_and(|s| drain_all || s.due <= now) {
            let s = self.heap.pop().expect("peeked");
            if let Some(link) = self.links.get_mut(&s.peer) {
                self.stats.observe(
                    HistMetric::TimerDwellNanos,
                    now.saturating_duration_since(s.due).as_nanos() as u64,
                );
                link.batch.stage(&s.frame);
            }
        }
    }

    /// Write every non-empty link buffer with one syscall, clearing it for
    /// reuse. A link whose socket errors is dropped (its peer observes EOF) and
    /// reported to the node through `link_down` so a later frame can re-dial.
    fn flush(&mut self) {
        let mut dead = Vec::new();
        for (&peer, link) in &mut self.links {
            if link.batch.flush(&self.stats).is_err() {
                dead.push(peer);
            }
        }
        for peer in dead {
            self.links.remove(&peer);
            // Purge the peer's scheduled frames too: leaving them in the heap
            // would let them race frames staged on a re-dialed replacement link
            // and break per-link FIFO under jitter (their due times predate the
            // new link's). The whole in-flight window to a dead peer is lost,
            // exactly like the batch that failed the write.
            self.heap.retain(|s| s.peer != peer);
            (self.link_down)(peer);
        }
    }

    /// The earliest scheduled due time, if any frame is waiting in the heap.
    fn next_due(&self) -> Option<Instant> {
        self.heap.peek().map(|s| s.due)
    }

    /// Flush everything immediately, half-close every socket (write side, so
    /// the peers drain the goodbyes), and end the thread.
    fn close(mut self) {
        self.stage_due(Instant::now(), true);
        self.flush();
        for link in self.links.values() {
            link.batch.close_write();
        }
        let goodbye_len = Frame::Goodbye.encode().len() as u64;
        for mut spare in std::mem::take(&mut self.spares) {
            // The node never staged traffic on spares, but the peer may still be
            // reading: a goodbye lets its reader finish cleanly. Count it like a
            // link write — the peer's reader counts the bytes, and the
            // sent/received symmetry contract holds only if we do too.
            if Frame::Goodbye.write_to(&mut spare).is_ok() {
                self.stats.inc(Metric::SocketWrites);
                self.stats.inc(Metric::FramesSent);
                self.stats.add(Metric::BytesSent, goodbye_len);
            }
            let _ = spare.shutdown(Shutdown::Write);
        }
    }
}

/// Spawn the single writer thread of node `me`, serving every outbound link the
/// node will ever register. `link_down` is invoked (from the writer thread) for
/// every peer whose socket dies, so the node can forget the link and re-dial.
/// Returns the command handle and the join handle (the runtime joins writers at
/// shutdown so goodbyes are flushed before stats are read).
pub(crate) fn spawn_node_writer(
    me: NodeId,
    cfg: NetConfig,
    stats: Arc<NetStats>,
    link_down: impl Fn(NodeId) + Send + 'static,
) -> (WriterHandle, JoinHandle<()>) {
    let (tx, rx): (Sender<WriterCmd>, Receiver<WriterCmd>) = channel();
    let mut w = NodeWriter {
        me,
        cfg,
        links: HashMap::new(),
        spares: Vec::new(),
        heap: BinaryHeap::new(),
        next_seq: 0,
        stats,
        link_down: Box::new(link_down),
    };
    let handle = std::thread::Builder::new()
        .name(format!("arrow-net-writer-{me}"))
        .spawn(move || {
            loop {
                // Block for the next command, or only until the next scheduled
                // frame comes due — whichever happens first.
                let first = match w.next_due() {
                    None => match rx.recv() {
                        Ok(cmd) => Some(cmd),
                        Err(_) => break, // every sender gone: same as Shutdown
                    },
                    Some(due) => {
                        let now = Instant::now();
                        if due <= now {
                            None
                        } else {
                            match rx.recv_timeout(due - now) {
                                Ok(cmd) => Some(cmd),
                                Err(RecvTimeoutError::Timeout) => None,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    }
                };
                let mut shutdown = false;
                let mut apply = |w: &mut NodeWriter, cmd: WriterCmd| match cmd {
                    WriterCmd::AddLink {
                        peer,
                        stream,
                        weight,
                    } => w.add_link(peer, stream, weight),
                    WriterCmd::Send { peer, frame } => w.send(peer, frame),
                    WriterCmd::Shutdown => shutdown = true,
                };
                if let Some(cmd) = first {
                    apply(&mut w, cmd);
                }
                // Drain the backlog without blocking: everything already enqueued
                // joins this flush cycle, which is what makes bursts coalesce.
                while let Ok(cmd) = rx.try_recv() {
                    apply(&mut w, cmd);
                }
                if shutdown {
                    break;
                }
                w.stage_due(Instant::now(), false);
                w.flush();
            }
            w.close();
        })
        .expect("failed to spawn node writer thread");
    (WriterHandle { tx }, handle)
}

/// Spawn the batched reader for an established connection: whole kernel buffers are
/// read at a time, complete frames are scanned out ([`Frame::scan`]) and forwarded
/// to the node's event loop tagged with the peer they came from. The thread ends on
/// `Goodbye`, EOF, undecodable bytes, or a closed event channel. The returned join
/// handle lets the runtime wait for readers at shutdown, so their file
/// descriptors are provably released before the next runtime spawns.
pub(crate) fn spawn_reader<E, F>(
    mut stream: TcpStream,
    peer: NodeId,
    stats: Arc<NetStats>,
    forward: F,
) -> JoinHandle<()>
where
    F: Fn(NodeId, Frame) -> Result<(), E> + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("arrow-net-reader-{peer}"))
        .spawn(move || {
            let mut buf = vec![0u8; RECV_BUF_INIT];
            let mut start = 0usize; // first unconsumed byte
            let mut end = 0usize; // one past the last filled byte
            loop {
                // Scan every complete frame out of the buffer.
                loop {
                    match Frame::scan(&buf[start..end]) {
                        Ok(Some((Frame::Goodbye, _))) => return, // clean end
                        Ok(Some((frame, used))) => {
                            start += used;
                            if forward(peer, frame).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break, // partial frame: read more
                        Err(_) => return,  // corrupt stream
                    }
                }
                // Compact the consumed prefix away, then make sure at least one
                // maximal frame fits behind `end` before the next read.
                if start > 0 {
                    buf.copy_within(start..end, 0);
                    end -= start;
                    start = 0;
                }
                if buf.len() - end < 4 + crate::wire::MAX_FRAME_LEN as usize {
                    buf.resize(buf.len() * 2, 0);
                }
                match stream.read(&mut buf[end..]) {
                    Ok(0) | Err(_) => return, // EOF or connection error
                    Ok(n) => {
                        end += n;
                        stats.inc(Metric::SocketReads);
                        stats.add(Metric::BytesReceived, n as u64);
                    }
                }
            }
        })
        .expect("failed to spawn link reader thread")
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Dial a peer and run the join handshake (send `Hello{me}`, await `Welcome`),
/// retrying transient failures up to `retries` times with linear backoff before
/// reporting the peer unreachable. This is the budgeted dial the runtime uses
/// ([`NetConfig::dial_retries`]); it is public so failure-injection tests can
/// exercise the budget against a refused address directly.
pub fn dial_with_budget(
    addr: SocketAddr,
    me: NodeId,
    retries: u32,
) -> io::Result<(TcpStream, NodeId)> {
    let mut attempt = 0;
    loop {
        match dial(addr, me) {
            Ok(pair) => return Ok(pair),
            Err(e) if attempt < retries => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(5 * attempt as u64));
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Dial a peer and run the join handshake: send `Hello{me}`, await `Welcome`.
/// Returns the connected stream and the peer's confirmed node id.
pub(crate) fn dial(addr: SocketAddr, me: NodeId) -> io::Result<(TcpStream, NodeId)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    Frame::Hello { node: me }.write_to(&mut stream)?;
    let reply = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    stream.set_read_timeout(None)?;
    match reply {
        Frame::Welcome { node } => Ok((stream, node)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Welcome during handshake, got {other:?}"),
        )),
    }
}

/// Accepter half of the join handshake: await `Hello`, reply `Welcome{me}`.
/// Returns the stream and the dialing peer's node id.
pub(crate) fn accept_handshake(
    mut stream: TcpStream,
    me: NodeId,
) -> io::Result<(TcpStream, NodeId)> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let hello = Frame::read_from(&mut stream).map_err(wire_to_io)?;
    let peer = match hello {
        Frame::Hello { node } => node,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello during handshake, got {other:?}"),
            ))
        }
    };
    Frame::Welcome { node: me }.write_to(&mut stream)?;
    stream.set_read_timeout(None)?;
    Ok((stream, peer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn handshake_exchanges_node_ids() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 7).unwrap()
        });
        let (_stream, peer) = dial(addr, 3).unwrap();
        assert_eq!(peer, 7);
        let (_stream, dialer) = accepter.join().unwrap();
        assert_eq!(dialer, 3);
    }

    #[test]
    fn garbage_handshake_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            accept_handshake(stream, 0)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        stream.write_all(&[0xFF; 16]).unwrap();
        assert!(accepter.join().unwrap().is_err());
    }

    #[test]
    fn synchronous_delay_policy_is_the_scaled_weight() {
        let cfg = NetConfig::synchronous(Duration::from_millis(10));
        let mut p = DelayPolicy::new(&cfg, 3.0, 0, 1);
        assert_eq!(p.sample(), Duration::from_millis(30));
        assert_eq!(p.sample(), Duration::from_millis(30));
    }

    #[test]
    fn asynchronous_delay_respects_the_floor() {
        let cfg = NetConfig::asynchronous(Duration::from_millis(100), 0.4, 11);
        let mut p = DelayPolicy::new(&cfg, 1.0, 2, 5);
        for _ in 0..200 {
            let d = p.sample();
            assert!(
                d >= Duration::from_millis(40),
                "{d:?} under the async floor"
            );
            assert!(
                d <= Duration::from_millis(100),
                "{d:?} over the link weight"
            );
        }
    }

    #[test]
    fn instant_config_injects_nothing() {
        let mut p = DelayPolicy::new(&NetConfig::instant(), 5.0, 0, 1);
        assert_eq!(p.sample(), Duration::ZERO);
    }

    #[test]
    fn from_run_config_carries_the_async_floor_and_seed() {
        use arrow_core::prelude::ProtocolKind;
        let sync = NetConfig::from_run_config(
            &RunConfig::analysis(ProtocolKind::Arrow),
            Duration::from_millis(2),
        );
        assert_eq!(sync, NetConfig::synchronous(Duration::from_millis(2)));
        let run = RunConfig::analysis(ProtocolKind::Arrow)
            .asynchronous(9)
            .with_async_floor(0.25);
        let net = NetConfig::from_run_config(&run, Duration::from_millis(2));
        assert_eq!(net.jitter, Some((0.25, 9)));
    }

    /// A loopback socket pair (dialer side, accepter side), already connected.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dial = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (accepted, _) = listener.accept().unwrap();
        (dial.join().unwrap(), accepted)
    }

    #[test]
    fn writer_coalesces_a_burst_into_few_writes() {
        let (ours, theirs) = socket_pair();
        let stats = Arc::new(NetStats::default());
        // A 20 ms synchronous delay makes the test deterministic: the whole burst
        // is enqueued (microseconds) long before the first frame comes due, so
        // when the timer fires every frame is stageable in the same flush.
        let cfg = NetConfig::synchronous(Duration::from_millis(20));
        let (w, join) = spawn_node_writer(0, cfg, Arc::clone(&stats), |_| {});
        assert!(w.send(WriterCmd::AddLink {
            peer: 1,
            stream: ours,
            weight: 1.0,
        }));
        const BURST: u64 = 200;
        for i in 0..BURST {
            w.send(WriterCmd::Send {
                peer: 1,
                frame: Frame::Token {
                    obj: arrow_core::prelude::ObjectId(0),
                    req: arrow_core::prelude::RequestId(i),
                    epoch: 0,
                },
            });
        }
        std::thread::sleep(Duration::from_millis(60));
        w.send(WriterCmd::Shutdown);
        join.join().unwrap();
        // The peer received every frame intact, in order.
        let mut cursor = std::io::BufReader::new(theirs);
        for i in 0..BURST {
            let frame = Frame::read_from(&mut cursor).unwrap();
            assert_eq!(
                frame,
                Frame::Token {
                    obj: arrow_core::prelude::ObjectId(0),
                    req: arrow_core::prelude::RequestId(i),
                    epoch: 0,
                }
            );
        }
        let snap = stats.snapshot();
        assert_eq!(snap.frames_sent, BURST);
        assert!(
            snap.socket_writes < BURST / 4,
            "{} writes for {BURST} frames: no coalescing",
            snap.socket_writes
        );
        assert!(snap.frames_per_write() > 4.0);
    }

    #[test]
    fn writer_reports_a_dead_link_through_the_link_down_callback() {
        // Regression: the timer writer used to drop a dead link silently, so the
        // node's link set stayed stale and later frames to the peer were lost
        // with no re-dial. Now every dropped link is reported via link_down.
        let (ours, theirs) = socket_pair();
        let (down_tx, down_rx) = channel();
        let stats = Arc::new(NetStats::default());
        let (w, join) = spawn_node_writer(0, NetConfig::instant(), stats, move |peer| {
            down_tx.send(peer).unwrap();
        });
        w.send(WriterCmd::AddLink {
            peer: 9,
            stream: ours,
            weight: 1.0,
        });
        // Kill the peer side, then push frames until a write fails. One write
        // may still succeed into the kernel buffer after the peer closes, so a
        // few frames (with small sleeps so flushes don't coalesce into a single
        // pre-error write) are needed before the socket reports the reset.
        drop(theirs);
        let peer = loop {
            w.send(WriterCmd::Send {
                peer: 9,
                frame: Frame::Goodbye,
            });
            match down_rx.recv_timeout(Duration::from_millis(200)) {
                Ok(peer) => break peer,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => panic!("writer died unreported"),
            }
        };
        assert_eq!(peer, 9);
        // Frames to the dropped peer are discarded, not a panic (they race the
        // node's LinkDown processing).
        w.send(WriterCmd::Send {
            peer: 9,
            frame: Frame::Goodbye,
        });
        w.send(WriterCmd::Shutdown);
        join.join().unwrap();
    }

    #[test]
    fn instant_writer_fast_path_delivers_in_order_with_exact_byte_accounting() {
        let (ours, theirs) = socket_pair();
        let stats = Arc::new(NetStats::default());
        let (w, join) = spawn_node_writer(0, NetConfig::instant(), Arc::clone(&stats), |_| {});
        w.send(WriterCmd::AddLink {
            peer: 1,
            stream: ours,
            weight: 1.0,
        });
        const N: u64 = 100;
        let mut expected_bytes = 0u64;
        for i in 0..N {
            let frame = Frame::Token {
                obj: arrow_core::prelude::ObjectId(0),
                req: arrow_core::prelude::RequestId(i),
                epoch: 0,
            };
            expected_bytes += frame.encode().len() as u64;
            w.send(WriterCmd::Send { peer: 1, frame });
        }
        w.send(WriterCmd::Shutdown);
        join.join().unwrap();
        let mut cursor = std::io::BufReader::new(theirs);
        for i in 0..N {
            assert_eq!(
                Frame::read_from(&mut cursor).unwrap(),
                Frame::Token {
                    obj: arrow_core::prelude::ObjectId(0),
                    req: arrow_core::prelude::RequestId(i),
                    epoch: 0,
                }
            );
        }
        let snap = stats.snapshot();
        assert_eq!(snap.frames_sent, N);
        assert_eq!(snap.bytes_sent, expected_bytes);
        assert!(snap.socket_writes >= 1 && snap.socket_writes <= N);
    }

    #[test]
    fn writer_timer_heap_preserves_link_fifo_under_jitter() {
        let (ours, theirs) = socket_pair();
        let stats = Arc::new(NetStats::default());
        // Heavy jitter on a short latency: frames would reorder without the
        // running due-time floor.
        let cfg = NetConfig::asynchronous(Duration::from_millis(2), 0.0, 99);
        let (w, join) = spawn_node_writer(0, cfg, Arc::clone(&stats), |_| {});
        w.send(WriterCmd::AddLink {
            peer: 1,
            stream: ours,
            weight: 1.0,
        });
        const N: u64 = 50;
        for i in 0..N {
            w.send(WriterCmd::Send {
                peer: 1,
                frame: Frame::Token {
                    obj: arrow_core::prelude::ObjectId(0),
                    req: arrow_core::prelude::RequestId(i),
                    epoch: 0,
                },
            });
        }
        w.send(WriterCmd::Shutdown);
        join.join().unwrap();
        let mut cursor = std::io::BufReader::new(theirs);
        for i in 0..N {
            assert_eq!(
                Frame::read_from(&mut cursor).unwrap(),
                Frame::Token {
                    obj: arrow_core::prelude::ObjectId(0),
                    req: arrow_core::prelude::RequestId(i),
                    epoch: 0,
                },
                "frame {i} out of order"
            );
        }
    }

    #[test]
    fn batched_reader_forwards_a_coalesced_batch() {
        let (mut ours, theirs) = socket_pair();
        let stats = Arc::new(NetStats::default());
        let (tx, rx) = channel();
        let reader = spawn_reader(theirs, 3, Arc::clone(&stats), move |from, frame| {
            tx.send((from, frame))
        });
        // One write carrying many frames: the reader must scan them all out.
        let mut batch = Vec::new();
        for i in 0..64u64 {
            Frame::Token {
                obj: arrow_core::prelude::ObjectId(1),
                req: arrow_core::prelude::RequestId(i),
                epoch: 0,
            }
            .encode_into(&mut batch);
        }
        Frame::Goodbye.encode_into(&mut batch);
        ours.write_all(&batch).unwrap();
        let mut got = Vec::new();
        while let Ok((from, frame)) = rx.recv() {
            assert_eq!(from, 3);
            got.push(frame);
        }
        assert_eq!(got.len(), 64, "goodbye ends the stream after the batch");
        for (i, frame) in got.into_iter().enumerate() {
            assert_eq!(
                frame,
                Frame::Token {
                    obj: arrow_core::prelude::ObjectId(1),
                    req: arrow_core::prelude::RequestId(i as u64),
                    epoch: 0,
                }
            );
        }
        reader.join().unwrap();
        assert!(stats.snapshot().bytes_received >= batch.len() as u64 - 8);
    }
}
