//! The socket-tier arrow runtime: one event loop per node, protocol traffic over
//! loopback TCP, application commands over local handles.
//!
//! Protocol logic is [`arrow_core::live::ArrowCore`] — the exact state machine the
//! thread runtime uses — so the two real-concurrency tiers cannot drift. What this
//! module adds is the distribution: each node owns a listener, an accept loop, and
//! its outbound links (see [`crate::mesh`]); `queue()` frames travel the
//! spanning-tree edges, token grants travel lazily-dialed direct channels.
//!
//! # Hot-path shape
//!
//! The event loop drains its inbound channel in batches (up to `EVENT_BATCH`
//! events per cycle) and translates the accumulated [`CoreAction`]s into frames
//! once per batch. With no injected latency the event loop owns every socket
//! write half itself and flushes each link's coalesced batch with one
//! `write_all`; with injected latency the frames go to the node's single
//! binary-heap timer thread, which coalesces everything due into one write per
//! link. Applications that want to overlap round-trips use the pipelined acquire
//! API ([`NetHandle::start_acquire_object`]): acquires issued from one node for
//! one object are granted in issue order, so a worker can keep several requests
//! in flight and reap grants FIFO instead of lock-stepping on each round trip.
//!
//! Unlike the thread runtime, every node here also journals its protocol history:
//! which requests it issued (with wall-clock issue times) and which
//! successor-notifications it observed. [`NetRuntime::shutdown`] assembles these
//! into a [`NetReport`] whose per-object queuing orders validate through the same
//! [`QueuingOrder`] machinery the simulator harness uses — so a socket run is held
//! to the same correctness contract as a simulated one.

use crate::mesh::{
    self, LinkBatch, NetConfig, NetStats, NetStatsSnapshot, WriterCmd, WriterHandle,
};
use crate::wire::Frame;
use arrow_core::live::{ArrowCore, CoreAction};
use arrow_core::order::OrderError;
use arrow_core::prelude::{
    validate_churn_records, ChurnOrderError, FaultAction, FaultSchedule, ObjectId, OrderRecord,
    ProtoMsg, QueuingOrder, Request, RequestId, RequestSchedule,
};
use arrow_trace::{HistMetric, Metric, MetricsSnapshot, NoProbe, Probe, ProbeEvent};
use desim::{SimTime, SUBTICKS_PER_UNIT};
use netgraph::{NodeId, RootedTree};
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum events one event-loop cycle drains before translating the accumulated
/// core actions into frames — the same batching policy as the thread tier, per
/// the "Batched draining" contract in [`arrow_core::live::core`].
const EVENT_BATCH: usize = arrow_core::live::EVENT_BATCH;

/// Events multiplexed into one node's event loop.
enum NetEvent {
    /// A protocol frame arrived from an established link.
    Frame { from: NodeId, frame: Frame },
    /// The accept loop established an inbound link to `peer`; the node registers
    /// the write half (directly, or with its timer writer).
    LinkUp {
        peer: NodeId,
        stream: TcpStream,
        weight: f64,
    },
    /// The node's timer writer dropped a link whose socket died; forget the
    /// peer so a later frame re-dials (or fails the node cleanly).
    LinkDown { peer: NodeId },
    /// Application command: acquire `obj`'s token; deliver the [`Grant`] on the
    /// reply channel once held (or once the node fails).
    Acquire { obj: ObjectId, reply: Sender<Grant> },
    /// Application command: release `obj`'s token held for `req`.
    Release { obj: ObjectId, req: RequestId },
    /// Some node in the mesh failed (dial retry budget exhausted); the run cannot
    /// complete, so every node fails its pending acquires instead of letting an
    /// acquirer whose grant depended on a dropped frame block forever.
    PeerFailed { failure: NetFailure },
    /// Fault injection ([`NetFaultHandle::crash`]): sever every TCP link abruptly,
    /// discard volatile protocol state, fail in-flight local acquires, and ignore
    /// all traffic until [`NetEvent::Restart`].
    Crash,
    /// Fault injection ([`NetFaultHandle::restart`]): bring a crashed node back
    /// with freshly reset protocol state and re-dial its tree parent.
    Restart,
    /// Recovery-epoch detection broadcast ([`NetFaultHandle::broadcast_epoch`]) —
    /// the control-plane counterpart of an on-wire
    /// [`arrow_core::prelude::ProtoMsg::Epoch`] frame.
    Epoch { epoch: u64 },
    /// Stop the node: send goodbyes, close links, report history.
    Shutdown,
}

/// The outcome of one acquire, delivered on the acquire's reply channel.
///
/// Carries enough context (`node`, `obj`) that many in-flight acquires — even from
/// different nodes — can share one reply channel (see
/// [`NetHandle::start_acquire_object_routed`]): the receiver knows which handle to
/// release through without any out-of-band bookkeeping.
#[derive(Debug)]
pub struct Grant {
    /// The node that issued the acquire.
    pub node: NodeId,
    /// The object that was acquired.
    pub obj: ObjectId,
    /// The granted request id, or the node-level failure that doomed the acquire.
    pub result: Result<RequestId, NetFailure>,
    /// Time from the node processing the acquire to the token arriving, measured
    /// entirely at the issuing node (queue propagation + predecessor wait).
    /// Exactly zero for an acquire rejected because the node had *already*
    /// failed (it never waited); failed grants are otherwise not comparable
    /// latency samples — filter on `result` before recording waits.
    pub wait: Duration,
}

/// A node-level transport failure: the node exhausted its dial retry budget
/// ([`NetConfig::dial_retries`]) against a peer and can no longer participate.
/// Pending and future acquires on the node fail with this instead of blocking
/// forever, and the failure is surfaced in [`NetReport::failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFailure {
    /// The node that observed the failure.
    pub node: NodeId,
    /// Human-readable description (peer and I/O error).
    pub description: String,
}

impl std::fmt::Display for NetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {}: {}", self.node, self.description)
    }
}

/// What one node thread hands back when it stops.
struct NodeJournal {
    issued: Vec<Request>,
    records: Vec<OrderRecord>,
    failures: Vec<NetFailure>,
}

/// How a node's frames reach its sockets.
enum Outbound {
    /// No injected latency: the event loop owns every write half and flushes each
    /// link's coalesced batch with one `write_all` at the end of every drained
    /// event batch — zero intermediate thread wakeups on the token critical path.
    /// Blocking writes cannot deadlock the mesh: readers forward into unbounded
    /// channels and never stall, so every TCP receive buffer always drains.
    Direct {
        links: HashMap<NodeId, LinkBatch>,
        /// Redundant connections from simultaneous-dial races; kept open (the
        /// peer may send on them) and told goodbye at shutdown.
        spares: Vec<TcpStream>,
        /// Peers with frames staged in this batch, in first-staged order.
        dirty: Vec<NodeId>,
    },
    /// Injected latency: frames are scheduled on the node's single binary-heap
    /// timer thread (see [`mesh::spawn_node_writer`]), which coalesces everything
    /// due at flush time into one write per link.
    Timed {
        links: HashSet<NodeId>,
        writer: WriterHandle,
    },
}

/// The state of one socket-tier node, driven by its event loop thread.
///
/// Generic over the probe instrumented into its [`ArrowCore`] — [`NoProbe`]
/// (the default spawn path) compiles every probe hook away, a
/// [`arrow_trace::TraceProbe`] (via [`NetRuntime::spawn_multi_probed`])
/// records the node's protocol transitions for causal trace reconstruction.
struct NetNode<P: Probe> {
    me: NodeId,
    core: ArrowCore<P>,
    actions: Vec<CoreAction>,
    /// Outstanding local acquires: (object, request id) -> (reply channel, issue
    /// instant for the grant's `wait` measurement).
    waiting: HashMap<(ObjectId, RequestId), (Sender<Grant>, Instant)>,
    /// Set once a dial exhausted its retry budget: the node stops sending, fails
    /// all pending and future acquires, and reports the failure at shutdown.
    failed: Option<NetFailure>,
    /// Set while fault injection holds this node down: links are severed, inbound
    /// traffic is swallowed, acquires fail immediately. Cleared by
    /// [`NetEvent::Restart`].
    crashed: bool,
    /// Links severed by fault injection, normalized `(min, max)` and shared with
    /// the [`NetFaultHandle`]; consulted on every send once `faults_armed` is set.
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    /// Cheap hot-path gate: `true` once a fault handle exists, so fault-free runs
    /// never pay the `blocked` lock.
    faults_armed: Arc<AtomicBool>,
    /// The node's send paths.
    out: Outbound,
    addrs: Arc<Vec<SocketAddr>>,
    tree: Arc<RootedTree>,
    cfg: NetConfig,
    stats: Arc<NetStats>,
    /// Sender side of this node's own event channel, cloned into readers this node
    /// spawns when it dials out.
    events_tx: Sender<NetEvent>,
    /// Event channels of *every* node (self included), used only to broadcast
    /// [`NetEvent::PeerFailed`] — a control-plane side channel, like the shared
    /// stop flag, so one node's transport failure fails the whole run cleanly
    /// instead of leaving remote acquirers blocked on frames that were dropped.
    peers_tx: Arc<Vec<Sender<NetEvent>>>,
    /// Shared registry of reader join handles (see [`NetRuntime::shutdown`]).
    readers: Arc<std::sync::Mutex<Vec<JoinHandle<()>>>>,
    epoch: Instant,
    journal: NodeJournal,
}

impl<P: Probe> NetNode<P> {
    fn now(&self) -> SimTime {
        let units = self.epoch.elapsed().as_secs_f64();
        SimTime::from_subticks((units * SUBTICKS_PER_UNIT as f64) as u64)
    }

    fn has_link(&self, peer: NodeId) -> bool {
        match &self.out {
            Outbound::Direct { links, .. } => links.contains_key(&peer),
            Outbound::Timed { links, .. } => links.contains(&peer),
        }
    }

    /// Register an established connection's write half (first connection to a
    /// peer wins; later ones from simultaneous-dial races are parked as spares so
    /// the peer's send path stays open).
    fn register_link(&mut self, peer: NodeId, stream: TcpStream, weight: f64) {
        match &mut self.out {
            Outbound::Direct { links, spares, .. } => match links.entry(peer) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(LinkBatch::new(stream));
                }
                std::collections::hash_map::Entry::Occupied(_) => spares.push(stream),
            },
            Outbound::Timed { links, writer } => {
                // The writer parks duplicate registrations as spares itself.
                writer.send(WriterCmd::AddLink {
                    peer,
                    stream,
                    weight,
                });
                links.insert(peer);
            }
        }
    }

    /// Make sure a send path to `peer` exists, dialing a direct channel on first
    /// use. Transient dial failures (ephemeral-port or fd pressure) are retried up
    /// to the configured budget ([`NetConfig::dial_retries`]); a peer that stays
    /// unreachable is an error — the frame that needed the link cannot be
    /// delivered, so its acquirer must error out rather than block forever.
    fn ensure_link(&mut self, peer: NodeId) -> std::io::Result<()> {
        if self.has_link(peer) {
            return Ok(());
        }
        let (stream, confirmed) =
            mesh::dial_with_budget(self.addrs[peer], self.me, self.cfg.dial_retries)?;
        debug_assert_eq!(confirmed, peer, "address table out of sync");
        self.stats.inc(Metric::ConnectionsDialed);
        let weight = self.tree.distance(self.me, peer);
        let reader_stream = stream.try_clone()?;
        // Register the write half before spawning the reader: any reply the peer
        // provokes must find the link already known.
        self.register_link(peer, stream, weight);
        let events = self.events_tx.clone();
        let reader = mesh::spawn_reader(
            reader_stream,
            peer,
            Arc::clone(&self.stats),
            move |from, frame| events.send(NetEvent::Frame { from, frame }),
        );
        self.readers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(reader);
        Ok(())
    }

    /// Mark this node failed: record the failure, stop accepting work, fail every
    /// pending local acquire, and broadcast the failure to every other node — an
    /// acquirer elsewhere may be waiting on a token grant whose frame this node
    /// just dropped, and it must error out rather than block forever.
    fn fail(&mut self, peer: NodeId, error: &std::io::Error) {
        if self.failed.is_some() {
            return;
        }
        let failure = NetFailure {
            node: self.me,
            description: format!("failed to dial peer {peer}: {error}"),
        };
        self.stats.inc(Metric::DialFailures);
        self.journal.failures.push(failure.clone());
        self.enter_failed_state(failure.clone());
        for (v, tx) in self.peers_tx.iter().enumerate() {
            if v != self.me {
                let _ = tx.send(NetEvent::PeerFailed {
                    failure: failure.clone(),
                });
            }
        }
    }

    /// Fail all pending waiters and refuse future acquires (does not journal —
    /// only the node that observed the dial failure reports it).
    fn enter_failed_state(&mut self, failure: NetFailure) {
        for ((obj, _req), (reply, issued)) in self.waiting.drain() {
            let _ = reply.send(Grant {
                node: self.me,
                obj,
                result: Err(failure.clone()),
                wait: issued.elapsed(),
            });
        }
        self.failed = Some(failure);
    }

    /// Stage one frame towards `to`: straight into the link's batch buffer
    /// (instant config) or onto the node's timer writer (injected latency). The
    /// batch buffers are flushed by [`flush_links`](NetNode::flush_links) at the
    /// end of the current event batch.
    fn send_frame(&mut self, to: NodeId, frame: Frame) {
        // A failed node drops frames immediately: re-running the dial retry
        // budget (with its backoff sleeps) for every frame would stall the event
        // loop and record the same root cause over and over.
        if self.failed.is_some() {
            return;
        }
        // Fault injection: a crashed node is mute, and a severed link swallows
        // traffic in both directions (the set is shared, so either endpoint's
        // send-side check covers the link).
        if self.faults_armed.load(Ordering::Relaxed)
            && (self.crashed
                || self
                    .blocked
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .contains(&(self.me.min(to), self.me.max(to))))
        {
            self.stats.inc(Metric::FramesDropped);
            return;
        }
        if let Err(e) = self.ensure_link(to) {
            if self.cfg.fault_tolerant {
                // Churn mode: the peer is likely down or partitioned. The frame
                // is lost; the next detection-driven epoch bump regenerates any
                // token that died with it, so the run survives.
                self.stats.inc(Metric::FramesDropped);
            } else {
                self.fail(to, &e);
            }
            return;
        }
        match &mut self.out {
            Outbound::Direct { links, dirty, .. } => {
                let link = links.get_mut(&to).expect("ensured above");
                if link.stage(&frame) {
                    dirty.push(to);
                }
            }
            Outbound::Timed { writer, .. } => {
                writer.send(WriterCmd::Send { peer: to, frame });
            }
        }
    }

    /// Write every link batch staged during this event cycle — one `write_all`
    /// per dirty link. No-op in timed mode (the writer thread flushes on its own
    /// clock) and between batches (nothing staged).
    fn flush_links(&mut self) {
        let Outbound::Direct { links, dirty, .. } = &mut self.out else {
            return;
        };
        let mut dead = Vec::new();
        for peer in dirty.drain(..) {
            let Some(link) = links.get_mut(&peer) else {
                continue;
            };
            if link.flush(&self.stats).is_err() {
                dead.push(peer);
            }
        }
        // A link whose socket errored is dropped; its peer observes EOF. A later
        // frame towards that peer re-dials (and fails the node cleanly if the
        // peer is really gone).
        for peer in dead {
            links.remove(&peer);
        }
    }

    /// Translate the core's pending actions into wire frames and wakeups. Called
    /// once per drained event batch: every frame staged here reaches the writer in
    /// one burst and coalesces into at most one `write` per link.
    fn apply_actions(&mut self) {
        let mut actions = std::mem::take(&mut self.actions);
        let mut orphaned: Vec<(ObjectId, RequestId)> = Vec::new();
        for action in actions.drain(..) {
            match action {
                CoreAction::SendQueue {
                    to,
                    obj,
                    req,
                    origin,
                    epoch,
                } => {
                    self.stats.inc(Metric::QueueFrames);
                    self.send_frame(
                        to,
                        Frame::Proto(ProtoMsg::Queue {
                            req,
                            obj,
                            origin,
                            epoch,
                        }),
                    );
                }
                CoreAction::SendToken {
                    to,
                    obj,
                    req,
                    epoch,
                } => {
                    self.stats.inc(Metric::TokenFrames);
                    self.send_frame(to, Frame::Token { obj, req, epoch });
                }
                CoreAction::Granted { obj, req } => {
                    self.stats.inc(Metric::Acquisitions);
                    let delivered =
                        self.waiting
                            .remove(&(obj, req))
                            .is_some_and(|(reply, issued)| {
                                let wait = issued.elapsed();
                                self.stats
                                    .observe(HistMetric::AcquireNanos, wait.as_nanos() as u64);
                                reply
                                    .send(Grant {
                                        node: self.me,
                                        obj,
                                        result: Ok(req),
                                        wait,
                                    })
                                    .is_ok()
                            });
                    if !delivered {
                        orphaned.push((obj, req));
                    }
                }
                CoreAction::Queued {
                    obj,
                    pred,
                    succ,
                    origin,
                    epoch,
                } => {
                    self.journal.records.push(OrderRecord {
                        predecessor: pred,
                        successor: succ,
                        obj,
                        at_node: self.me,
                        informed_at: self.now(),
                        epoch,
                    });
                    let _ = origin;
                }
            }
        }
        self.actions = actions;
        // A grant nobody can receive — the waiter timed out and dropped its
        // reply channel, or a crash cleared the waiting map while the request
        // lived on in the token chain — must not wedge the token here forever:
        // release it on the vanished waiter's behalf so the queue keeps
        // draining. (Recursion is bounded: each pass consumes its orphans.)
        if !orphaned.is_empty() {
            for (obj, req) in orphaned {
                self.stats.inc(Metric::OrphanReleases);
                self.core.probe_mut().record(ProbeEvent::OrphanRelease {
                    obj: obj.0,
                    req: req.0,
                });
                self.core.on_release(obj, req, &mut self.actions);
            }
            self.apply_actions();
        }
    }

    /// Feed one event into the node's state. Core actions accumulate in
    /// `self.actions`; the event loop applies them once per drained batch.
    fn handle(&mut self, event: NetEvent) {
        if self.crashed {
            match event {
                NetEvent::Restart => {
                    self.crashed = false;
                    // Re-attach to the tree like at bootstrap: the crash severed
                    // the parent edge. Best-effort — if the parent is itself down
                    // right now, the next send re-dials (or drops, per the
                    // fault-tolerance policy).
                    if let Some(p) = self.tree.parent(self.me) {
                        let _ = self.ensure_link(p);
                    }
                }
                NetEvent::Acquire { obj, reply } => {
                    // A crashed node refuses work immediately instead of issuing
                    // a request that died with its state.
                    let _ = reply.send(Grant {
                        node: self.me,
                        obj,
                        result: Err(NetFailure {
                            node: self.me,
                            description: "node is crashed (fault injection)".into(),
                        }),
                        wait: Duration::ZERO,
                    });
                }
                NetEvent::LinkUp { stream, .. } => {
                    // A peer may still connect while we are down (the listener is
                    // OS-owned). Dropping the write half closes the socket; the
                    // peer observes the reset and re-dials after our restart.
                    drop(stream);
                }
                NetEvent::Frame { .. } => {
                    // Inbound protocol traffic is swallowed whole — exactly the
                    // silencing the simulator applies to a crashed node.
                    self.stats.inc(Metric::FramesDropped);
                }
                // Releases, link-down notices, failure broadcasts and epoch bumps
                // all die with the node: a crashed node must not learn anything.
                _ => {}
            }
            return;
        }
        match event {
            NetEvent::Frame { from, frame } => match frame {
                Frame::Proto(ProtoMsg::Queue {
                    req,
                    obj,
                    origin,
                    epoch,
                }) => {
                    if origin >= self.addrs.len() {
                        // A corrupt origin decoded off the wire must not become an
                        // out-of-bounds dial target when the token is granted.
                        self.stats.inc(Metric::UnexpectedFrames);
                        return;
                    }
                    self.core
                        .on_queue(from, obj, req, origin, epoch, &mut self.actions)
                }
                Frame::Token { obj, req, epoch } => {
                    self.core.on_token(obj, req, epoch, &mut self.actions)
                }
                Frame::Proto(ProtoMsg::Epoch { epoch }) => self.adopt_epoch(epoch),
                _ => {
                    self.stats.inc(Metric::UnexpectedFrames);
                }
            },
            NetEvent::LinkUp {
                peer,
                stream,
                weight,
            } => {
                self.register_link(peer, stream, weight);
            }
            NetEvent::Acquire { obj, reply } => {
                // A failed node cannot reach the mesh: error out immediately
                // instead of issuing a request whose token can never arrive.
                if let Some(failure) = &self.failed {
                    let _ = reply.send(Grant {
                        node: self.me,
                        obj,
                        result: Err(failure.clone()),
                        wait: Duration::ZERO,
                    });
                    return;
                }
                let time = self.now();
                self.stats.inc(Metric::RequestsIssued);
                let req = self.core.acquire(obj, &mut self.actions);
                // Register the waiter before applying actions: the grant may already
                // be among them (local sink whose predecessor was released).
                self.waiting.insert((obj, req), (reply, Instant::now()));
                self.journal.issued.push(Request {
                    id: req,
                    node: self.me,
                    time,
                    obj,
                });
            }
            NetEvent::LinkDown { peer } => {
                // Only the timer writer reports these (the direct-write mode
                // drops dead links inline in flush_links).
                if let Outbound::Timed { links, .. } = &mut self.out {
                    links.remove(&peer);
                }
            }
            NetEvent::Release { obj, req } => self.core.on_release(obj, req, &mut self.actions),
            NetEvent::PeerFailed { failure } => {
                if self.failed.is_none() {
                    self.enter_failed_state(failure);
                }
            }
            NetEvent::Crash => {
                // Order matters: sever first (peers observe an abrupt close, not
                // a polite Goodbye), then lose the volatile state, then fail the
                // in-flight acquires — their requests just died with the core.
                self.sever_links();
                self.core.reboot();
                self.actions.clear();
                let failure = NetFailure {
                    node: self.me,
                    description: "node crashed (fault injection)".into(),
                };
                for ((obj, _req), (reply, issued)) in self.waiting.drain() {
                    let _ = reply.send(Grant {
                        node: self.me,
                        obj,
                        result: Err(failure.clone()),
                        wait: issued.elapsed(),
                    });
                }
                self.crashed = true;
            }
            NetEvent::Restart => {} // not crashed: a stray restart is a no-op
            NetEvent::Epoch { epoch } => self.adopt_epoch(epoch),
            NetEvent::Shutdown => unreachable!("handled by the event loop"),
        }
    }

    /// Feed an epoch announcement (on-wire frame or control-plane broadcast) to
    /// the core, counting actual adoptions — the core ignores epochs it has
    /// already reached, so comparing before/after distinguishes an adoption
    /// from a redundant re-broadcast.
    fn adopt_epoch(&mut self, epoch: u64) {
        let before = self.core.epoch();
        self.core.on_epoch(epoch, &mut self.actions);
        if self.core.epoch() > before {
            self.stats.inc(Metric::EpochsAdopted);
        }
    }

    /// Cut every established connection without a Goodbye — the TCP half of a
    /// crash. Peers' readers observe EOF/reset; their next frame towards this
    /// node re-dials (the listener is OS-owned and stays up even while crashed).
    fn sever_links(&mut self) {
        match &mut self.out {
            Outbound::Direct {
                links,
                spares,
                dirty,
            } => {
                dirty.clear();
                for (_, link) in links.drain() {
                    link.shutdown();
                }
                for spare in spares.drain(..) {
                    let _ = spare.shutdown(std::net::Shutdown::Both);
                }
            }
            Outbound::Timed { links, .. } => {
                // The timer writer owns the sockets. Forgetting the peers here
                // makes the node re-register links after restart (the writer
                // parks duplicates as spares); crash silencing itself is enforced
                // by the event-loop guard and the send-side drop either way.
                links.clear();
            }
        }
    }

    /// Say goodbye on every link and close the sockets: directly (instant
    /// config), or by stopping the timer writer, which flushes everything still
    /// scheduled first (injected latency).
    fn disconnect(&mut self) {
        match &mut self.out {
            Outbound::Direct { links, spares, .. } => {
                for link in links.values_mut() {
                    link.stage(&Frame::Goodbye);
                    let _ = link.flush(&self.stats);
                    // Write-side half-close only: a full shutdown would race
                    // the peer's own goodbye and discard it unread, breaking
                    // the sent/received byte symmetry.
                    link.close_write();
                }
                links.clear();
                let goodbye_len = Frame::Goodbye.encode().len() as u64;
                for spare in spares.drain(..) {
                    let mut spare = spare;
                    // Counted like a link write: the peer's reader counts these
                    // bytes, and the sent/received symmetry contract
                    // (see [`NetStatsSnapshot::bytes_sent`]) holds only if the
                    // sender does too.
                    if Frame::Goodbye.write_to(&mut spare).is_ok() {
                        self.stats.inc(Metric::SocketWrites);
                        self.stats.inc(Metric::FramesSent);
                        self.stats.add(Metric::BytesSent, goodbye_len);
                    }
                    let _ = spare.shutdown(std::net::Shutdown::Write);
                }
            }
            Outbound::Timed { links, writer } => {
                for &peer in links.iter() {
                    writer.send(WriterCmd::Send {
                        peer,
                        frame: Frame::Goodbye,
                    });
                }
                links.clear();
                writer.send(WriterCmd::Shutdown);
            }
        }
    }
}

/// The distributed arrow directory runtime: every node of the spanning tree is an
/// independent peer whose protocol traffic travels real loopback TCP sockets.
///
/// See the [crate docs](crate) for the architecture; see [`NetRuntime::shutdown`]
/// for the validation story.
pub struct NetRuntime {
    events_txs: Vec<Sender<NetEvent>>,
    node_threads: Vec<JoinHandle<NodeJournal>>,
    accept_threads: Vec<JoinHandle<()>>,
    writer_threads: Vec<JoinHandle<()>>,
    /// Reader threads of every connection (pushed by accept loops and dialing
    /// nodes); joined at shutdown so every socket fd is released before
    /// [`NetRuntime::shutdown`] returns — back-to-back runtimes on one machine
    /// would otherwise accumulate fds of still-exiting readers.
    readers: Arc<std::sync::Mutex<Vec<JoinHandle<()>>>>,
    /// The *real* listener addresses (shutdown wakes every accept loop through
    /// them, even when the dial table advertises overridden addresses).
    listen_addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    /// Links severed by fault injection, shared with every node and the
    /// [`NetFaultHandle`].
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    /// Hot-path gate for the `blocked` check; set by [`NetRuntime::fault_handle`].
    faults_armed: Arc<AtomicBool>,
    n: usize,
    k: usize,
}

impl NetRuntime {
    /// Spawn a single-object socket runtime over the given rooted spanning tree.
    pub fn spawn(tree: &RootedTree, cfg: NetConfig) -> Self {
        NetRuntime::spawn_multi(tree, 1, cfg)
    }

    /// Spawn the socket runtime over the given rooted spanning tree, serving
    /// `objects` independent mobile objects. Every object's token initially sits at
    /// the tree root, already released.
    ///
    /// Bootstrap: every node binds a loopback listener; once all listeners exist,
    /// every non-root node dials its tree parent and runs the `Hello`/`Welcome`
    /// handshake, materializing exactly the spanning-tree edges. Direct token
    /// channels are dialed lazily on first grant.
    ///
    /// # Panics
    /// If `objects` is zero, or a loopback socket cannot be bound.
    pub fn spawn_multi(tree: &RootedTree, objects: usize, cfg: NetConfig) -> Self {
        NetRuntime::spawn_multi_with_addr_overrides(tree, objects, cfg, &[])
    }

    /// Fault-injection variant of [`NetRuntime::spawn_multi`]: every entry of
    /// `addr_overrides` replaces the advertised address of one node in the shared
    /// address table, so every dial *towards* that node goes to the given address
    /// instead of its real listener. Overriding with the address of a dropped
    /// listener (connection refused) exercises the dial retry budget and the clean
    /// failure path: the dialing node marks itself failed, its pending acquires
    /// error out, and [`NetRuntime::shutdown`] still completes, reporting the
    /// failure in [`NetReport::failures`].
    ///
    /// # Panics
    /// If `objects` is zero, a loopback socket cannot be bound, or an override
    /// names a node outside the tree.
    pub fn spawn_multi_with_addr_overrides(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        addr_overrides: &[(NodeId, SocketAddr)],
    ) -> Self {
        NetRuntime::spawn_inner(tree, objects, cfg, addr_overrides, |_| NoProbe)
    }

    /// Like [`NetRuntime::spawn_multi`], with a per-node probe instrumented into
    /// every node's [`ArrowCore`] — `probe_for(v)` builds node `v`'s probe
    /// (typically [`arrow_trace::TraceRecorder::wall_probe`]). Probes ride the
    /// node event-loop threads and are dropped — flushing any buffered trace
    /// events — before [`NetRuntime::shutdown`] returns, so a recorder can be
    /// finished immediately afterwards. The default spawn path monomorphizes
    /// with [`NoProbe`] and pays nothing.
    pub fn spawn_multi_probed<P: Probe>(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        probe_for: impl FnMut(NodeId) -> P,
    ) -> Self {
        NetRuntime::spawn_inner(tree, objects, cfg, &[], probe_for)
    }

    fn spawn_inner<P: Probe>(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        addr_overrides: &[(NodeId, SocketAddr)],
        mut probe_for: impl FnMut(NodeId) -> P,
    ) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        let n = tree.node_count();
        let tree = Arc::new(tree.clone());
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("failed to bind loopback");
            addrs.push(listener.local_addr().expect("listener has an address"));
            listeners.push(listener);
        }
        let listen_addrs = addrs.clone();
        for &(node, addr) in addr_overrides {
            assert!(node < n, "override names node {node} outside the tree");
            addrs[node] = addr;
        }
        let addrs = Arc::new(addrs);

        let mut events_txs = Vec::with_capacity(n);
        let mut events_rxs: Vec<Receiver<NetEvent>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            events_txs.push(tx);
            events_rxs.push(rx);
        }

        // With injected latency, one timer-writer thread per node serves all of
        // the node's outbound links; with the instant config the event loops
        // write directly and no writer threads exist at all.
        let timed = !cfg.unit_latency.is_zero();
        let mut writers = Vec::new();
        let mut writer_threads = Vec::new();
        if timed {
            for (me, events_tx) in events_txs.iter().enumerate() {
                let events = events_tx.clone();
                let (handle, join) =
                    mesh::spawn_node_writer(me, cfg, Arc::clone(&stats), move |peer| {
                        let _ = events.send(NetEvent::LinkDown { peer });
                    });
                writers.push(handle);
                writer_threads.push(join);
            }
        }

        // Accept loops next: once these run, any node can dial any listener.
        let readers: Arc<std::sync::Mutex<Vec<JoinHandle<()>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut accept_threads = Vec::with_capacity(n);
        for (me, listener) in listeners.into_iter().enumerate() {
            let events = events_txs[me].clone();
            let readers = Arc::clone(&readers);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let tree = Arc::clone(&tree);
            let handle = std::thread::Builder::new()
                .name(format!("arrow-net-accept-{me}"))
                .spawn(move || loop {
                    let (stream, _) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Back off on persistent errors (e.g. fd exhaustion)
                            // instead of spinning the CPU the writers need.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            continue;
                        }
                    };
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let (stream, peer) = match mesh::accept_handshake(stream, me) {
                        Ok(pair) => pair,
                        Err(_) => continue,
                    };
                    if peer >= tree.node_count() {
                        // A dialer claiming an out-of-range id is not part of this
                        // mesh; admitting it would index tree/address tables out of
                        // bounds.
                        stats.inc(Metric::UnexpectedFrames);
                        continue;
                    }
                    stats.inc(Metric::ConnectionsAccepted);
                    let reader_stream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let weight = tree.distance(me, peer);
                    // Hand the write half to the event loop, then start reading:
                    // a frame can only provoke a reply after the node processed
                    // LinkUp, so the send path always exists before the first
                    // send.
                    if events
                        .send(NetEvent::LinkUp {
                            peer,
                            stream,
                            weight,
                        })
                        .is_err()
                    {
                        break;
                    }
                    let forward = events.clone();
                    let reader = mesh::spawn_reader(
                        reader_stream,
                        peer,
                        Arc::clone(&stats),
                        move |from, frame| forward.send(NetEvent::Frame { from, frame }),
                    );
                    readers
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(reader);
                })
                .expect("failed to spawn accept thread");
            accept_threads.push(handle);
        }

        // Node event loops; each non-root node dials its parent during startup.
        let peers_tx = Arc::new(events_txs.clone());
        let blocked = Arc::new(Mutex::new(HashSet::new()));
        let faults_armed = Arc::new(AtomicBool::new(false));
        let mut node_threads = Vec::with_capacity(n);
        for (me, rx) in events_rxs.into_iter().enumerate() {
            let mut node = NetNode {
                me,
                core: ArrowCore::for_tree_with_probe(me, &tree, objects, probe_for(me)),
                actions: Vec::new(),
                waiting: HashMap::new(),
                failed: None,
                crashed: false,
                blocked: Arc::clone(&blocked),
                faults_armed: Arc::clone(&faults_armed),
                out: if timed {
                    Outbound::Timed {
                        links: HashSet::new(),
                        writer: writers[me].clone(),
                    }
                } else {
                    Outbound::Direct {
                        links: HashMap::new(),
                        spares: Vec::new(),
                        dirty: Vec::new(),
                    }
                },
                addrs: Arc::clone(&addrs),
                tree: Arc::clone(&tree),
                cfg,
                stats: Arc::clone(&stats),
                events_tx: events_txs[me].clone(),
                peers_tx: Arc::clone(&peers_tx),
                readers: Arc::clone(&readers),
                epoch,
                journal: NodeJournal {
                    issued: Vec::new(),
                    records: Vec::new(),
                    failures: Vec::new(),
                },
            };
            let parent = tree.parent(me);
            let handle = std::thread::Builder::new()
                .name(format!("arrow-net-node-{me}"))
                .spawn(move || {
                    if let Some(p) = parent {
                        // Materialize the tree edge to the parent eagerly. An
                        // unreachable parent marks the node failed instead of
                        // panicking the thread: the event loop still runs, so
                        // acquires error out and shutdown joins stay clean.
                        if let Err(e) = node.ensure_link(p) {
                            node.fail(p, &e);
                        }
                    }
                    let mut stop = false;
                    while !stop {
                        let Ok(first) = rx.recv() else { break };
                        let mut next = Some(first);
                        let mut drained = 0;
                        while let Some(event) = next.take() {
                            if matches!(event, NetEvent::Shutdown) {
                                stop = true;
                                break;
                            }
                            node.handle(event);
                            drained += 1;
                            if drained >= EVENT_BATCH {
                                break;
                            }
                            next = rx.try_recv().ok();
                        }
                        node.apply_actions();
                        node.flush_links();
                    }
                    node.stats
                        .add(Metric::StaleEpochDrops, node.core.stale_drops());
                    node.disconnect();
                    node.journal
                })
                .expect("failed to spawn node thread");
            node_threads.push(handle);
        }

        NetRuntime {
            events_txs,
            node_threads,
            accept_threads,
            writer_threads,
            readers,
            listen_addrs,
            stop,
            stats,
            blocked,
            faults_armed,
            n,
            k: objects,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of objects served.
    pub fn object_count(&self) -> usize {
        self.k
    }

    /// Shared runtime statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// A handle for the application running at node `v`.
    pub fn handle(&self, v: NodeId) -> NetHandle {
        assert!(v < self.n, "node {v} out of range");
        NetHandle {
            node: v,
            objects: self.k,
            sender: self.events_txs[v].clone(),
        }
    }

    /// Fault-injection handle: kill and respawn nodes, sever and restore TCP
    /// links, and broadcast the detection-driven epoch bumps that trigger token
    /// regeneration — the socket-tier counterpart of the thread tier's
    /// [`arrow_core::live::FaultHandle`] and the simulator's scheduled
    /// [`desim::SimFault`]s. Pair it with [`NetConfig::with_fault_tolerance`] so a
    /// node dialing a currently-dead peer drops the frame instead of failing the
    /// whole run.
    pub fn fault_handle(&self) -> NetFaultHandle {
        self.faults_armed.store(true, Ordering::Relaxed);
        NetFaultHandle {
            senders: self.events_txs.clone(),
            blocked: Arc::clone(&self.blocked),
        }
    }

    /// Stop every peer (goodbye handshakes, sockets closed) and assemble the run's
    /// [`NetReport`]. Call only once all application-level acquires have returned —
    /// a request still waiting for its token would never be granted.
    pub fn shutdown(mut self) -> NetReport {
        self.stop.store(true, Ordering::Relaxed);
        for tx in &self.events_txs {
            let _ = tx.send(NetEvent::Shutdown);
        }
        let mut issued = Vec::new();
        let mut records = Vec::new();
        let mut failures = Vec::new();
        for t in self.node_threads.drain(..) {
            if let Ok(journal) = t.join() {
                issued.extend(journal.issued);
                records.extend(journal.records);
                failures.extend(journal.failures);
            }
        }
        // Wake the accept loops: a bare connection that never handshakes makes
        // accept() return, after which the loop observes the stop flag. Use the
        // real listener addresses — the dial table may carry fault-injection
        // overrides that would miss the listeners.
        for addr in &self.listen_addrs {
            let _ = TcpStream::connect(addr);
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Writers exit on the Shutdown command their node sent in disconnect()
        // (or when the last command sender drops); joining them makes the
        // frames/bytes counters final before the snapshot below.
        for t in self.writer_threads.drain(..) {
            let _ = t.join();
        }
        // Every node closed its sockets in disconnect(), so all readers observe
        // EOF promptly; joining them releases their fds before this returns,
        // keeping back-to-back runtimes inside the process fd budget.
        let readers = std::mem::take(
            &mut *self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for t in readers {
            let _ = t.join();
        }
        issued.sort_by_key(|r| (r.time, r.id));
        NetReport {
            schedule: RequestSchedule::from_requests(issued),
            records,
            failures,
            stats: self.stats.snapshot(),
            metrics: self.stats.metrics(),
        }
    }
}

/// Fault-injection handle of a running [`NetRuntime`] (see
/// [`NetRuntime::fault_handle`]). Crash/restart are delivered through the target
/// node's own event channel; link drops act through a shared blocked-set checked
/// on every send. The epoch numbering contract is shared with the thread tier:
/// fault event `i` of a schedule is followed by the broadcast of epoch `i + 1`.
#[derive(Debug, Clone)]
pub struct NetFaultHandle {
    senders: Vec<Sender<NetEvent>>,
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
}

impl NetFaultHandle {
    /// Crash node `v`: its TCP links are cut abruptly, its volatile protocol
    /// state is discarded, in-flight local acquires fail promptly, and all
    /// traffic is ignored until [`restart`].
    ///
    /// [`restart`]: NetFaultHandle::restart
    pub fn crash(&self, v: NodeId) {
        let _ = self.senders[v].send(NetEvent::Crash);
    }

    /// Restart crashed node `v` with freshly reset protocol state; it re-dials
    /// its tree parent and rejoins at the next epoch bump.
    pub fn restart(&self, v: NodeId) {
        let _ = self.senders[v].send(NetEvent::Restart);
    }

    /// Sever the link between `u` and `v` (both directions): frames staged across
    /// it are dropped at the sender until [`restore_link`].
    ///
    /// [`restore_link`]: NetFaultHandle::restore_link
    pub fn drop_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((u.min(v), u.max(v)));
    }

    /// Restore a severed link.
    pub fn restore_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(u.min(v), u.max(v)));
    }

    /// Broadcast a detection-driven epoch bump to every node. Crashed nodes miss
    /// it (a crashed node must not learn anything) and catch up from stamped live
    /// traffic or a later broadcast after restart.
    pub fn broadcast_epoch(&self, epoch: u64) {
        for tx in &self.senders {
            let _ = tx.send(NetEvent::Epoch { epoch });
        }
    }

    /// Apply one fault action, then broadcast the epoch bump its detection
    /// triggers. The ordering mirrors the thread tier: per-channel FIFO
    /// guarantees a crashed node misses its own bump and a restarted node sees
    /// the Restart before the Epoch.
    ///
    /// # Panics
    /// On [`FaultAction::PartitionTree`] — lower the schedule against a tree
    /// first ([`FaultSchedule::lowered`]).
    pub fn apply(&self, action: &FaultAction, epoch: u64) {
        match *action {
            FaultAction::CrashNode(v) => self.crash(v),
            FaultAction::RestartNode(v) => self.restart(v),
            FaultAction::DropLink(u, v) => self.drop_link(u, v),
            FaultAction::RestoreLink(u, v) => self.restore_link(u, v),
            FaultAction::PartitionTree(_) => {
                panic!("partition faults must be lowered to link drops first")
            }
        }
        self.broadcast_epoch(epoch);
    }

    /// Drive a whole fault schedule against the running mesh, pacing schedule
    /// ticks to `tick` of wall clock (blocking; run it on a dedicated injector
    /// thread). Event `i` is followed by the broadcast of epoch `i + 1` —
    /// the same detection model as the simulator harness and the thread tier.
    pub fn run_schedule(&self, schedule: &FaultSchedule, tree: &RootedTree, tick: Duration) {
        let lowered = schedule.lowered(tree);
        let started = Instant::now();
        for (i, ev) in lowered.events.iter().enumerate() {
            let due = started + tick * ev.at as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            self.apply(&ev.action, (i + 1) as u64);
        }
    }
}

/// The application-facing handle of one socket-tier node: token acquire/release
/// per object — blocking ([`acquire_object`]), failure-typed ([`try_acquire_object`])
/// or pipelined ([`start_acquire_object`]).
///
/// [`acquire_object`]: NetHandle::acquire_object
/// [`try_acquire_object`]: NetHandle::try_acquire_object
/// [`start_acquire_object`]: NetHandle::start_acquire_object
#[derive(Debug, Clone)]
pub struct NetHandle {
    node: NodeId,
    objects: usize,
    sender: Sender<NetEvent>,
}

impl NetHandle {
    /// This handle's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn check_object(&self, obj: ObjectId) {
        assert!(
            (obj.0 as usize) < self.objects,
            "object {obj} out of range (runtime serves {} objects)",
            self.objects
        );
    }

    /// Issue a queuing request for the default object and block until this node
    /// holds its token.
    pub fn acquire(&self) -> RequestId {
        self.acquire_object(ObjectId::DEFAULT)
    }

    /// Issue a queuing request for `obj` and block until this node holds that
    /// object's token. Returns the id of the granted request, which must be passed
    /// to [`release_object`] with the same object.
    ///
    /// # Panics
    /// If the node failed to reach the mesh (see [`try_acquire_object`] for the
    /// non-panicking variant) or the runtime has shut down.
    ///
    /// [`release_object`]: NetHandle::release_object
    /// [`try_acquire_object`]: NetHandle::try_acquire_object
    pub fn acquire_object(&self, obj: ObjectId) -> RequestId {
        self.try_acquire_object(obj)
            .unwrap_or_else(|failure| panic!("acquire failed: {failure}"))
    }

    /// Issue a queuing request for the default object; a node-level transport
    /// failure comes back as [`NetFailure`] instead of blocking forever.
    pub fn try_acquire(&self) -> Result<RequestId, NetFailure> {
        self.try_acquire_object(ObjectId::DEFAULT)
    }

    /// Like [`acquire_object`], but a node that cannot reach the mesh (dial retry
    /// budget exhausted) fails the acquire with a [`NetFailure`] instead of
    /// panicking or blocking forever.
    ///
    /// [`acquire_object`]: NetHandle::acquire_object
    pub fn try_acquire_object(&self, obj: ObjectId) -> Result<RequestId, NetFailure> {
        self.start_acquire_object(obj).wait()
    }

    /// Like [`try_acquire_object`], but give up after `timeout` with a synthetic
    /// [`NetFailure`] — a grant that never arrives (absent an application that
    /// holds tokens that long) indicates a lost token, i.e. a protocol bug. The
    /// conformance drivers use this so a grant-chain deadlock becomes a recorded
    /// failure instead of a hung sweep.
    ///
    /// [`try_acquire_object`]: NetHandle::try_acquire_object
    pub fn try_acquire_object_timeout(
        &self,
        obj: ObjectId,
        timeout: Duration,
    ) -> Result<RequestId, NetFailure> {
        self.start_acquire_object(obj).wait_timeout(timeout)
    }

    /// Issue a queuing request for `obj` **without blocking** and return a
    /// [`PendingAcquire`] that resolves when the token arrives.
    ///
    /// This is the pipelining primitive: consecutive acquires issued through one
    /// node's handles for one object are queued directly behind each other (the
    /// node is its own sink after the first), so their grants arrive **in issue
    /// order** and a worker can keep a window of requests in flight, reaping
    /// grants FIFO, instead of paying a full queue/token round-trip per acquire.
    ///
    /// # Panics
    /// If `obj` is out of range or the runtime has shut down.
    pub fn start_acquire_object(&self, obj: ObjectId) -> PendingAcquire {
        self.check_object(obj);
        let (reply_tx, reply_rx) = channel();
        self.sender
            .send(NetEvent::Acquire {
                obj,
                reply: reply_tx,
            })
            .expect("runtime has shut down");
        PendingAcquire {
            node: self.node,
            obj,
            rx: reply_rx,
        }
    }

    /// Issue a queuing request for `obj` whose [`Grant`] is delivered on the
    /// caller-supplied channel instead of a dedicated one.
    ///
    /// Because a [`Grant`] carries its issuing node and object, **many in-flight
    /// acquires — across nodes and objects — can share one channel**: an open-loop
    /// driver issues requests as its workload dictates and a single reaper
    /// receives grants in arrival order, releasing each through the right handle.
    /// Grants for one `(node, object)` stream arrive in issue order; grants across
    /// streams arrive in whatever order the tokens land.
    ///
    /// # Panics
    /// If `obj` is out of range or the runtime has shut down.
    pub fn start_acquire_object_routed(&self, obj: ObjectId, reply: &Sender<Grant>) {
        self.check_object(obj);
        self.sender
            .send(NetEvent::Acquire {
                obj,
                reply: reply.clone(),
            })
            .expect("runtime has shut down");
    }

    /// Release the default object's token held for `req`.
    pub fn release(&self, req: RequestId) {
        self.release_object(ObjectId::DEFAULT, req);
    }

    /// Release `obj`'s token held for `req`, letting it move on to the successor.
    pub fn release_object(&self, obj: ObjectId, req: RequestId) {
        self.sender
            .send(NetEvent::Release { obj, req })
            .expect("runtime has shut down");
    }
}

/// One in-flight acquire issued with [`NetHandle::start_acquire_object`]: a future
/// for the [`Grant`], resolved by [`wait`](PendingAcquire::wait).
#[derive(Debug)]
pub struct PendingAcquire {
    node: NodeId,
    obj: ObjectId,
    rx: Receiver<Grant>,
}

impl PendingAcquire {
    /// The node the acquire was issued at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The object being acquired.
    pub fn obj(&self) -> ObjectId {
        self.obj
    }

    /// Block until the token arrives (or the node fails).
    pub fn wait(self) -> Result<RequestId, NetFailure> {
        self.rx.recv().expect("runtime has shut down").result
    }

    /// Block until the token arrives, with the grant's queue-wait measurement.
    pub fn wait_grant(self) -> Grant {
        self.rx.recv().expect("runtime has shut down")
    }

    /// Like [`wait`](PendingAcquire::wait), but give up after `timeout` with a
    /// synthetic [`NetFailure`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<RequestId, NetFailure> {
        match self.rx.recv_timeout(timeout) {
            Ok(grant) => grant.result,
            Err(_) => Err(NetFailure {
                node: self.node,
                description: format!(
                    "acquire of {} not granted within {timeout:?} — possible lost token",
                    self.obj
                ),
            }),
        }
    }
}

/// Everything a socket run leaves behind: the reconstructed request schedule
/// (wall-clock issue times, in seconds), the successor-notification records every
/// node journaled, and the runtime statistics.
#[derive(Debug, Clone)]
pub struct NetReport {
    schedule: RequestSchedule,
    records: Vec<OrderRecord>,
    failures: Vec<NetFailure>,
    stats: NetStatsSnapshot,
    metrics: MetricsSnapshot,
}

impl NetReport {
    /// The requests issued during the run, in non-decreasing issue-time order.
    /// Times are wall-clock seconds since the runtime was spawned.
    pub fn schedule(&self) -> &RequestSchedule {
        &self.schedule
    }

    /// The successor notifications journaled by all nodes.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Transport failures observed during the run (empty on a healthy mesh): one
    /// entry per node that exhausted its dial retry budget.
    pub fn failures(&self) -> &[NetFailure] {
        &self.failures
    }

    /// Runtime statistics at shutdown.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats
    }

    /// The full metrics-registry snapshot at shutdown: the counters of
    /// [`NetReport::stats`] plus the socket tier's histograms (write coalescing,
    /// timer-heap lateness, acquire latency), in the schema shared with the
    /// thread tier's [`arrow_core::live::LiveReport::metrics`].
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Assemble and validate the queuing order of every object that saw at least
    /// one request — the same per-object validation contract the simulator harness
    /// enforces: every request queued exactly once, one unbroken successor chain
    /// from the object's virtual root request.
    pub fn validated_orders(&self) -> Result<Vec<(ObjectId, QueuingOrder)>, OrderError> {
        arrow_core::order::per_object_orders(&self.records, &self.schedule).map_err(|(_, e)| e)
    }

    /// Validate the run's order records under churn: every `(object, epoch)`
    /// group must be fork-free, and `final_epoch` (the epoch the mesh converged
    /// to after the last fault's detection bump) must form one complete successor
    /// chain per object — the relaxed contract of
    /// [`arrow_core::order::validate_churn_records`], replacing
    /// [`validated_orders`](NetReport::validated_orders) for runs with faults
    /// (across epochs a request may legitimately be queued twice: once in an
    /// abandoned epoch, once re-issued after recovery).
    pub fn validate_churn(&self, final_epoch: u64) -> Result<(), ChurnOrderError> {
        validate_churn_records(&self.records, final_epoch)
    }

    /// Successor records that evidence a token regeneration: a request queued
    /// directly behind the *regenerated* virtual root request of a recovery
    /// epoch. At least one of these proves a token died with a fault and the
    /// directory minted a replacement at the tree root.
    pub fn token_regenerations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.epoch > 0 && r.predecessor.is_root())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn spawn_and_shutdown_with_no_traffic() {
        let rt = NetRuntime::spawn(&tree(5), NetConfig::instant());
        assert_eq!(rt.node_count(), 5);
        assert_eq!(rt.object_count(), 1);
        let report = rt.shutdown();
        assert!(report.schedule().is_empty());
        assert!(report.records().is_empty());
        assert_eq!(report.stats().acquisitions, 0);
        // An immediate shutdown may race the bootstrap dials, but never exceeds the
        // tree edges when no token ever moved.
        assert!(report.stats().connections_dialed <= 4);
    }

    #[test]
    fn single_remote_acquire_crosses_real_sockets() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 1);
        assert!(
            report.stats().queue_frames >= 1,
            "leaf request crossed links"
        );
        assert!(report.stats().token_frames >= 1, "token travelled back");
        assert!(report.stats().bytes_sent > 0);
        assert!(
            report.stats().bytes_received > 0,
            "readers count their bytes"
        );
        assert!(report.stats().socket_writes >= 1);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].1.len(), 1);
    }

    #[test]
    fn sequential_acquires_from_every_node_validate() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 7);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders[0].1.len(), 7);
    }

    #[test]
    fn concurrent_multi_object_acquires_all_complete_and_validate() {
        let k = 3;
        let rt = Arc::new(NetRuntime::spawn_multi(&tree(7), k, NetConfig::instant()));
        let mut joins = Vec::new();
        for v in 0..7 {
            let h = rt.handle(v);
            joins.push(std::thread::spawn(move || {
                for round in 0..4 {
                    let obj = ObjectId(((v + round) % k) as u32);
                    let req = h.acquire_object(obj);
                    h.release_object(obj, req);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let rt = Arc::try_unwrap(rt).ok().unwrap();
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 7 * 4);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders.len(), k);
        let total: usize = orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, report.schedule().len());
    }

    #[test]
    fn pipelined_acquires_grant_in_issue_order_per_stream() {
        // The pipelining contract: consecutive acquires from one node for one
        // object are granted in issue order, so a worker can keep a window in
        // flight and reap FIFO.
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(5);
        const WINDOW: usize = 8;
        let pendings: Vec<PendingAcquire> = (0..WINDOW)
            .map(|_| h.start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let mut granted = Vec::new();
        for p in pendings {
            let grant = p.wait_grant();
            let req = grant.result.expect("healthy mesh grants");
            assert_eq!(grant.node, 5);
            assert_eq!(grant.obj, ObjectId::DEFAULT);
            granted.push(req);
            h.release(req);
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, WINDOW as u64);
        // The validated order lists exactly our stream, in issue order.
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders[0].1.order(), granted.as_slice());
    }

    #[test]
    fn routed_grants_share_one_channel_across_nodes_and_objects() {
        let k = 2;
        let rt = NetRuntime::spawn_multi(&tree(7), k, NetConfig::instant());
        let (tx, rx) = channel();
        let issued = 6;
        // Interleave acquires from three nodes across two objects, all reporting
        // into one channel.
        for (v, obj) in [(1, 0u32), (4, 1), (2, 0), (6, 1), (3, 0), (5, 1)] {
            rt.handle(v).start_acquire_object_routed(ObjectId(obj), &tx);
        }
        let mut seen = 0;
        while seen < issued {
            let grant = rx.recv().unwrap();
            let req = grant.result.expect("healthy mesh grants");
            // The grant tells the reaper everything needed to release.
            rt.handle(grant.node).release_object(grant.obj, req);
            seen += 1;
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, issued as u64);
        let orders = report.validated_orders().unwrap();
        let total: usize = orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, issued);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn acquire_for_missing_object_panics() {
        let rt = NetRuntime::spawn_multi(&tree(3), 2, NetConfig::instant());
        let h = rt.handle(0);
        let _ = h.acquire_object(ObjectId(2));
    }

    /// A loopback address with nothing listening on it (bind, read the address,
    /// drop the listener — connections to it are refused from then on).
    fn refused_addr() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn refused_parent_address_fails_the_run_cleanly() {
        // Regression: a failed dial after the retry budget used to panic inside
        // the node thread, leaving acquirers blocked and shutdown joins hanging.
        // Now the child marks itself failed, the acquire errors out, and shutdown
        // completes with the failure reported.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(2), 1, cfg, &[(0, refused_addr())]);
        // Node 1 dialed its (unreachable) parent at bootstrap: the acquire must
        // fail with a typed NetFailure, not block or panic.
        let failure = rt.handle(1).try_acquire().unwrap_err();
        assert_eq!(failure.node, 1);
        assert!(failure.description.contains("failed to dial peer 0"));
        // Further acquires on the failed node keep failing fast.
        assert!(rt.handle(1).try_acquire_object(ObjectId(0)).is_err());
        let report = rt.shutdown();
        assert_eq!(report.failures().len(), 1, "one node reported the failure");
        assert_eq!(report.stats().dial_failures, 1);
        assert_eq!(report.stats().acquisitions, 0);
        assert!(report.validated_orders().unwrap().is_empty());
    }

    #[test]
    fn remote_acquirer_fails_cleanly_when_its_token_grant_cannot_be_delivered() {
        // Leaf 3 of a 7-node balanced binary tree acquires; the queue() walks
        // 3 -> 1 -> 0 over eagerly-established tree links, then the root must
        // lazily dial node 3 to deliver the token — but node 3's advertised
        // address is refused. Pre-fix, only the *root* failed its own (empty)
        // waiter map and node 3's acquirer blocked forever; the PeerFailed
        // broadcast must now fail node 3's acquire with a typed error.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(7), 1, cfg, &[(3, refused_addr())]);
        let failure = rt.handle(3).try_acquire().unwrap_err();
        assert_eq!(failure.node, 0, "the root observed the dial failure");
        assert!(failure.description.contains("failed to dial peer 3"));
        let report = rt.shutdown();
        // Exactly one journaled failure (the root's), not one per affected node.
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.stats().dial_failures, 1);
    }

    #[test]
    fn dial_budget_is_respected_against_a_refused_address() {
        let addr = refused_addr();
        let start = std::time::Instant::now();
        let err = mesh::dial_with_budget(addr, 3, 2).unwrap_err();
        // 2 retries × 5ms-linear backoff stays well under a second.
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        let _ = err;
    }

    #[test]
    fn quiescent_run_byte_accounting_is_symmetric() {
        // The symmetry contract on NetStatsSnapshot::bytes_sent: handshakes are
        // excluded on both sides (they precede the link readers), everything
        // else — link batches and spare goodbyes — is counted on both, and with
        // no injected latency and no faults nothing is dropped. So once the
        // mesh is quiescent the two byte totals must match exactly.
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        let report = rt.shutdown();
        let s = report.stats();
        assert!(s.bytes_sent > 0, "seven acquires crossed the mesh");
        assert_eq!(
            s.bytes_sent, s.bytes_received,
            "every written byte is read before its reader exits"
        );
    }

    #[test]
    fn report_metrics_mirror_the_snapshot_and_carry_histograms() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let report = rt.shutdown();
        let s = report.stats();
        let m = report.metrics();
        // One schema: the snapshot façade and the registry agree exactly.
        assert_eq!(m.get(Metric::QueueFrames), s.queue_frames);
        assert_eq!(m.get(Metric::Acquisitions), s.acquisitions);
        assert_eq!(m.get(Metric::BytesSent), s.bytes_sent);
        assert_eq!(m.get(Metric::RequestsIssued), 1);
        // The histograms only the registry carries: every flush records its
        // batch size, every delivered grant its latency.
        assert_eq!(m.hist(HistMetric::WriteBatchFrames).count, s.socket_writes);
        assert_eq!(m.hist(HistMetric::AcquireNanos).count, 1);
    }

    #[test]
    fn probed_run_records_a_complete_hop_chain() {
        // A leaf acquire over real sockets, with every node instrumented by a
        // wall-clock trace probe: the recorder must reconstruct the request's
        // full causal path — issue, per-hop queue frames, token flight, grant.
        let recorder = Arc::new(arrow_trace::TraceRecorder::new());
        let rt = NetRuntime::spawn_multi_probed(&tree(7), 1, NetConfig::instant(), |v| {
            recorder.wall_probe(v)
        });
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        rt.shutdown();
        let events = Arc::try_unwrap(recorder)
            .expect("all probes flushed and dropped at shutdown")
            .finish();
        let traces = arrow_trace::analysis::reconstruct(&events);
        let t = traces
            .iter()
            .find(|t| t.req == req.0 && t.origin == 6)
            .expect("the acquire was traced");
        assert!(t.complete(), "issue, hops, grant all recorded: {t:?}");
        // Leaf 6 of a 7-node balanced binary tree is two tree edges from the
        // root, where the token initially rests: 6 -> 2 -> 0.
        assert_eq!(t.hops.len(), 2);
        assert_eq!(t.hops[0].from, 6);
        assert_eq!(t.hops[1].to, 0);
        assert!(t.granted_at.is_some());
    }

    #[test]
    fn healthy_mesh_reports_no_failures() {
        let rt = NetRuntime::spawn(&tree(5), NetConfig::instant());
        let h = rt.handle(4);
        let req = h.try_acquire().expect("healthy mesh grants");
        h.release(req);
        let report = rt.shutdown();
        assert!(report.failures().is_empty());
        assert_eq!(report.stats().dial_failures, 0);
    }

    #[test]
    fn pipelined_acquires_fail_promptly_when_the_bootstrap_parent_is_unreachable() {
        // Regression for the pipelined path: acquires issued through
        // start_acquire_object while the node's bootstrap dial is failing must
        // resolve to typed errors promptly — not block until the caller's own
        // timeout. The child fails itself once the retry budget is spent, and
        // every queued Acquire is refused at the event loop.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(2), 1, cfg, &[(0, refused_addr())]);
        let pendings: Vec<PendingAcquire> = (0..4)
            .map(|_| rt.handle(1).start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let started = Instant::now();
        for p in pendings {
            let failure = p
                .wait_timeout(Duration::from_secs(10))
                .expect_err("no grant can cross a refused parent edge");
            assert_eq!(failure.node, 1);
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "pipelined acquires on a failed node must error out promptly"
        );
        rt.shutdown();
    }

    #[test]
    fn pipelined_acquires_fail_promptly_when_the_lazy_token_channel_is_refused() {
        // Regression for the pipelined path across the mesh: node 3's queue()
        // frames reach the root over healthy tree edges, but the root cannot
        // dial node 3's (refused) advertised address to deliver the first token
        // grant. The PeerFailed broadcast must fail *all* of node 3's in-flight
        // pipelined acquires promptly, including the ones queued behind the
        // undeliverable head-of-line grant.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(7), 1, cfg, &[(3, refused_addr())]);
        let pendings: Vec<PendingAcquire> = (0..3)
            .map(|_| rt.handle(3).start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let started = Instant::now();
        for p in pendings {
            assert!(
                p.wait_timeout(Duration::from_secs(10)).is_err(),
                "a grant whose token channel is refused must fail, not hang"
            );
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "the failure broadcast must fail queued pipelined acquires promptly"
        );
        let report = rt.shutdown();
        assert_eq!(report.failures().len(), 1, "only the root journals it");
    }

    #[test]
    fn crashing_the_token_holder_regenerates_the_token_over_sockets() {
        let cfg = NetConfig::instant()
            .with_dial_retries(1)
            .with_fault_tolerance();
        let rt = NetRuntime::spawn(&tree(7), cfg);
        let fh = rt.fault_handle();
        // Leaf 5 wins the token over real sockets and crashes while holding it:
        // its links are cut mid-run and the token dies with its state.
        let req = rt.handle(5).try_acquire().expect("healthy mesh grants");
        assert!(!req.is_root());
        fh.apply(&FaultAction::CrashNode(5), 1);
        // After the detection bump the root holds a regenerated token; the
        // surviving leaf 6 must still be granted.
        let got = rt
            .handle(6)
            .try_acquire_object_timeout(ObjectId::DEFAULT, Duration::from_secs(10))
            .expect("regenerated token grants the surviving node");
        rt.handle(6).release_object(ObjectId::DEFAULT, got);
        fh.apply(&FaultAction::RestartNode(5), 2);
        let report = rt.shutdown();
        assert!(
            report.token_regenerations() >= 1,
            "the post-crash grant chains from the regenerated root token"
        );
        report
            .validate_churn(2)
            .expect("per-epoch order contract under churn");
        assert!(report.failures().is_empty(), "churn is not a mesh failure");
    }

    #[test]
    fn epoch_bump_reissues_a_request_lost_to_a_severed_link() {
        // Leaf 1's queue() frame is swallowed by a severed tree edge; restoring
        // the link and broadcasting the next epoch makes the leaf re-issue its
        // still-pending request (same id, new stamp), which then completes.
        let cfg = NetConfig::instant().with_fault_tolerance();
        let rt = NetRuntime::spawn(&tree(3), cfg);
        let fh = rt.fault_handle();
        fh.apply(&FaultAction::DropLink(0, 1), 1);
        let pending = rt.handle(1).start_acquire_object(ObjectId::DEFAULT);
        // Give the dropped queue() frame time to be (not) delivered.
        std::thread::sleep(Duration::from_millis(100));
        fh.apply(&FaultAction::RestoreLink(0, 1), 2);
        let req = pending
            .wait_timeout(Duration::from_secs(10))
            .expect("the re-issued request must complete after the link heals");
        rt.handle(1).release_object(ObjectId::DEFAULT, req);
        let report = rt.shutdown();
        assert!(
            report.stats().frames_dropped >= 1,
            "the severed link must have swallowed the original frame"
        );
        report
            .validate_churn(2)
            .expect("per-epoch order contract under churn");
    }

    #[test]
    fn generated_fault_schedule_churn_run_converges_over_sockets() {
        // The socket-tier analogue of the thread runtime's churn test: workers
        // acquire/release through real TCP links while a generated fault schedule
        // (crashes, restarts, partitions) runs against the mesh. Liveness: every
        // surviving worker round is eventually granted; safety: the journaled
        // orders satisfy the per-epoch churn contract.
        let t = tree(7);
        let faults = FaultSchedule::generate(7, &t, 2);
        let final_epoch = faults.final_epoch();
        let cfg = NetConfig::instant()
            .with_dial_retries(1)
            .with_fault_tolerance();
        let rt = NetRuntime::spawn_multi(&t, 2, cfg);
        let fh = rt.fault_handle();
        let injector_done = Arc::new(AtomicBool::new(false));
        let injector = {
            let fh = fh.clone();
            let t = t.clone();
            let faults = faults.clone();
            let done = Arc::clone(&injector_done);
            std::thread::spawn(move || {
                fh.run_schedule(&faults, &t, Duration::from_millis(20));
                done.store(true, Ordering::SeqCst);
            })
        };
        let mut joins = Vec::new();
        for v in 0..7 {
            let h = rt.handle(v);
            let fh = fh.clone();
            let done = Arc::clone(&injector_done);
            joins.push(std::thread::spawn(move || {
                for round in 0..3u32 {
                    let obj = ObjectId((v as u32 + round) % 2);
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(attempts <= 200, "node {v} round {round} never granted");
                        match h.try_acquire_object_timeout(obj, Duration::from_millis(1000)) {
                            Ok(req) => {
                                h.release_object(obj, req);
                                break;
                            }
                            Err(_) => {
                                // Crashed-node refusal or a grant lost to churn:
                                // once injection is over, a timeout doubles as
                                // fault detection — re-broadcasting the final
                                // epoch is idempotent and heals any straggler.
                                if done.load(Ordering::SeqCst) {
                                    fh.broadcast_epoch(final_epoch);
                                }
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        injector.join().unwrap();
        let report = rt.shutdown();
        report
            .validate_churn(final_epoch)
            .expect("per-epoch order contract across a generated churn schedule");
        assert!(
            report.stats().acquisitions >= 7 * 3,
            "every worker round was granted"
        );
    }
}
