//! The socket-tier arrow runtime: a small pool of event-loop shards drives every
//! node, protocol traffic over loopback TCP, application commands over local
//! handles.
//!
//! Protocol logic is [`arrow_core::live::ArrowCore`] — the exact state machine the
//! thread runtime uses — so the two real-concurrency tiers cannot drift. What this
//! module adds is the distribution: nodes are partitioned across
//! [`NetConfig::shards`] reactor threads (the crate's internal `reactor`
//! module), each running
//! one `epoll` loop over the nonblocking listeners and connections of its nodes;
//! `queue()` frames travel the spanning-tree edges, token grants travel
//! lazily-dialed direct channels.
//!
//! # Hot-path shape
//!
//! A shard wakes once per readiness batch, drains every ready socket, feeds the
//! decoded frames through the owning node's core, and flushes each dirty link's
//! coalesced frame batch with one `write` — no per-node threads, no per-frame
//! wakeups, and thread count is O(shards) rather than O(nodes), which is what
//! lets a single process host ≥1024 nodes. With injected latency frames are
//! scheduled on the shard's timer wheel, whose next deadline doubles as the
//! `epoll_wait` timeout, so a shard sleeps in exactly one place. Applications
//! that want to overlap round-trips use the pipelined acquire API
//! ([`NetHandle::start_acquire_object`]): acquires issued from one node for one
//! object are granted in issue order, so a worker can keep several requests in
//! flight and reap grants FIFO instead of lock-stepping on each round trip.
//!
//! Unlike the thread runtime, every node here also journals its protocol history:
//! which requests it issued (with wall-clock issue times) and which
//! successor-notifications it observed. [`NetRuntime::shutdown`] assembles these
//! into a [`NetReport`] whose per-object queuing orders validate through the same
//! [`QueuingOrder`] machinery the simulator harness uses — so a socket run is held
//! to the same correctness contract as a simulated one.

use crate::mesh::{NetConfig, NetStats, NetStatsSnapshot};
use crate::reactor::{spawn_shards, ReactorShared, ShardCmd, ShardInjector};
use arrow_core::live::ArrowCore;
use arrow_core::order::OrderError;
use arrow_core::prelude::{
    validate_churn_records, ChurnOrderError, FaultAction, FaultSchedule, ObjectId, OrderRecord,
    QueuingOrder, Request, RequestId, RequestSchedule,
};
use arrow_trace::{MetricsSnapshot, NoProbe, Probe};
use netgraph::{NodeId, RootedTree};
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The outcome of one acquire, delivered on the acquire's reply channel.
///
/// Carries enough context (`node`, `obj`) that many in-flight acquires — even from
/// different nodes — can share one reply channel (see
/// [`NetHandle::start_acquire_object_routed`]): the receiver knows which handle to
/// release through without any out-of-band bookkeeping.
#[derive(Debug)]
pub struct Grant {
    /// The node that issued the acquire.
    pub node: NodeId,
    /// The object that was acquired.
    pub obj: ObjectId,
    /// The granted request id, or the node-level failure that doomed the acquire.
    pub result: Result<RequestId, NetFailure>,
    /// Time from the node processing the acquire to the token arriving, measured
    /// entirely at the issuing node (queue propagation + predecessor wait).
    /// Exactly zero for an acquire rejected because the node had *already*
    /// failed (it never waited); failed grants are otherwise not comparable
    /// latency samples — filter on `result` before recording waits.
    pub wait: Duration,
}

/// A node-level transport failure: the node exhausted its dial retry budget
/// ([`NetConfig::dial_retries`]) against a peer and can no longer participate.
/// Pending and future acquires on the node fail with this instead of blocking
/// forever, and the failure is surfaced in [`NetReport::failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFailure {
    /// The node that observed the failure.
    pub node: NodeId,
    /// Human-readable description (peer and I/O error).
    pub description: String,
}

impl std::fmt::Display for NetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {}: {}", self.node, self.description)
    }
}

/// What one node hands back when its shard stops.
#[derive(Default)]
pub(crate) struct NodeJournal {
    pub(crate) issued: Vec<Request>,
    pub(crate) records: Vec<OrderRecord>,
    pub(crate) failures: Vec<NetFailure>,
}

/// The distributed arrow directory runtime: every node of the spanning tree is an
/// independent peer whose protocol traffic travels real loopback TCP sockets.
///
/// See the [crate docs](crate) for the architecture; see [`NetRuntime::shutdown`]
/// for the validation story.
pub struct NetRuntime {
    /// One command injector per reactor shard; node `v` is served by shard
    /// `v % injectors.len()`.
    injectors: Vec<ShardInjector>,
    shard_threads: Vec<JoinHandle<Vec<(NodeId, NodeJournal)>>>,
    stats: Arc<NetStats>,
    /// Links severed by fault injection, shared with every shard and the
    /// [`NetFaultHandle`].
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    /// Hot-path gate for the `blocked` check; set by [`NetRuntime::fault_handle`].
    faults_armed: Arc<AtomicBool>,
    /// In daemon mode ([`NetRuntime::spawn_daemon`]) the single node this
    /// process hosts; `handle()` refuses every other id, because a command for
    /// a node the local shard does not own would panic inside the reactor.
    hosted: Option<NodeId>,
    n: usize,
    k: usize,
}

impl NetRuntime {
    /// Spawn a single-object socket runtime over the given rooted spanning tree.
    pub fn spawn(tree: &RootedTree, cfg: NetConfig) -> Self {
        NetRuntime::spawn_multi(tree, 1, cfg)
    }

    /// Spawn the socket runtime over the given rooted spanning tree, serving
    /// `objects` independent mobile objects. Every object's token initially sits at
    /// the tree root, already released.
    ///
    /// Bootstrap: every node binds a loopback listener; once all listeners exist,
    /// every non-root node dials its tree parent and runs the `Hello`/`Welcome`
    /// handshake (nonblocking, driven by the node's shard), materializing exactly
    /// the spanning-tree edges. Direct token channels are dialed lazily on first
    /// grant.
    ///
    /// # Panics
    /// If `objects` is zero, or a loopback socket cannot be bound.
    pub fn spawn_multi(tree: &RootedTree, objects: usize, cfg: NetConfig) -> Self {
        NetRuntime::spawn_multi_with_addr_overrides(tree, objects, cfg, &[])
    }

    /// Fault-injection variant of [`NetRuntime::spawn_multi`]: every entry of
    /// `addr_overrides` replaces the advertised address of one node in the shared
    /// address table, so every dial *towards* that node goes to the given address
    /// instead of its real listener. Overriding with the address of a dropped
    /// listener (connection refused) exercises the dial retry budget and the clean
    /// failure path: the dialing node marks itself failed, its pending acquires
    /// error out, and [`NetRuntime::shutdown`] still completes, reporting the
    /// failure in [`NetReport::failures`].
    ///
    /// # Panics
    /// If `objects` is zero, a loopback socket cannot be bound, or an override
    /// names a node outside the tree.
    pub fn spawn_multi_with_addr_overrides(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        addr_overrides: &[(NodeId, SocketAddr)],
    ) -> Self {
        NetRuntime::spawn_inner(tree, objects, cfg, addr_overrides, |_| NoProbe)
    }

    /// Like [`NetRuntime::spawn_multi`], with a per-node probe instrumented into
    /// every node's [`ArrowCore`] — `probe_for(v)` builds node `v`'s probe
    /// (typically [`arrow_trace::TraceRecorder::wall_probe`]). Probes ride the
    /// reactor shard threads and are dropped — flushing any buffered trace
    /// events — before [`NetRuntime::shutdown`] returns, so a recorder can be
    /// finished immediately afterwards. The default spawn path monomorphizes
    /// with [`NoProbe`] and pays nothing.
    pub fn spawn_multi_probed<P: Probe>(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        probe_for: impl FnMut(NodeId) -> P,
    ) -> Self {
        NetRuntime::spawn_inner(tree, objects, cfg, &[], probe_for)
    }

    fn spawn_inner<P: Probe>(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        addr_overrides: &[(NodeId, SocketAddr)],
        mut probe_for: impl FnMut(NodeId) -> P,
    ) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        let n = tree.node_count();
        let stats = Arc::new(NetStats::default());

        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("failed to bind loopback");
            addrs.push(listener.local_addr().expect("listener has an address"));
            listeners.push(listener);
        }
        for &(node, addr) in addr_overrides {
            assert!(node < n, "override names node {node} outside the tree");
            addrs[node] = addr;
        }

        // Partition the nodes across the shard pool round-robin: node `v` lives
        // on shard `v % shard_count`, so handles and fault injectors can route
        // commands without a lookup table.
        let shard_count = cfg.effective_shards(n);
        let mut shard_nodes: Vec<Vec<(NodeId, ArrowCore<P>, TcpListener)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for (v, listener) in listeners.into_iter().enumerate() {
            let core = ArrowCore::for_tree_with_probe(v, tree, objects, probe_for(v));
            shard_nodes[v % shard_count].push((v, core, listener));
        }

        let blocked = Arc::new(Mutex::new(HashSet::new()));
        let faults_armed = Arc::new(AtomicBool::new(false));
        let shared = ReactorShared {
            cfg,
            tree: Arc::new(tree.clone()),
            addrs: Arc::new(addrs),
            stats: Arc::clone(&stats),
            blocked: Arc::clone(&blocked),
            faults_armed: Arc::clone(&faults_armed),
            epoch0: Instant::now(),
        };
        let (injectors, shard_threads) = spawn_shards(&shared, shard_nodes);

        NetRuntime {
            injectors,
            shard_threads,
            stats,
            blocked,
            faults_armed,
            hosted: None,
            n,
            k: objects,
        }
    }

    /// Spawn the runtime in **daemon mode**: this process hosts exactly one
    /// node (`me`) of an `n`-node directory whose other peers live in other
    /// processes (or other hosts). The caller supplies the pre-bound listener
    /// for `me` and the full advertised address table `addrs` (one entry per
    /// tree node, `addrs[me]` being this listener's address) — typically
    /// exchanged over a control channel before the mesh comes up.
    ///
    /// Protocol behaviour is identical to the in-process runtime: the node
    /// dials its tree parent for the `Hello`/`Welcome` handshake at bootstrap,
    /// token channels dial lazily, and the single local shard journals issued
    /// requests and observed order records for [`NetRuntime::shutdown`].
    /// `seq_base` restores the request-id counter after a process-granularity
    /// restart (see [`ArrowCore::advance_request_seq`]); pass `0` for a fresh
    /// incarnation.
    ///
    /// Pair daemon mode with [`NetConfig::with_fault_tolerance`] when peers
    /// may die: frames towards a dead peer are then dropped (and re-issued by
    /// the epoch machinery) instead of failing this node.
    ///
    /// # Panics
    /// If `objects` is zero, `me` is outside the tree, or the address table
    /// does not cover the tree.
    pub fn spawn_daemon(
        tree: &RootedTree,
        objects: usize,
        cfg: NetConfig,
        me: NodeId,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        seq_base: u64,
    ) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        let n = tree.node_count();
        assert!(me < n, "daemon node {me} outside the {n}-node tree");
        assert_eq!(
            addrs.len(),
            n,
            "address table covers every tree node ({n}), got {}",
            addrs.len()
        );
        let stats = Arc::new(NetStats::default());
        let mut core = ArrowCore::for_tree_with_probe(me, tree, objects, NoProbe);
        core.advance_request_seq(seq_base);
        let shard_nodes = vec![vec![(me, core, listener)]];
        let blocked = Arc::new(Mutex::new(HashSet::new()));
        let faults_armed = Arc::new(AtomicBool::new(false));
        let shared = ReactorShared {
            cfg,
            tree: Arc::new(tree.clone()),
            addrs: Arc::new(addrs),
            stats: Arc::clone(&stats),
            blocked: Arc::clone(&blocked),
            faults_armed: Arc::clone(&faults_armed),
            epoch0: Instant::now(),
        };
        let (injectors, shard_threads) = spawn_shards(&shared, shard_nodes);
        NetRuntime {
            injectors,
            shard_threads,
            stats,
            blocked,
            faults_armed,
            hosted: Some(me),
            n,
            k: objects,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of objects served.
    pub fn object_count(&self) -> usize {
        self.k
    }

    /// Shared runtime statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// A handle for the application running at node `v`.
    ///
    /// # Panics
    /// If `v` is out of range, or — in daemon mode — names a node this process
    /// does not host.
    pub fn handle(&self, v: NodeId) -> NetHandle {
        assert!(v < self.n, "node {v} out of range");
        if let Some(me) = self.hosted {
            assert_eq!(v, me, "daemon process hosts only node {me}, not {v}");
        }
        NetHandle {
            node: v,
            objects: self.k,
            injector: self.injectors[v % self.injectors.len()].clone(),
        }
    }

    /// Fault-injection handle: kill and respawn nodes, sever and restore TCP
    /// links, and broadcast the detection-driven epoch bumps that trigger token
    /// regeneration — the socket-tier counterpart of the thread tier's
    /// [`arrow_core::live::FaultHandle`] and the simulator's scheduled
    /// [`desim::SimFault`]s. Pair it with [`NetConfig::with_fault_tolerance`] so a
    /// node dialing a currently-dead peer drops the frame instead of failing the
    /// whole run.
    pub fn fault_handle(&self) -> NetFaultHandle {
        self.faults_armed.store(true, Ordering::Relaxed);
        NetFaultHandle {
            injectors: self.injectors.clone(),
            blocked: Arc::clone(&self.blocked),
        }
    }

    /// Broadcast a detection-driven epoch bump to every local shard *without*
    /// arming fault injection. In daemon mode this is how an external
    /// supervisor (the cluster harness) delivers the bump its failure
    /// detection decided on: the local node resets its links to the initial
    /// tree orientation, regenerates the token if it is the root, and
    /// re-issues its still-pending requests — the same recovery the in-process
    /// [`NetFaultHandle::broadcast_epoch`] triggers, minus the per-send
    /// blocked-link check that injected faults need.
    pub fn broadcast_epoch(&self, epoch: u64) {
        for inj in &self.injectors {
            let _ = inj.send(ShardCmd::Epoch { epoch });
        }
    }

    /// Stop every peer (goodbye handshakes, sockets closed) and assemble the run's
    /// [`NetReport`]. Call only once all application-level acquires have returned —
    /// a request still waiting for its token would never be granted.
    pub fn shutdown(mut self) -> NetReport {
        for inj in &self.injectors {
            let _ = inj.send(ShardCmd::Shutdown);
        }
        // Each shard drains its links (Goodbye, flush, half-close), closes every
        // socket, and returns its nodes' journals; joining the shards releases
        // every fd before this returns, keeping back-to-back runtimes inside the
        // process fd budget, and makes the frames/bytes counters final before
        // the snapshot below.
        let mut journals: Vec<(NodeId, NodeJournal)> = Vec::new();
        for t in self.shard_threads.drain(..) {
            if let Ok(mut j) = t.join() {
                journals.append(&mut j);
            }
        }
        journals.sort_by_key(|(v, _)| *v);
        let mut issued = Vec::new();
        let mut records = Vec::new();
        let mut failures = Vec::new();
        for (_, journal) in journals {
            issued.extend(journal.issued);
            records.extend(journal.records);
            failures.extend(journal.failures);
        }
        issued.sort_by_key(|r| (r.time, r.id));
        NetReport {
            schedule: RequestSchedule::from_requests(issued),
            records,
            failures,
            stats: self.stats.snapshot(),
            metrics: self.stats.metrics(),
        }
    }
}

/// Fault-injection handle of a running [`NetRuntime`] (see
/// [`NetRuntime::fault_handle`]). Crash/restart are delivered through the target
/// node's own shard inbox; link drops act through a shared blocked-set checked
/// on every send. The epoch numbering contract is shared with the thread tier:
/// fault event `i` of a schedule is followed by the broadcast of epoch `i + 1`.
#[derive(Debug, Clone)]
pub struct NetFaultHandle {
    injectors: Vec<ShardInjector>,
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
}

impl NetFaultHandle {
    /// Crash node `v`: its TCP links are cut abruptly, its volatile protocol
    /// state is discarded, in-flight local acquires fail promptly, and all
    /// traffic is ignored until [`restart`].
    ///
    /// [`restart`]: NetFaultHandle::restart
    pub fn crash(&self, v: NodeId) {
        let _ = self.injectors[v % self.injectors.len()].send(ShardCmd::Crash { node: v });
    }

    /// Restart crashed node `v` with freshly reset protocol state; it re-dials
    /// its tree parent and rejoins at the next epoch bump.
    pub fn restart(&self, v: NodeId) {
        let _ = self.injectors[v % self.injectors.len()].send(ShardCmd::Restart { node: v });
    }

    /// Sever the link between `u` and `v` (both directions): frames staged across
    /// it are dropped at the sender until [`restore_link`].
    ///
    /// [`restore_link`]: NetFaultHandle::restore_link
    pub fn drop_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((u.min(v), u.max(v)));
    }

    /// Restore a severed link.
    pub fn restore_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(u.min(v), u.max(v)));
    }

    /// Broadcast a detection-driven epoch bump to every node. Crashed nodes miss
    /// it (a crashed node must not learn anything) and catch up from stamped live
    /// traffic or a later broadcast after restart.
    pub fn broadcast_epoch(&self, epoch: u64) {
        for inj in &self.injectors {
            let _ = inj.send(ShardCmd::Epoch { epoch });
        }
    }

    /// Apply one fault action, then broadcast the epoch bump its detection
    /// triggers. The ordering mirrors the thread tier: per-inbox FIFO
    /// guarantees a crashed node misses its own bump and a restarted node sees
    /// the Restart before the Epoch.
    ///
    /// # Panics
    /// On [`FaultAction::PartitionTree`] — lower the schedule against a tree
    /// first ([`FaultSchedule::lowered`]).
    pub fn apply(&self, action: &FaultAction, epoch: u64) {
        match *action {
            FaultAction::CrashNode(v) => self.crash(v),
            FaultAction::RestartNode(v) => self.restart(v),
            FaultAction::DropLink(u, v) => self.drop_link(u, v),
            FaultAction::RestoreLink(u, v) => self.restore_link(u, v),
            FaultAction::PartitionTree(_) => {
                panic!("partition faults must be lowered to link drops first")
            }
        }
        self.broadcast_epoch(epoch);
    }

    /// Drive a whole fault schedule against the running mesh, pacing schedule
    /// ticks to `tick` of wall clock (blocking; run it on a dedicated injector
    /// thread). Event `i` is followed by the broadcast of epoch `i + 1` —
    /// the same detection model as the simulator harness and the thread tier.
    pub fn run_schedule(&self, schedule: &FaultSchedule, tree: &RootedTree, tick: Duration) {
        let lowered = schedule.lowered(tree);
        let started = Instant::now();
        for (i, ev) in lowered.events.iter().enumerate() {
            let due = started + tick * ev.at as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            self.apply(&ev.action, (i + 1) as u64);
        }
    }
}

/// The application-facing handle of one socket-tier node: token acquire/release
/// per object — blocking ([`acquire_object`]), failure-typed ([`try_acquire_object`])
/// or pipelined ([`start_acquire_object`]).
///
/// [`acquire_object`]: NetHandle::acquire_object
/// [`try_acquire_object`]: NetHandle::try_acquire_object
/// [`start_acquire_object`]: NetHandle::start_acquire_object
#[derive(Debug, Clone)]
pub struct NetHandle {
    node: NodeId,
    objects: usize,
    injector: ShardInjector,
}

impl NetHandle {
    /// This handle's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn check_object(&self, obj: ObjectId) {
        assert!(
            (obj.0 as usize) < self.objects,
            "object {obj} out of range (runtime serves {} objects)",
            self.objects
        );
    }

    /// Issue a queuing request for the default object and block until this node
    /// holds its token.
    pub fn acquire(&self) -> RequestId {
        self.acquire_object(ObjectId::DEFAULT)
    }

    /// Issue a queuing request for `obj` and block until this node holds that
    /// object's token. Returns the id of the granted request, which must be passed
    /// to [`release_object`] with the same object.
    ///
    /// # Panics
    /// If the node failed to reach the mesh (see [`try_acquire_object`] for the
    /// non-panicking variant) or the runtime has shut down.
    ///
    /// [`release_object`]: NetHandle::release_object
    /// [`try_acquire_object`]: NetHandle::try_acquire_object
    pub fn acquire_object(&self, obj: ObjectId) -> RequestId {
        self.try_acquire_object(obj)
            .unwrap_or_else(|failure| panic!("acquire failed: {failure}"))
    }

    /// Issue a queuing request for the default object; a node-level transport
    /// failure comes back as [`NetFailure`] instead of blocking forever.
    pub fn try_acquire(&self) -> Result<RequestId, NetFailure> {
        self.try_acquire_object(ObjectId::DEFAULT)
    }

    /// Like [`acquire_object`], but a node that cannot reach the mesh (dial retry
    /// budget exhausted) fails the acquire with a [`NetFailure`] instead of
    /// panicking or blocking forever.
    ///
    /// [`acquire_object`]: NetHandle::acquire_object
    pub fn try_acquire_object(&self, obj: ObjectId) -> Result<RequestId, NetFailure> {
        self.start_acquire_object(obj).wait()
    }

    /// Like [`try_acquire_object`], but give up after `timeout` with a synthetic
    /// [`NetFailure`] — a grant that never arrives (absent an application that
    /// holds tokens that long) indicates a lost token, i.e. a protocol bug. The
    /// conformance drivers use this so a grant-chain deadlock becomes a recorded
    /// failure instead of a hung sweep.
    ///
    /// [`try_acquire_object`]: NetHandle::try_acquire_object
    pub fn try_acquire_object_timeout(
        &self,
        obj: ObjectId,
        timeout: Duration,
    ) -> Result<RequestId, NetFailure> {
        self.start_acquire_object(obj).wait_timeout(timeout)
    }

    /// Issue a queuing request for `obj` **without blocking** and return a
    /// [`PendingAcquire`] that resolves when the token arrives.
    ///
    /// This is the pipelining primitive: consecutive acquires issued through one
    /// node's handles for one object are queued directly behind each other (the
    /// node is its own sink after the first), so their grants arrive **in issue
    /// order** and a worker can keep a window of requests in flight, reaping
    /// grants FIFO, instead of paying a full queue/token round-trip per acquire.
    ///
    /// # Panics
    /// If `obj` is out of range or the runtime has shut down.
    pub fn start_acquire_object(&self, obj: ObjectId) -> PendingAcquire {
        self.check_object(obj);
        let (reply_tx, reply_rx) = channel();
        assert!(
            self.injector.send(ShardCmd::Acquire {
                node: self.node,
                obj,
                reply: reply_tx,
            }),
            "runtime has shut down"
        );
        PendingAcquire {
            node: self.node,
            obj,
            rx: reply_rx,
        }
    }

    /// Issue a queuing request for `obj` whose [`Grant`] is delivered on the
    /// caller-supplied channel instead of a dedicated one.
    ///
    /// Because a [`Grant`] carries its issuing node and object, **many in-flight
    /// acquires — across nodes and objects — can share one channel**: an open-loop
    /// driver issues requests as its workload dictates and a single reaper
    /// receives grants in arrival order, releasing each through the right handle.
    /// Grants for one `(node, object)` stream arrive in issue order; grants across
    /// streams arrive in whatever order the tokens land.
    ///
    /// # Panics
    /// If `obj` is out of range or the runtime has shut down.
    pub fn start_acquire_object_routed(&self, obj: ObjectId, reply: &Sender<Grant>) {
        self.check_object(obj);
        assert!(
            self.injector.send(ShardCmd::Acquire {
                node: self.node,
                obj,
                reply: reply.clone(),
            }),
            "runtime has shut down"
        );
    }

    /// Release the default object's token held for `req`.
    pub fn release(&self, req: RequestId) {
        self.release_object(ObjectId::DEFAULT, req);
    }

    /// Release `obj`'s token held for `req`, letting it move on to the successor.
    pub fn release_object(&self, obj: ObjectId, req: RequestId) {
        assert!(
            self.injector.send(ShardCmd::Release {
                node: self.node,
                obj,
                req,
            }),
            "runtime has shut down"
        );
    }
}

/// One in-flight acquire issued with [`NetHandle::start_acquire_object`]: a future
/// for the [`Grant`], resolved by [`wait`](PendingAcquire::wait).
#[derive(Debug)]
pub struct PendingAcquire {
    node: NodeId,
    obj: ObjectId,
    rx: Receiver<Grant>,
}

impl PendingAcquire {
    /// The node the acquire was issued at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The object being acquired.
    pub fn obj(&self) -> ObjectId {
        self.obj
    }

    /// Block until the token arrives (or the node fails).
    pub fn wait(self) -> Result<RequestId, NetFailure> {
        self.rx.recv().expect("runtime has shut down").result
    }

    /// Block until the token arrives, with the grant's queue-wait measurement.
    pub fn wait_grant(self) -> Grant {
        self.rx.recv().expect("runtime has shut down")
    }

    /// Like [`wait`](PendingAcquire::wait), but give up after `timeout` with a
    /// synthetic [`NetFailure`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<RequestId, NetFailure> {
        match self.rx.recv_timeout(timeout) {
            Ok(grant) => grant.result,
            Err(_) => Err(NetFailure {
                node: self.node,
                description: format!(
                    "acquire of {} not granted within {timeout:?} — possible lost token",
                    self.obj
                ),
            }),
        }
    }
}

/// Everything a socket run leaves behind: the reconstructed request schedule
/// (wall-clock issue times, in seconds), the successor-notification records every
/// node journaled, and the runtime statistics.
#[derive(Debug, Clone)]
pub struct NetReport {
    schedule: RequestSchedule,
    records: Vec<OrderRecord>,
    failures: Vec<NetFailure>,
    stats: NetStatsSnapshot,
    metrics: MetricsSnapshot,
}

impl NetReport {
    /// The requests issued during the run, in non-decreasing issue-time order.
    /// Times are wall-clock seconds since the runtime was spawned.
    pub fn schedule(&self) -> &RequestSchedule {
        &self.schedule
    }

    /// The successor notifications journaled by all nodes.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Transport failures observed during the run (empty on a healthy mesh): one
    /// entry per node that exhausted its dial retry budget.
    pub fn failures(&self) -> &[NetFailure] {
        &self.failures
    }

    /// Runtime statistics at shutdown.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats
    }

    /// The full metrics-registry snapshot at shutdown: the counters of
    /// [`NetReport::stats`] plus the socket tier's histograms (write coalescing,
    /// timer-wheel lateness, acquire latency), in the schema shared with the
    /// thread tier's [`arrow_core::live::LiveReport::metrics`].
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// Assemble and validate the queuing order of every object that saw at least
    /// one request — the same per-object validation contract the simulator harness
    /// enforces: every request queued exactly once, one unbroken successor chain
    /// from the object's virtual root request.
    pub fn validated_orders(&self) -> Result<Vec<(ObjectId, QueuingOrder)>, OrderError> {
        arrow_core::order::per_object_orders(&self.records, &self.schedule).map_err(|(_, e)| e)
    }

    /// Validate the run's order records under churn: every `(object, epoch)`
    /// group must be fork-free, and `final_epoch` (the epoch the mesh converged
    /// to after the last fault's detection bump) must form one complete successor
    /// chain per object — the relaxed contract of
    /// [`arrow_core::order::validate_churn_records`], replacing
    /// [`validated_orders`](NetReport::validated_orders) for runs with faults
    /// (across epochs a request may legitimately be queued twice: once in an
    /// abandoned epoch, once re-issued after recovery).
    pub fn validate_churn(&self, final_epoch: u64) -> Result<(), ChurnOrderError> {
        validate_churn_records(&self.records, final_epoch)
    }

    /// Successor records that evidence a token regeneration: a request queued
    /// directly behind the *regenerated* virtual root request of a recovery
    /// epoch. At least one of these proves a token died with a fault and the
    /// directory minted a replacement at the tree root.
    pub fn token_regenerations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.epoch > 0 && r.predecessor.is_root())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh;
    use arrow_trace::{HistMetric, Metric};
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn spawn_and_shutdown_with_no_traffic() {
        let rt = NetRuntime::spawn(&tree(5), NetConfig::instant());
        assert_eq!(rt.node_count(), 5);
        assert_eq!(rt.object_count(), 1);
        let report = rt.shutdown();
        assert!(report.schedule().is_empty());
        assert!(report.records().is_empty());
        assert_eq!(report.stats().acquisitions, 0);
        // An immediate shutdown may race the bootstrap dials, but never exceeds the
        // tree edges when no token ever moved.
        assert!(report.stats().connections_dialed <= 4);
    }

    #[test]
    fn single_remote_acquire_crosses_real_sockets() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 1);
        assert!(
            report.stats().queue_frames >= 1,
            "leaf request crossed links"
        );
        assert!(report.stats().token_frames >= 1, "token travelled back");
        assert!(report.stats().bytes_sent > 0);
        assert!(
            report.stats().bytes_received > 0,
            "readers count their bytes"
        );
        assert!(report.stats().socket_writes >= 1);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].1.len(), 1);
    }

    #[test]
    fn sequential_acquires_from_every_node_validate() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 7);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders[0].1.len(), 7);
    }

    #[test]
    fn concurrent_multi_object_acquires_all_complete_and_validate() {
        let k = 3;
        let rt = Arc::new(NetRuntime::spawn_multi(&tree(7), k, NetConfig::instant()));
        let mut joins = Vec::new();
        for v in 0..7 {
            let h = rt.handle(v);
            joins.push(std::thread::spawn(move || {
                for round in 0..4 {
                    let obj = ObjectId(((v + round) % k) as u32);
                    let req = h.acquire_object(obj);
                    h.release_object(obj, req);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let rt = Arc::try_unwrap(rt).ok().unwrap();
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, 7 * 4);
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders.len(), k);
        let total: usize = orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, report.schedule().len());
    }

    #[test]
    fn pipelined_acquires_grant_in_issue_order_per_stream() {
        // The pipelining contract: consecutive acquires from one node for one
        // object are granted in issue order, so a worker can keep a window in
        // flight and reap FIFO.
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(5);
        const WINDOW: usize = 8;
        let pendings: Vec<PendingAcquire> = (0..WINDOW)
            .map(|_| h.start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let mut granted = Vec::new();
        for p in pendings {
            let grant = p.wait_grant();
            let req = grant.result.expect("healthy mesh grants");
            assert_eq!(grant.node, 5);
            assert_eq!(grant.obj, ObjectId::DEFAULT);
            granted.push(req);
            h.release(req);
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, WINDOW as u64);
        // The validated order lists exactly our stream, in issue order.
        let orders = report.validated_orders().unwrap();
        assert_eq!(orders[0].1.order(), granted.as_slice());
    }

    #[test]
    fn routed_grants_share_one_channel_across_nodes_and_objects() {
        let k = 2;
        let rt = NetRuntime::spawn_multi(&tree(7), k, NetConfig::instant());
        let (tx, rx) = channel();
        let issued = 6;
        // Interleave acquires from three nodes across two objects, all reporting
        // into one channel.
        for (v, obj) in [(1, 0u32), (4, 1), (2, 0), (6, 1), (3, 0), (5, 1)] {
            rt.handle(v).start_acquire_object_routed(ObjectId(obj), &tx);
        }
        let mut seen = 0;
        while seen < issued {
            let grant = rx.recv().unwrap();
            let req = grant.result.expect("healthy mesh grants");
            // The grant tells the reaper everything needed to release.
            rt.handle(grant.node).release_object(grant.obj, req);
            seen += 1;
        }
        let report = rt.shutdown();
        assert_eq!(report.stats().acquisitions, issued as u64);
        let orders = report.validated_orders().unwrap();
        let total: usize = orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, issued);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn acquire_for_missing_object_panics() {
        let rt = NetRuntime::spawn_multi(&tree(3), 2, NetConfig::instant());
        let h = rt.handle(0);
        let _ = h.acquire_object(ObjectId(2));
    }

    /// A loopback address with nothing listening on it (bind, read the address,
    /// drop the listener — connections to it are refused from then on).
    fn refused_addr() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn refused_parent_address_fails_the_run_cleanly() {
        // Regression: a failed dial after the retry budget used to panic inside
        // the node thread, leaving acquirers blocked and shutdown joins hanging.
        // Now the child marks itself failed, the acquire errors out, and shutdown
        // completes with the failure reported.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(2), 1, cfg, &[(0, refused_addr())]);
        // Node 1 dialed its (unreachable) parent at bootstrap: the acquire must
        // fail with a typed NetFailure, not block or panic.
        let failure = rt.handle(1).try_acquire().unwrap_err();
        assert_eq!(failure.node, 1);
        assert!(failure.description.contains("failed to dial peer 0"));
        // Further acquires on the failed node keep failing fast.
        assert!(rt.handle(1).try_acquire_object(ObjectId(0)).is_err());
        let report = rt.shutdown();
        assert_eq!(report.failures().len(), 1, "one node reported the failure");
        assert_eq!(report.stats().dial_failures, 1);
        assert_eq!(report.stats().acquisitions, 0);
        assert!(report.validated_orders().unwrap().is_empty());
    }

    #[test]
    fn remote_acquirer_fails_cleanly_when_its_token_grant_cannot_be_delivered() {
        // Leaf 3 of a 7-node balanced binary tree acquires; the queue() walks
        // 3 -> 1 -> 0 over eagerly-established tree links, then the root must
        // lazily dial node 3 to deliver the token — but node 3's advertised
        // address is refused. Pre-fix, only the *root* failed its own (empty)
        // waiter map and node 3's acquirer blocked forever; the PeerFailed
        // broadcast must now fail node 3's acquire with a typed error.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(7), 1, cfg, &[(3, refused_addr())]);
        let failure = rt.handle(3).try_acquire().unwrap_err();
        assert_eq!(failure.node, 0, "the root observed the dial failure");
        assert!(failure.description.contains("failed to dial peer 3"));
        let report = rt.shutdown();
        // Exactly one journaled failure (the root's), not one per affected node.
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.stats().dial_failures, 1);
    }

    #[test]
    fn dial_budget_is_respected_against_a_refused_address() {
        let addr = refused_addr();
        let start = std::time::Instant::now();
        let err = mesh::dial_with_budget(addr, 3, 2).unwrap_err();
        // 2 retries × 5ms-linear backoff stays well under a second.
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
        let _ = err;
    }

    #[test]
    fn quiescent_run_byte_accounting_is_symmetric() {
        // The symmetry contract on NetStatsSnapshot::bytes_sent: every frame —
        // handshakes included — flows through the reactor's send and receive
        // buffers and is counted on both sides, and with no injected latency
        // and no faults nothing is dropped. So once the mesh is quiescent the
        // two byte totals must match exactly.
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        let report = rt.shutdown();
        let s = report.stats();
        assert!(s.bytes_sent > 0, "seven acquires crossed the mesh");
        assert_eq!(
            s.bytes_sent, s.bytes_received,
            "every written byte is read before its reader exits"
        );
    }

    #[test]
    fn report_metrics_mirror_the_snapshot_and_carry_histograms() {
        let rt = NetRuntime::spawn(&tree(7), NetConfig::instant());
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let report = rt.shutdown();
        let s = report.stats();
        let m = report.metrics();
        // One schema: the snapshot façade and the registry agree exactly.
        assert_eq!(m.get(Metric::QueueFrames), s.queue_frames);
        assert_eq!(m.get(Metric::Acquisitions), s.acquisitions);
        assert_eq!(m.get(Metric::BytesSent), s.bytes_sent);
        assert_eq!(m.get(Metric::RequestsIssued), 1);
        // The histograms only the registry carries: every flush records its
        // batch size, every delivered grant its latency.
        assert_eq!(m.hist(HistMetric::WriteBatchFrames).count, s.socket_writes);
        assert_eq!(m.hist(HistMetric::AcquireNanos).count, 1);
    }

    #[test]
    fn probed_run_records_a_complete_hop_chain() {
        // A leaf acquire over real sockets, with every node instrumented by a
        // wall-clock trace probe: the recorder must reconstruct the request's
        // full causal path — issue, per-hop queue frames, token flight, grant.
        let recorder = Arc::new(arrow_trace::TraceRecorder::new());
        let rt = NetRuntime::spawn_multi_probed(&tree(7), 1, NetConfig::instant(), |v| {
            recorder.wall_probe(v)
        });
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        rt.shutdown();
        let events = Arc::try_unwrap(recorder)
            .expect("all probes flushed and dropped at shutdown")
            .finish();
        let traces = arrow_trace::analysis::reconstruct(&events);
        let t = traces
            .iter()
            .find(|t| t.req == req.0 && t.origin == 6)
            .expect("the acquire was traced");
        assert!(t.complete(), "issue, hops, grant all recorded: {t:?}");
        // Leaf 6 of a 7-node balanced binary tree is two tree edges from the
        // root, where the token initially rests: 6 -> 2 -> 0.
        assert_eq!(t.hops.len(), 2);
        assert_eq!(t.hops[0].from, 6);
        assert_eq!(t.hops[1].to, 0);
        assert!(t.granted_at.is_some());
    }

    #[test]
    fn daemon_mode_runtimes_interoperate_over_a_shared_address_table() {
        // Two spawn_daemon runtimes — each hosting one node of a 2-node tree,
        // exactly like two arrowd processes — handshake and exchange a real
        // acquire through the advertised address table.
        let t = tree(2);
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let d0 = NetRuntime::spawn_daemon(&t, 1, NetConfig::instant(), 0, l0, addrs.clone(), 0);
        let d1 = NetRuntime::spawn_daemon(&t, 1, NetConfig::instant(), 1, l1, addrs, 0);
        let req = d1.handle(1).acquire();
        d1.handle(1).release(req);
        let r1 = d1.shutdown();
        let r0 = d0.shutdown();
        // The acquirer journals its request; assembling both journals yields
        // one clean order — the cluster harness does exactly this merge.
        let mut issued: Vec<Request> = Vec::new();
        issued.extend_from_slice(r0.schedule().requests());
        issued.extend_from_slice(r1.schedule().requests());
        issued.sort_by_key(|r| (r.time, r.id));
        let schedule = RequestSchedule::from_requests(issued);
        let mut records = r0.records().to_vec();
        records.extend_from_slice(r1.records());
        let orders = arrow_core::order::per_object_orders(&records, &schedule).unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].1.order(), &[req]);
    }

    #[test]
    #[should_panic(expected = "hosts only node 1")]
    fn daemon_mode_handle_refuses_non_hosted_nodes() {
        let t = tree(2);
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![refused_addr(), l1.local_addr().unwrap()];
        let cfg = NetConfig::instant().with_fault_tolerance();
        let d1 = NetRuntime::spawn_daemon(&t, 1, cfg, 1, l1, addrs, 0);
        let _ = d1.handle(0);
    }

    #[test]
    fn daemon_seq_base_offsets_request_ids_past_a_dead_incarnation() {
        // A restarted daemon passes the supervisor's seq_base so its fresh
        // core never re-issues an id the dead incarnation already used: ids
        // are 1 + me + seq * n, so seq_base=5 on node 1 of n=2 starts at 12.
        let t = tree(2);
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let d0 = NetRuntime::spawn_daemon(&t, 1, NetConfig::instant(), 0, l0, addrs.clone(), 0);
        let d1 = NetRuntime::spawn_daemon(&t, 1, NetConfig::instant(), 1, l1, addrs, 5);
        let req = d1.handle(1).acquire();
        assert_eq!(req.0, 1 + 1 + 5 * 2);
        d1.handle(1).release(req);
        d1.shutdown();
        d0.shutdown();
    }

    #[test]
    fn healthy_mesh_reports_no_failures() {
        let rt = NetRuntime::spawn(&tree(5), NetConfig::instant());
        let h = rt.handle(4);
        let req = h.try_acquire().expect("healthy mesh grants");
        h.release(req);
        let report = rt.shutdown();
        assert!(report.failures().is_empty());
        assert_eq!(report.stats().dial_failures, 0);
    }

    #[test]
    fn pipelined_acquires_fail_promptly_when_the_bootstrap_parent_is_unreachable() {
        // Regression for the pipelined path: acquires issued through
        // start_acquire_object while the node's bootstrap dial is failing must
        // resolve to typed errors promptly — not block until the caller's own
        // timeout. The child fails itself once the retry budget is spent, and
        // every queued Acquire is refused at the shard.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(2), 1, cfg, &[(0, refused_addr())]);
        let pendings: Vec<PendingAcquire> = (0..4)
            .map(|_| rt.handle(1).start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let started = Instant::now();
        for p in pendings {
            let failure = p
                .wait_timeout(Duration::from_secs(10))
                .expect_err("no grant can cross a refused parent edge");
            assert_eq!(failure.node, 1);
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "pipelined acquires on a failed node must error out promptly"
        );
        rt.shutdown();
    }

    #[test]
    fn pipelined_acquires_fail_promptly_when_the_lazy_token_channel_is_refused() {
        // Regression for the pipelined path across the mesh: node 3's queue()
        // frames reach the root over healthy tree edges, but the root cannot
        // dial node 3's (refused) advertised address to deliver the first token
        // grant. The PeerFailed broadcast must fail *all* of node 3's in-flight
        // pipelined acquires promptly, including the ones queued behind the
        // undeliverable head-of-line grant.
        let cfg = NetConfig::instant().with_dial_retries(1);
        let rt =
            NetRuntime::spawn_multi_with_addr_overrides(&tree(7), 1, cfg, &[(3, refused_addr())]);
        let pendings: Vec<PendingAcquire> = (0..3)
            .map(|_| rt.handle(3).start_acquire_object(ObjectId::DEFAULT))
            .collect();
        let started = Instant::now();
        for p in pendings {
            assert!(
                p.wait_timeout(Duration::from_secs(10)).is_err(),
                "a grant whose token channel is refused must fail, not hang"
            );
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "the failure broadcast must fail queued pipelined acquires promptly"
        );
        let report = rt.shutdown();
        assert_eq!(report.failures().len(), 1, "only the root journals it");
    }

    #[test]
    fn crashing_the_token_holder_regenerates_the_token_over_sockets() {
        let cfg = NetConfig::instant()
            .with_dial_retries(1)
            .with_fault_tolerance();
        let rt = NetRuntime::spawn(&tree(7), cfg);
        let fh = rt.fault_handle();
        // Leaf 5 wins the token over real sockets and crashes while holding it:
        // its links are cut mid-run and the token dies with its state.
        let req = rt.handle(5).try_acquire().expect("healthy mesh grants");
        assert!(!req.is_root());
        fh.apply(&FaultAction::CrashNode(5), 1);
        // After the detection bump the root holds a regenerated token; the
        // surviving leaf 6 must still be granted.
        let got = rt
            .handle(6)
            .try_acquire_object_timeout(ObjectId::DEFAULT, Duration::from_secs(10))
            .expect("regenerated token grants the surviving node");
        rt.handle(6).release_object(ObjectId::DEFAULT, got);
        fh.apply(&FaultAction::RestartNode(5), 2);
        let report = rt.shutdown();
        assert!(
            report.token_regenerations() >= 1,
            "the post-crash grant chains from the regenerated root token"
        );
        report
            .validate_churn(2)
            .expect("per-epoch order contract under churn");
        assert!(report.failures().is_empty(), "churn is not a mesh failure");
    }

    #[test]
    fn epoch_bump_reissues_a_request_lost_to_a_severed_link() {
        // Leaf 1's queue() frame is swallowed by a severed tree edge; restoring
        // the link and broadcasting the next epoch makes the leaf re-issue its
        // still-pending request (same id, new stamp), which then completes.
        let cfg = NetConfig::instant().with_fault_tolerance();
        let rt = NetRuntime::spawn(&tree(3), cfg);
        let fh = rt.fault_handle();
        fh.apply(&FaultAction::DropLink(0, 1), 1);
        let pending = rt.handle(1).start_acquire_object(ObjectId::DEFAULT);
        // Give the dropped queue() frame time to be (not) delivered.
        std::thread::sleep(Duration::from_millis(100));
        fh.apply(&FaultAction::RestoreLink(0, 1), 2);
        let req = pending
            .wait_timeout(Duration::from_secs(10))
            .expect("the re-issued request must complete after the link heals");
        rt.handle(1).release_object(ObjectId::DEFAULT, req);
        let report = rt.shutdown();
        assert!(
            report.stats().frames_dropped >= 1,
            "the severed link must have swallowed the original frame"
        );
        report
            .validate_churn(2)
            .expect("per-epoch order contract under churn");
    }

    #[test]
    fn generated_fault_schedule_churn_run_converges_over_sockets() {
        // The socket-tier analogue of the thread runtime's churn test: workers
        // acquire/release through real TCP links while a generated fault schedule
        // (crashes, restarts, partitions) runs against the mesh. Liveness: every
        // surviving worker round is eventually granted; safety: the journaled
        // orders satisfy the per-epoch churn contract.
        let t = tree(7);
        let faults = FaultSchedule::generate(7, &t, 2);
        let final_epoch = faults.final_epoch();
        let cfg = NetConfig::instant()
            .with_dial_retries(1)
            .with_fault_tolerance();
        let rt = NetRuntime::spawn_multi(&t, 2, cfg);
        let fh = rt.fault_handle();
        let injector_done = Arc::new(AtomicBool::new(false));
        let injector = {
            let fh = fh.clone();
            let t = t.clone();
            let faults = faults.clone();
            let done = Arc::clone(&injector_done);
            std::thread::spawn(move || {
                fh.run_schedule(&faults, &t, Duration::from_millis(20));
                done.store(true, Ordering::SeqCst);
            })
        };
        let mut joins = Vec::new();
        for v in 0..7 {
            let h = rt.handle(v);
            let fh = fh.clone();
            let done = Arc::clone(&injector_done);
            joins.push(std::thread::spawn(move || {
                for round in 0..3u32 {
                    let obj = ObjectId((v as u32 + round) % 2);
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(attempts <= 200, "node {v} round {round} never granted");
                        match h.try_acquire_object_timeout(obj, Duration::from_millis(1000)) {
                            Ok(req) => {
                                h.release_object(obj, req);
                                break;
                            }
                            Err(_) => {
                                // Crashed-node refusal or a grant lost to churn:
                                // once injection is over, a timeout doubles as
                                // fault detection — re-broadcasting the final
                                // epoch is idempotent and heals any straggler.
                                if done.load(Ordering::SeqCst) {
                                    fh.broadcast_epoch(final_epoch);
                                }
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        injector.join().unwrap();
        let report = rt.shutdown();
        report
            .validate_churn(final_epoch)
            .expect("per-epoch order contract across a generated churn schedule");
        assert!(
            report.stats().acquisitions >= 7 * 3,
            "every worker round was granted"
        );
    }
}
