//! # rand (offline shim) — deterministic PRNG stand-in
//!
//! Implements the slice of the `rand` 0.8 API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over the integer/float range types
//! that appear in-tree, and `Rng::gen_bool` — on top of xoshiro256** seeded through
//! SplitMix64. Streams are fully deterministic per seed (which is all the simulator
//! requires); they do NOT bit-match the real `rand::rngs::StdRng`. The container
//! this workspace builds in has no registry access; swap for the real crate via
//! `[workspace.dependencies]` when one is available.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<u32> = (0..4).map(|_| a.gen_range(0u32..100)).collect();
//! let ys: Vec<u32> = (0..4).map(|_| b.gen_range(0u32..100)).collect();
//! assert_eq!(xs, ys, "same seed, same stream");
//! assert!(xs.iter().all(|&x| x < 100));
//! ```

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    // Lemire-style scaled multiply; span <= 2^64 so the result fits in u64.
    debug_assert!(span > 0 && span <= (1u128 << 64));
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let x = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + u64_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + u64_below(rng, span) as $t
            }
        }
    )*};
}
int_range_impls!(u64, usize, u32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(
                a.gen_range(0u64..=u64::MAX - 1),
                b.gen_range(0u64..=u64::MAX - 1)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(0u64..=3);
            assert!(y <= 3);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
