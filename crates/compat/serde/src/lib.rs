//! # serde (offline facade) — no-op serialization stand-in
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without a registry. The marker traits
//! are provided for code that writes `T: Serialize` bounds. Nothing in this
//! workspace performs serde-driven serialization (JSON artifacts are written by
//! hand), so the derives exist purely so the annotations survive until the real
//! serde is swapped in via `[workspace.dependencies]`.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
//! struct Row {
//!     #[serde(rename = "n")] // helper attributes are accepted and ignored
//!     nodes: usize,
//! }
//!
//! let row = Row { nodes: 64 };
//! assert_eq!(row.clone(), row, "derives expand to nothing but still compile");
//! ```

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::ser::Serialize`.
pub trait SerializeTrait {}

/// Marker trait standing in for `serde::de::Deserialize`.
pub trait DeserializeTrait {}
