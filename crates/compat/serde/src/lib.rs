//! Offline serde facade.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without a registry. The marker traits
//! are provided for code that writes `T: Serialize` bounds.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::ser::Serialize`.
pub trait SerializeTrait {}

/// Marker trait standing in for `serde::de::Deserialize`.
pub trait DeserializeTrait {}
