//! # serde-derive (offline shim) — no-op `Serialize` / `Deserialize` derives
//!
//! The workspace annotates its data types with serde derives so the real serde can be
//! dropped in when a registry is available, but nothing in-tree performs serde-driven
//! serialization (JSON artifacts are written by hand). These derives therefore expand
//! to nothing; they only accept the `#[serde(...)]` helper attribute so existing
//! annotations keep compiling. Use through the `serde` facade crate, which
//! re-exports both macros.
//!
//! ```
//! use serde_derive::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Point {
//!     #[serde(default)] // helper attribute: accepted, ignored
//!     x: f64,
//!     y: f64,
//! }
//!
//! let p = Point { x: 1.0, y: 2.0 };
//! assert_eq!(p.x + p.y, 3.0);
//! ```

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` field/variant attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
