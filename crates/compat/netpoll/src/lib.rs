//! Minimal readiness-polling shim over raw Linux syscalls.
//!
//! The offline container has no `libc`/`mio` crates, so the socket tier's
//! event loop talks to the kernel through this crate: `epoll_create1` /
//! `epoll_ctl` / `epoll_pwait` for readiness, `eventfd` for cross-thread
//! wakeups, and a nonblocking `connect(2)` that reports completion via
//! `EPOLLOUT` + `SO_ERROR`. Every `unsafe` block of the socket tier lives
//! here; `arrow-net` itself keeps `#![forbid(unsafe_code)]`.
//!
//! The surface is deliberately tiny and level-triggered: callers re-arm by
//! reading/writing until [`std::io::ErrorKind::WouldBlock`], exactly the
//! contract `arrow-net`'s reactor shards rely on.
//!
//! ```
//! use netpoll::{Poller, Waker};
//! use std::os::fd::AsRawFd;
//!
//! let poller = Poller::new().unwrap();
//! let waker = Waker::new().unwrap();
//! poller.register(waker.as_raw_fd(), 7, true, false).unwrap();
//! waker.wake().unwrap();
//! let mut events = Vec::new();
//! poller
//!     .wait(&mut events, Some(std::time::Duration::from_secs(1)))
//!     .unwrap();
//! assert_eq!(events[0].token, 7);
//! assert!(events[0].readable);
//! waker.drain();
//! ```
#![deny(missing_docs)]

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "netpoll issues raw Linux syscalls and supports only x86_64/aarch64 Linux; \
     port the syscall table in sys.rs before building elsewhere"
);

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

mod sys {
    //! Syscall numbers and the raw `syscall` trampoline per architecture.

    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const RT_SIGPROCMASK: usize = 14;
        pub const SOCKET: usize = 41;
        pub const CONNECT: usize = 42;
        pub const BIND: usize = 49;
        pub const LISTEN: usize = 50;
        pub const SETSOCKOPT: usize = 54;
        pub const GETSOCKOPT: usize = 55;
        pub const KILL: usize = 62;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const SIGNALFD4: usize = 289;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const RT_SIGPROCMASK: usize = 135;
        pub const SOCKET: usize = 198;
        pub const CONNECT: usize = 203;
        pub const BIND: usize = 200;
        pub const LISTEN: usize = 201;
        pub const SETSOCKOPT: usize = 208;
        pub const GETSOCKOPT: usize = 209;
        pub const KILL: usize = 129;
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const SIGNALFD4: usize = 74;
        pub const EVENTFD2: usize = 19;
    }

    /// Raw 6-argument syscall. Returns the kernel's raw result: `>= 0` on
    /// success, `-errno` on failure.
    ///
    /// # Safety
    /// The caller must uphold the kernel contract for syscall `n`: pointer
    /// arguments must be valid for the access the kernel performs.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall6(
        n: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            in("r9") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Raw 6-argument syscall (aarch64 flavour of [`syscall6`]).
    ///
    /// # Safety
    /// Same contract as the x86_64 variant.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall6(
        n: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a0 => ret,
            in("x1") a1,
            in("x2") a2,
            in("x3") a3,
            in("x4") a4,
            in("x5") a5,
            options(nostack),
        );
        ret
    }
}

/// Convert a raw kernel return value into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: usize = 1;
const SOCK_NONBLOCK: usize = 0o4000;
const SOCK_CLOEXEC: usize = 0o2000000;
const SOL_SOCKET: usize = 1;
const SO_REUSEADDR: usize = 2;
const SO_ERROR: usize = 4;

const EINTR: i32 = 4;
const EINPROGRESS: i32 = 115;

/// `SIGINT` (terminal interrupt).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite termination request).
pub const SIGTERM: i32 = 15;
const SIG_BLOCK: usize = 0;
const SFD_CLOEXEC: usize = 0o2000000;
/// Kernel sigset size in bytes (`_NSIG / 8` on Linux).
const SIGSET_LEN: usize = 8;

/// Kernel `struct epoll_event`. Packed on x86_64 (the kernel ABI there has no
/// padding between `events` and `data`), naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// One readiness notification delivered by [`Poller::wait`].
///
/// `EPOLLERR`/`EPOLLHUP` conditions are folded into both `readable` and
/// `writable` so handlers discover the failure through the usual read/write
/// path (the next I/O call returns the real error).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied at [`Poller::register`] time.
    pub token: u64,
    /// Fires when the fd has data (or EOF/error) to read.
    pub readable: bool,
    /// Fires when the fd accepts writes (or has a pending error).
    pub writable: bool,
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd =
            check(unsafe { sys::syscall6(sys::nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        // SAFETY: the kernel just handed us ownership of this fd.
        Ok(Self {
            epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let mut flags = EPOLLRDHUP;
        if read {
            flags |= EPOLLIN;
        }
        if write {
            flags |= EPOLLOUT;
        }
        let ev = EpollEvent {
            events: flags,
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the call;
        // EPOLL_CTL_DEL ignores the pointer but passing it is still valid.
        check(unsafe {
            sys::syscall6(
                sys::nr::EPOLL_CTL,
                self.epfd.as_raw_fd() as usize,
                op,
                fd as usize,
                &ev as *const EpollEvent as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Start watching `fd`, delivering `token` with each event.
    pub fn register(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
    }

    /// Stop watching `fd`. The fd must still be open when this is called.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Block until at least one event is ready or `timeout` elapses
    /// (`None` = wait forever). Clears and refills `events`; returns the
    /// number of events delivered. Retries transparently on `EINTR`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const CAP: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
        let timeout_ms: isize = match timeout {
            // Round up so a 100µs timeout still sleeps rather than spins.
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(isize::MAX as u128) as isize,
            None => -1,
        };
        let n = loop {
            // SAFETY: `raw` is a valid writable buffer of CAP epoll_events;
            // a null sigmask means "don't change the signal mask".
            let ret = unsafe {
                sys::syscall6(
                    sys::nr::EPOLL_PWAIT,
                    self.epfd.as_raw_fd() as usize,
                    raw.as_mut_ptr() as usize,
                    CAP,
                    timeout_ms as usize,
                    0,
                    8,
                )
            };
            if ret == -(EINTR as isize) {
                continue;
            }
            break check(ret)?;
        };
        events.clear();
        for ev in raw.iter().take(n) {
            // Copy out of the (possibly packed) struct before inspecting.
            let bits = ev.events;
            let token = ev.data;
            let failed = bits & (EPOLLERR | EPOLLHUP) != 0;
            events.push(Event {
                token,
                readable: failed || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: failed || bits & EPOLLOUT != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wakeup handle backed by a nonblocking `eventfd`.
///
/// Register its fd with a [`Poller`] (read interest); any thread may then
/// call [`Waker::wake`] to force the poller out of `wait`. Call
/// [`Waker::drain`] after observing the event to reset it.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Create a new eventfd-backed waker.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd2 takes no pointers.
        let fd = check(unsafe {
            sys::syscall6(sys::nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0)
        })?;
        // SAFETY: the kernel just handed us ownership of this fd.
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// Make the registered poller's next (or current) `wait` return.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a valid u64.
        let ret = unsafe {
            sys::syscall6(
                sys::nr::WRITE,
                self.fd.as_raw_fd() as usize,
                &one as *const u64 as usize,
                8,
                0,
                0,
                0,
            )
        };
        // EAGAIN means the counter is saturated — the poller is already
        // pending a wakeup, so that is success for our purposes.
        match check(ret) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consume any pending wakeups so the level-triggered poller stops
    /// reporting this fd as readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reading 8 bytes into a valid u64.
        let _ = unsafe {
            sys::syscall6(
                sys::nr::READ,
                self.fd.as_raw_fd() as usize,
                &mut buf as *mut u64 as usize,
                8,
                0,
                0,
                0,
            )
        };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

/// Encode a `SocketAddr` as a kernel sockaddr buffer. Returns (buf, len).
fn encode_sockaddr(addr: &SocketAddr) -> ([u8; 28], usize) {
    let mut buf = [0u8; 28];
    match addr {
        SocketAddr::V4(v4) => {
            buf[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
            buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v4.ip().octets());
            (buf, 16)
        }
        SocketAddr::V6(v6) => {
            buf[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            (buf, 28)
        }
    }
}

/// Begin a nonblocking TCP connect to `addr`.
///
/// Returns a stream that is already in nonblocking mode. The connect may
/// still be in flight: register the fd for write interest and, when
/// `EPOLLOUT` fires, call [`take_socket_error`] to learn whether the
/// handshake succeeded. (On loopback the kernel often completes the connect
/// synchronously; that case needs no special handling — the fd simply polls
/// writable immediately.)
pub fn connect_stream(addr: &SocketAddr) -> io::Result<TcpStream> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET as usize,
        SocketAddr::V6(_) => AF_INET6 as usize,
    };
    // SAFETY: socket takes no pointers.
    let fd = check(unsafe {
        sys::syscall6(
            sys::nr::SOCKET,
            family,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })? as RawFd;
    // SAFETY: the kernel just handed us ownership of this fd; wrapping it
    // immediately guarantees it is closed on every early return below.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let (sa, len) = encode_sockaddr(addr);
    // SAFETY: `sa` is a valid sockaddr buffer of `len` bytes.
    let ret = unsafe {
        sys::syscall6(
            sys::nr::CONNECT,
            fd as usize,
            sa.as_ptr() as usize,
            len,
            0,
            0,
            0,
        )
    };
    match check(ret) {
        Ok(_) => Ok(stream),
        Err(e) if e.raw_os_error() == Some(EINPROGRESS) => Ok(stream),
        Err(e) => Err(e),
    }
}

/// Fetch and clear the pending socket error (`SO_ERROR`).
///
/// After `EPOLLOUT` fires on an in-flight [`connect_stream`] socket, this
/// distinguishes a completed connect (`Ok(None)`) from a refused/failed one
/// (`Ok(Some(error))`).
pub fn take_socket_error(stream: &TcpStream) -> io::Result<Option<io::Error>> {
    let mut err: i32 = 0;
    let mut len: u32 = 4;
    // SAFETY: `err` and `len` are valid for the kernel to write an i32/u32.
    check(unsafe {
        sys::syscall6(
            sys::nr::GETSOCKOPT,
            stream.as_raw_fd() as usize,
            SOL_SOCKET,
            SO_ERROR,
            &mut err as *mut i32 as usize,
            &mut len as *mut u32 as usize,
            0,
        )
    })?;
    if err == 0 {
        Ok(None)
    } else {
        Ok(Some(io::Error::from_raw_os_error(err)))
    }
}

/// Bind a TCP listener on `addr` with `SO_REUSEADDR` set before the bind.
///
/// `std::net::TcpListener::bind` does not set `SO_REUSEADDR`, so rebinding a
/// port whose previous owner died with established connections (now in
/// `TIME_WAIT`) fails with `EADDRINUSE` for up to a minute. A restarting
/// daemon that must come back on its *advertised* address — its peers hold an
/// immutable address table — goes through this helper instead.
pub fn listen_reuse(addr: &SocketAddr) -> io::Result<std::net::TcpListener> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET as usize,
        SocketAddr::V6(_) => AF_INET6 as usize,
    };
    // SAFETY: socket takes no pointers.
    let fd = check(unsafe {
        sys::syscall6(
            sys::nr::SOCKET,
            family,
            SOCK_STREAM | SOCK_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })? as RawFd;
    // SAFETY: the kernel just handed us ownership of this fd; wrapping it
    // immediately guarantees it is closed on every early return below.
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    let one: i32 = 1;
    // SAFETY: `one` is a valid i32 for the 4-byte option read.
    check(unsafe {
        sys::syscall6(
            sys::nr::SETSOCKOPT,
            fd as usize,
            SOL_SOCKET,
            SO_REUSEADDR,
            &one as *const i32 as usize,
            4,
            0,
        )
    })?;
    let (sa, len) = encode_sockaddr(addr);
    // SAFETY: `sa` is a valid sockaddr buffer of `len` bytes.
    check(unsafe {
        sys::syscall6(
            sys::nr::BIND,
            fd as usize,
            sa.as_ptr() as usize,
            len,
            0,
            0,
            0,
        )
    })?;
    // SAFETY: listen takes no pointers.
    check(unsafe { sys::syscall6(sys::nr::LISTEN, fd as usize, 128, 0, 0, 0, 0) })?;
    Ok(std::net::TcpListener::from(owned))
}

/// Send signal `sig` to process `pid` (`kill(2)`), e.g. a graceful
/// [`SIGTERM`] before escalating to the std library's `Child::kill`
/// (`SIGKILL`).
pub fn kill(pid: u32, sig: i32) -> io::Result<()> {
    // SAFETY: kill takes no pointers.
    check(unsafe { sys::syscall6(sys::nr::KILL, pid as usize, sig as usize, 0, 0, 0, 0) })
        .map(|_| ())
}

/// A `signalfd(2)` delivering [`SIGTERM`]/[`SIGINT`] as readable events.
///
/// [`SignalFd::for_termination`] blocks both signals in the calling thread's
/// mask *before* returning; call it from `main` before spawning any thread, so
/// every thread inherits the mask and the process-directed signal is only ever
/// consumed through the fd (a thread with the signal unblocked would take the
/// default handler — immediate death — instead). Typically a dedicated watcher
/// thread parks in [`SignalFd::wait`] and flips a shutdown flag.
pub struct SignalFd {
    fd: OwnedFd,
}

impl SignalFd {
    /// Block `SIGTERM` and `SIGINT` in this thread's signal mask and return a
    /// signalfd that receives them instead.
    pub fn for_termination() -> io::Result<Self> {
        let mask: u64 = (1u64 << (SIGTERM - 1)) | (1u64 << (SIGINT - 1));
        // SAFETY: `mask` is a valid 8-byte kernel sigset; the old-mask pointer
        // is null (not requested).
        check(unsafe {
            sys::syscall6(
                sys::nr::RT_SIGPROCMASK,
                SIG_BLOCK,
                &mask as *const u64 as usize,
                0,
                SIGSET_LEN,
                0,
                0,
            )
        })?;
        // SAFETY: `mask` is a valid sigset for the signalfd to subscribe to.
        let fd = check(unsafe {
            sys::syscall6(
                sys::nr::SIGNALFD4,
                usize::MAX, // -1: create a new signalfd
                &mask as *const u64 as usize,
                SIGSET_LEN,
                SFD_CLOEXEC,
                0,
                0,
            )
        })?;
        // SAFETY: the kernel just handed us ownership of this fd.
        Ok(SignalFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// Block until one of the subscribed signals is delivered; returns its
    /// number (`SIGTERM`/`SIGINT`). Retries on `EINTR`.
    pub fn wait(&self) -> io::Result<i32> {
        // struct signalfd_siginfo is 128 bytes; ssi_signo is its first u32.
        let mut info = [0u8; 128];
        loop {
            // SAFETY: `info` is a valid writable 128-byte buffer.
            let ret = unsafe {
                sys::syscall6(
                    sys::nr::READ,
                    self.fd.as_raw_fd() as usize,
                    info.as_mut_ptr() as usize,
                    info.len(),
                    0,
                    0,
                    0,
                )
            };
            if ret == -(EINTR as isize) {
                continue;
            }
            check(ret)?;
            return Ok(u32::from_ne_bytes([info[0], info[1], info[2], info[3]]) as i32);
        }
    }
}

impl AsRawFd for SignalFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn waker_rouses_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.as_raw_fd(), 42, true, false).unwrap();
        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces, still one event
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        waker.drain();
        // Drained: the next wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wait_times_out_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn nonblocking_connect_completes_and_carries_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let stream = connect_stream(&addr).unwrap();
        poller.register(stream.as_raw_fd(), 1, false, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        assert!(take_socket_error(&stream).unwrap().is_none());

        let (mut peer, _) = listener.accept().unwrap();
        peer.write_all(b"ping").unwrap();
        poller.modify(stream.as_raw_fd(), 1, true, false).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let mut stream = stream;
        let mut buf = [0u8; 4];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        poller.deregister(stream.as_raw_fd()).unwrap();
    }

    #[test]
    fn refused_connect_surfaces_through_so_error() {
        // Bind then drop to obtain a port that refuses connections.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let poller = Poller::new().unwrap();
        let stream = match connect_stream(&dead) {
            Ok(s) => s,
            // Some kernels fail the connect synchronously; that also counts.
            Err(e) => {
                assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
                return;
            }
        };
        poller.register(stream.as_raw_fd(), 9, false, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9));
        let err = take_socket_error(&stream)
            .unwrap()
            .expect("refused connect must leave SO_ERROR set");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn listen_reuse_binds_accepts_and_rebinds() {
        // First incarnation: pick a port, carry one connection.
        let l1 = listen_reuse(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l1.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut srv, _) = l1.accept().unwrap();
        srv.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        let mut client = client;
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        // Close server-side first so the (addr, port) tuples enter TIME_WAIT,
        // then rebind the same port — the case a restarting daemon hits.
        drop(srv);
        drop(l1);
        drop(client);
        let l2 = listen_reuse(&addr).unwrap();
        assert_eq!(l2.local_addr().unwrap(), addr);
    }

    #[test]
    fn kill_signal_zero_probes_own_process() {
        // Signal 0 performs permission/existence checks without delivering.
        kill(std::process::id(), 0).unwrap();
        // A pid from the far end of the space is almost surely dead.
        assert!(kill(u32::MAX - 1, 0).is_err());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_instead_of_spinning() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_micros(100)))
            .unwrap();
        // Rounded up to 1ms, not truncated to a 0ms busy-poll.
        assert!(start.elapsed() >= Duration::from_micros(100));
    }
}
