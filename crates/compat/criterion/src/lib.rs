//! # criterion (offline shim) — minimal benchmark harness stand-in
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's benches:
//! `Criterion::default().sample_size(..)`, `benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! mean-over-samples measurement printed to stdout — enough to track relative
//! regressions without a registry dependency. Swap for the real crate via
//! `[workspace.dependencies]` when a registry is available.
//!
//! ```
//! use criterion::{black_box, BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default().sample_size(3);
//! c.bench_function("sum-100", |b| {
//!     b.iter(|| (0..100u64).map(black_box).sum::<u64>())
//! });
//! let mut group = c.benchmark_group("sums");
//! group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
//!     b.iter(|| (0..n).sum::<u64>())
//! });
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Top-level benchmark configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Benchmark a function of one input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples (bounded to ~2s of wall clock).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, also used to bound the total number of samples.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        let budget = Duration::from_secs(2);
        let max_samples = if once.is_zero() {
            self.sample_size
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, self.sample_size as u128) as usize
        };
        for _ in 0..max_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label:<60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "bench {label:<60} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)*) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),*);
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)*) => {
        fn main() {
            $( $group(); )*
        }
    };
}
