//! # rayon (offline shim) — deterministic data-parallelism stand-in
//!
//! Provides the rayon idioms the experiment harness uses — `into_par_iter().map(f)
//! .collect::<Vec<_>>()` over owned vectors and index ranges — executed on
//! `std::thread::scope` with one contiguous chunk per available core. Results are
//! reassembled in input-index order, so output is bit-identical to the serial
//! `iter().map().collect()` regardless of thread count or scheduling. On a
//! single-core host the items run inline with zero thread overhead. Swap for the
//! real crate via `[workspace.dependencies]` when a registry is available.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let parallel: Vec<usize> = (0..100).into_par_iter().map(|x| x * x).collect();
//! let serial: Vec<usize> = (0..100).map(|x| x * x).collect();
//! assert_eq!(parallel, serial, "index order is preserved exactly");
//! ```

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (rayon-compatible entry point).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A collection of items ready for parallel mapping.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (executed in parallel at collect time).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map, executed by [`ParMap::collect`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map across worker threads and collect results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// Map `items` through `f` on up to `current_num_threads()` scoped threads,
/// preserving input order in the output. The chunk partition depends only on the
/// item count and thread count, and results are stitched back by chunk index, so
/// the output is deterministic.
pub fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, sized so every thread gets within one item of the others.
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

/// The rayon prelude: glob-import to get `into_par_iter` in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::par_map_vec;
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_map_exactly() {
        let inputs: Vec<u64> = (0..257).map(|i| i * 31 + 7).collect();
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) ^ (x >> 3);
        let parallel = par_map_vec(inputs.clone(), &f);
        let serial: Vec<u64> = inputs.into_iter().map(f).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn range_entry_point_works() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![5].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![6]);
    }
}
