//! # desim — deterministic discrete-event message-passing simulator
//!
//! This crate is the network substrate for the reproduction of *"Dynamic Analysis of
//! the Arrow Distributed Protocol"* (Herlihy, Kuhn, Tirthapura, Wattenhofer). It models
//! an asynchronous message-passing system of `n` nodes connected by point-to-point
//! FIFO links, with virtual time, pluggable link-latency models (the paper's
//! synchronous unit-latency model and its asynchronous bounded-delay model), per-node
//! protocol automata, statistics and tracing.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — a run is a pure function of `(processes, config, seed,
//!    scheduled inputs)`, so every experiment in the paper reproduction is replayable.
//! 2. **Fidelity to the paper's model** — unit-latency synchronous links, normalised
//!    asynchronous delays, FIFO links, free local computation, arbitrary local
//!    processing order of simultaneous arrivals (Section 3.1, 3.8).
//! 3. **Scale** — millions of events run in well under a second, so the full
//!    100,000-requests-per-processor workload of Section 5 is feasible.
//!
//! ## Quick example
//!
//! ```
//! use desim::{Context, NodeId, Process, SimConfig, SimTime, Simulator};
//!
//! /// Each node forwards a hop-counter to the next node until it hits zero.
//! struct Relay { n: usize }
//!
//! impl Process<u32> for Relay {
//!     fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, hops: u32) {
//!         if hops > 0 {
//!             let next = (ctx.node() + 1) % self.n;
//!             ctx.send(next, hops - 1);
//!         }
//!     }
//! }
//!
//! let nodes = (0..4).map(|_| Relay { n: 4 }).collect();
//! let mut sim = Simulator::new(nodes, SimConfig::synchronous());
//! sim.schedule_external(SimTime::ZERO, 0, 8);
//! let outcome = sim.run();
//! assert_eq!(outcome.final_time, SimTime::from_units(8));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod link;
pub mod node;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{Event, EventKind, EventQueue};
pub use link::{LatencyModel, LinkState};
pub use node::{Context, NodeId, Process};
pub use rng::SimRng;
pub use sim::{Completion, LocalOrder, RunOutcome, SimConfig, SimFault, Simulator, StopReason};
pub use stats::{Histogram, SimStats};
pub use time::{SimDuration, SimTime, SUBTICKS_PER_UNIT};
pub use trace::{Trace, TraceEvent};
