//! Structured tracing of simulation runs.
//!
//! A [`Trace`] is an ordered log of interesting occurrences (message sends, deliveries,
//! external inputs, timer firings). It is optional — tracing every message of a large
//! run is expensive — and is enabled by the harness when a test or experiment needs to
//! inspect the exact interleaving (e.g. to check FIFO behaviour or to visualise a run).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was handed to the network.
    Send {
        /// Virtual time of the send.
        time: SimTime,
        /// Sender.
        from: usize,
        /// Destination.
        to: usize,
        /// Scheduled delivery time (after latency + FIFO adjustment).
        delivery: SimTime,
        /// Short description of the payload.
        label: String,
    },
    /// A message was delivered and processed.
    Deliver {
        /// Virtual time of delivery.
        time: SimTime,
        /// Sender.
        from: usize,
        /// Destination.
        to: usize,
        /// Short description of the payload.
        label: String,
    },
    /// An external input was processed.
    External {
        /// Virtual time.
        time: SimTime,
        /// Node receiving the input.
        node: usize,
        /// Short description of the payload.
        label: String,
    },
    /// A timer fired.
    Timer {
        /// Virtual time.
        time: SimTime,
        /// Node whose timer fired.
        node: usize,
        /// Timer tag.
        tag: u64,
    },
}

impl TraceEvent {
    /// The virtual time of the event.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Send { time, .. }
            | TraceEvent::Deliver { time, .. }
            | TraceEvent::External { time, .. }
            | TraceEvent::Timer { time, .. } => time,
        }
    }
}

/// An append-only log of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace: `push` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled trace that records every event pushed into it.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events filtered to deliveries at a given node, in order.
    pub fn deliveries_at(&self, node: usize) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { to, .. } if *to == node))
            .collect()
    }

    /// Render the trace as a human-readable multi-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let line = match e {
                TraceEvent::Send {
                    time,
                    from,
                    to,
                    delivery,
                    label,
                } => format!("{time} SEND {from} -> {to} (delivery {delivery}): {label}"),
                TraceEvent::Deliver {
                    time,
                    from,
                    to,
                    label,
                } => format!("{time} DELIVER {from} -> {to}: {label}"),
                TraceEvent::External { time, node, label } => {
                    format!("{time} EXTERNAL @{node}: {label}")
                }
                TraceEvent::Timer { time, node, tag } => {
                    format!("{time} TIMER @{node} tag={tag}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::Timer {
            time: SimTime::ZERO,
            node: 0,
            tag: 1,
        });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::External {
            time: SimTime::from_units(1),
            node: 2,
            label: "req".into(),
        });
        t.push(TraceEvent::Deliver {
            time: SimTime::from_units(2),
            from: 2,
            to: 3,
            label: "queue".into(),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].time(), SimTime::from_units(1));
        assert_eq!(t.deliveries_at(3).len(), 1);
        assert_eq!(t.deliveries_at(4).len(), 0);
    }

    #[test]
    fn render_contains_all_event_kinds() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::Send {
            time: SimTime::ZERO,
            from: 0,
            to: 1,
            delivery: SimTime::from_units(1),
            label: "m".into(),
        });
        t.push(TraceEvent::Timer {
            time: SimTime::from_units(3),
            node: 1,
            tag: 9,
        });
        let s = t.render();
        assert!(s.contains("SEND 0 -> 1"));
        assert!(s.contains("TIMER @1 tag=9"));
    }
}
