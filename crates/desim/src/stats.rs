//! Simulation statistics: message counts, per-node and per-link counters, and
//! latency/hop histograms.
//!
//! The paper's experimental section reports two quantities (Figures 10 and 11):
//! total latency for a fixed number of enqueues, and the average number of
//! inter-processor messages ("hops") per queuing operation. [`SimStats`] collects the
//! raw counts needed to derive both, plus general-purpose histograms for richer
//! reporting.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A simple fixed-bucket histogram over non-negative `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Maximum number of regular buckets. Samples past the last regular bucket land
    /// in a single shared *overflow* bucket, so one huge outlier (or a `NaN`-free
    /// but absurd latency) can never make `record` allocate an unbounded counts
    /// vector. Exact `min`/`max`/`sum` are tracked separately and are unaffected;
    /// only the bucket resolution of percentiles saturates.
    pub const MAX_BUCKETS: usize = 4096;

    /// Create a histogram with the given bucket width (must be positive).
    pub fn new(bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Histogram {
            bucket_width,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (negative samples are clamped to zero; samples beyond
    /// [`Histogram::MAX_BUCKETS`] bucket widths share one overflow bucket).
    pub fn record(&mut self, sample: f64) {
        let s = sample.max(0.0);
        let bucket = ((s / self.bucket_width) as usize).min(Self::MAX_BUCKETS - 1);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += s;
        self.min = self.min.min(s);
        self.max = self.max.max(s);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples have been recorded.
    ///
    /// On an empty histogram every summary statistic is *defined* to be `0.0` —
    /// [`mean`], [`min`], [`max`], [`sum`] and [`percentile`] all return zero rather
    /// than dividing by the zero sample count or reporting the infinities the
    /// internal min/max trackers start from.
    ///
    /// [`mean`]: Histogram::mean
    /// [`min`]: Histogram::min
    /// [`max`]: Histogram::max
    /// [`sum`]: Histogram::sum
    /// [`percentile`]: Histogram::percentile
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate p-th percentile (`p` in `[0,100]`), computed from bucket
    /// boundaries and clamped into `[min, max]` — so `percentile(100.0)` never
    /// exceeds [`Histogram::max`] and small percentiles never undercut
    /// [`Histogram::min`], even though bucket *upper* edges are the raw estimate.
    /// Returns `0.0` on an empty histogram (see [`Histogram::is_empty`] for the
    /// empty-histogram contract); `p` is clamped into `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                if i == Self::MAX_BUCKETS - 1 {
                    // The overflow bucket has no meaningful upper edge; the exact
                    // maximum is the tightest honest answer.
                    return self.max;
                }
                let upper_edge = (i as f64 + 1.0) * self.bucket_width;
                return upper_edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (50th percentile); `0.0` if empty.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The 99th percentile; `0.0` if empty.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Fold another histogram of the **same bucket width** into this one, as if
    /// every sample recorded into `other` had been recorded here instead.
    ///
    /// Bucket counts add index-wise. In particular, `other`'s shared *overflow*
    /// bucket (index [`Histogram::MAX_BUCKETS`]` - 1`, see
    /// [`Histogram::record`]) folds into this histogram's overflow bucket:
    /// samples that saturated bucket resolution there stay saturated here —
    /// merging never re-buckets or un-saturates anything. `count`, `sum`, `min`
    /// and `max` combine exactly, so [`Histogram::mean`], [`Histogram::min`]
    /// and [`Histogram::max`] equal what single-histogram recording would have
    /// produced; [`Histogram::percentile`] keeps its usual bucket-edge
    /// resolution. Merging an empty histogram is a no-op (the sentinel
    /// infinities its min/max trackers start from never leak into `self`);
    /// merging *into* an empty one makes it equal to `other`.
    ///
    /// # Panics
    /// If the bucket widths differ: counts are only index-compatible at equal
    /// widths, and silently re-bucketing would corrupt percentiles.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bucket_width == other.bucket_width,
            "cannot merge histograms with different bucket widths ({} vs {})",
            self.bucket_width,
            other.bucket_width
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Counters collected during a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimStats {
    /// Total messages delivered (excluding external inputs and timers).
    pub messages_delivered: u64,
    /// Messages a node "sent to itself" via the network (normally zero).
    pub self_messages: u64,
    /// External inputs injected.
    pub external_inputs: u64,
    /// Timer firings.
    pub timer_firings: u64,
    /// Events processed in total.
    pub events_processed: u64,
    /// Messages lost to faults: deliveries to a crashed node or over a blocked
    /// link (see [`crate::SimFault`]).
    pub messages_dropped: u64,
    /// External inputs and timer firings silenced because their node was crashed.
    pub silenced_inputs: u64,
    /// Per-node count of messages sent.
    pub sent_per_node: Vec<u64>,
    /// Per-node count of messages received.
    pub received_per_node: Vec<u64>,
    /// Per-directed-link message counts.
    pub per_link: HashMap<(usize, usize), u64>,
    /// Histogram of sampled message latencies (in time units).
    pub latency_hist: Histogram,
}

impl SimStats {
    /// Create zeroed statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        SimStats {
            messages_delivered: 0,
            self_messages: 0,
            external_inputs: 0,
            timer_firings: 0,
            events_processed: 0,
            messages_dropped: 0,
            silenced_inputs: 0,
            sent_per_node: vec![0; n],
            received_per_node: vec![0; n],
            per_link: HashMap::new(),
            latency_hist: Histogram::new(0.05),
        }
    }

    pub(crate) fn note_send(&mut self, from: usize, to: usize, latency: SimDuration) {
        self.sent_per_node[from] += 1;
        *self.per_link.entry((from, to)).or_insert(0) += 1;
        self.latency_hist.record(latency.as_units_f64());
        if from == to {
            self.self_messages += 1;
        }
    }

    pub(crate) fn note_delivery(&mut self, to: usize) {
        self.messages_delivered += 1;
        self.received_per_node[to] += 1;
    }

    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent_per_node.iter().sum()
    }

    /// Messages that actually crossed between two *different* nodes — the paper's
    /// "inter-processor messages" of Figure 11.
    pub fn interprocessor_messages(&self) -> u64 {
        self.total_sent() - self.self_messages
    }

    /// The busiest node by received messages, `(node, count)`. `None` if no traffic.
    pub fn hottest_receiver(&self) -> Option<(usize, u64)> {
        self.received_per_node
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new(1.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        assert!((h.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new(0.5);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max() + 0.5);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        // The contract documented on Histogram::is_empty: every summary statistic of
        // an empty histogram is exactly 0.0 — finite, no division by the zero count,
        // no leaked sentinel infinities from the min/max trackers.
        let h = Histogram::new(1.0);
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        for p in [0.0, 50.0, 99.0, 100.0, -3.0, 250.0] {
            let v = h.percentile(p);
            assert!(v == 0.0 && v.is_finite(), "percentile({p}) = {v}");
        }
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn p50_p99_conveniences_match_percentile() {
        let mut h = Histogram::new(0.5);
        for i in 0..200 {
            h.record(i as f64 / 20.0);
        }
        assert!(!h.is_empty());
        assert_eq!(h.p50(), h.percentile(50.0));
        assert_eq!(h.p99(), h.percentile(99.0));
        assert!(h.p50() <= h.p99());
        // Out-of-range percentiles clamp rather than panic or extrapolate.
        assert_eq!(h.percentile(-10.0), h.percentile(0.0));
        assert_eq!(h.percentile(1000.0), h.percentile(100.0));
    }

    #[test]
    fn percentiles_stay_within_min_and_max() {
        // Regression: the bucket *upper* edge used to leak out directly, so
        // percentile(100) exceeded max() and percentile(epsilon) exceeded min().
        let mut h = Histogram::new(1.0);
        h.record(0.2);
        h.record(0.3);
        assert_eq!(h.percentile(100.0), h.max());
        assert!(h.percentile(100.0) <= h.max());
        assert!(h.percentile(0.001) >= h.min());
        for p in [0.0, 0.001, 25.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(
                (h.min()..=h.max()).contains(&v),
                "percentile({p}) = {v} outside [{}, {}]",
                h.min(),
                h.max()
            );
        }
    }

    #[test]
    fn huge_outlier_lands_in_the_overflow_bucket_without_huge_allocation() {
        // Regression: a single absurd sample used to allocate sample/width buckets.
        let mut h = Histogram::new(0.05);
        h.record(1e12);
        assert!(h.counts.len() <= Histogram::MAX_BUCKETS);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e12);
        // Percentiles saturate to the exact max, not the overflow bucket edge.
        assert_eq!(h.percentile(50.0), 1e12);
        // Mixing in normal samples keeps ordinary percentiles sane.
        for _ in 0..99 {
            h.record(1.0);
        }
        assert_eq!(h.count(), 100);
        assert!(h.percentile(50.0) <= 1.05 + 1e-9);
        assert_eq!(h.percentile(100.0), 1e12);
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let a_samples = [0.1, 1.7, 3.2, 9.9];
        let b_samples = [0.4, 0.4, 25.0];
        let mut a = Histogram::new(0.5);
        let mut b = Histogram::new(0.5);
        let mut reference = Histogram::new(0.5);
        for &x in &a_samples {
            a.record(x);
            reference.record(x);
        }
        for &x in &b_samples {
            b.record(x);
            reference.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.sum(), reference.sum());
        assert_eq!(a.min(), reference.min());
        assert_eq!(a.max(), reference.max());
        assert_eq!(a.mean(), reference.mean());
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), reference.percentile(p), "p = {p}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut recorded = Histogram::new(1.0);
        recorded.record(2.5);
        recorded.record(7.0);

        // Empty into recorded: a no-op — the empty side's sentinel infinities
        // (min = +inf, max = -inf) must not leak.
        let mut a = recorded.clone();
        a.merge(&Histogram::new(1.0));
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 2.5);
        assert_eq!(a.max(), 7.0);

        // Recorded into empty: the empty side becomes the recorded one.
        let mut b = Histogram::new(1.0);
        b.merge(&recorded);
        assert_eq!(b.count(), 2);
        assert_eq!(b.min(), recorded.min());
        assert_eq!(b.max(), recorded.max());
        assert_eq!(b.p50(), recorded.p50());

        // Empty into empty stays empty and all-zeros.
        let mut c = Histogram::new(1.0);
        c.merge(&Histogram::new(1.0));
        assert!(c.is_empty());
        assert_eq!(c.min(), 0.0);
        assert_eq!(c.max(), 0.0);
    }

    #[test]
    fn merge_folds_overflow_buckets_together() {
        // Both sides hold samples saturated into the shared overflow bucket;
        // the merge adds those counts index-wise without re-bucketing, and the
        // exact maxima still combine.
        let mut a = Histogram::new(0.05);
        let mut b = Histogram::new(0.05);
        a.record(1e12);
        b.record(2e12);
        b.record(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.counts.len() <= Histogram::MAX_BUCKETS);
        assert_eq!(a.counts[Histogram::MAX_BUCKETS - 1], 2);
        assert_eq!(a.max(), 2e12);
        // Percentiles inside the overflow bucket saturate to the exact max.
        assert_eq!(a.percentile(100.0), 2e12);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_rejects_mismatched_bucket_widths() {
        let mut a = Histogram::new(0.5);
        a.merge(&Histogram::new(1.0));
    }

    #[test]
    fn negative_samples_clamp_to_zero() {
        let mut h = Histogram::new(1.0);
        h.record(-5.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_counters_track_sends_and_deliveries() {
        let mut s = SimStats::new(3);
        s.note_send(0, 1, SimDuration::unit());
        s.note_send(0, 2, SimDuration::unit());
        s.note_send(1, 1, SimDuration::unit());
        s.note_delivery(1);
        s.note_delivery(2);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.self_messages, 1);
        assert_eq!(s.interprocessor_messages(), 2);
        assert_eq!(s.sent_per_node, vec![2, 1, 0]);
        assert_eq!(s.received_per_node, vec![0, 1, 1]);
        assert_eq!(s.per_link[&(0, 1)], 1);
        assert_eq!(s.hottest_receiver().map(|(_, c)| c), Some(1));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = Histogram::new(0.0);
    }
}
