//! The simulation driver: owns the nodes, the event queue, the links and the clock,
//! and runs the event loop until quiescence (or a configured limit).

use crate::event::{EventKind, EventQueue};
use crate::link::{LatencyModel, LinkState};
use crate::node::{Context, NodeId, Outgoing, Process};
use crate::rng::SimRng;
use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// How a node orders messages that arrive at the very same instant.
///
/// The paper (Section 3.1) notes that its analysis holds irrespective of the order in
/// which simultaneously arriving `queue()` messages are processed locally. The
/// simulator therefore supports both a deterministic FIFO order and a seeded-random
/// order, so experiments can confirm the claim empirically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalOrder {
    /// Simultaneous arrivals are processed in the order the sends were issued.
    Fifo,
    /// Simultaneous arrivals are processed in a pseudo-random order (implemented by a
    /// sub-micro-unit scheduling jitter; it never reorders messages on the same link).
    Random,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// PRNG seed (controls random latencies, jitter and anything a process derives
    /// from the RNG the harness hands it).
    pub seed: u64,
    /// Local processing order of simultaneous arrivals.
    pub local_order: LocalOrder,
    /// Whether to record a full [`Trace`].
    pub trace: bool,
    /// Safety valve: abort after this many events (None = unlimited).
    pub max_events: Option<u64>,
    /// Safety valve: abort once virtual time exceeds this (None = unlimited).
    pub max_time: Option<SimTime>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::Unit,
            seed: 0,
            local_order: LocalOrder::Fifo,
            trace: false,
            max_events: None,
            max_time: None,
        }
    }
}

impl SimConfig {
    /// Default lower bound (in time units) on asynchronous message latencies. The
    /// paper only requires latencies in `(0, 1]`; the positive floor keeps event
    /// counts finite in closed-loop experiments.
    pub const DEFAULT_ASYNC_LO: f64 = 0.05;

    /// The synchronous model of Section 3.1: unit latency, deterministic order.
    pub fn synchronous() -> Self {
        SimConfig::default()
    }

    /// The asynchronous model of Section 3.8: uniformly random latencies in
    /// `[lo, 1.0]` with `lo = `[`SimConfig::DEFAULT_ASYNC_LO`], random local
    /// processing order. Use [`SimConfig::asynchronous_with_floor`] to pick a
    /// different lower bound.
    pub fn asynchronous(seed: u64) -> Self {
        SimConfig::asynchronous_with_floor(seed, SimConfig::DEFAULT_ASYNC_LO)
    }

    /// The asynchronous model with an explicit lower latency bound: uniformly random
    /// latencies in `[lo, 1.0]` (clamped to `(0, 1]`), random local processing order.
    pub fn asynchronous_with_floor(seed: u64, lo: f64) -> Self {
        SimConfig {
            latency: LatencyModel::Uniform {
                lo: lo.clamp(f64::EPSILON, 1.0),
                hi: 1.0,
            },
            seed,
            local_order: LocalOrder::Random,
            trace: false,
            max_events: None,
            max_time: None,
        }
    }
}

/// A scheduled fault, applied at a virtual time during the run (see
/// [`Simulator::schedule_fault`]).
///
/// Faults model churn at the network substrate level: a **crashed** node has its
/// inbox and outbox silenced — deliveries, external inputs and timer firings
/// addressed to it are dropped (counted in [`SimStats::messages_dropped`] /
/// [`SimStats::silenced_inputs`]) until a matching [`SimFault::Restart`] — and a
/// **blocked** link `{u, v}` drops every message that would be delivered over it,
/// in either direction, until unblocked. The simulator does not touch process
/// state: what a restarted node remembers (or forgets) is protocol business, which
/// is exactly where the arrow recovery layer hooks in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimFault {
    /// Silence `node`'s inbox and outbox from the fault time on.
    Crash(NodeId),
    /// Lift a previous [`SimFault::Crash`] of `node`.
    Restart(NodeId),
    /// Drop every delivery over the undirected link `{u, v}`.
    BlockLink(NodeId, NodeId),
    /// Lift a previous [`SimFault::BlockLink`] of `{u, v}`.
    UnblockLink(NodeId, NodeId),
}

/// Why the run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The event queue drained — the system is quiescent.
    Quiescent,
    /// The configured `max_events` limit was hit.
    EventLimit,
    /// The configured `max_time` limit was hit.
    TimeLimit,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Number of events processed.
    pub events: u64,
    /// Virtual time of the last processed event.
    pub final_time: SimTime,
}

/// A record of an application-level completion reported via
/// [`Context::record_completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Virtual time at which the completion was recorded.
    pub time: SimTime,
    /// Node that recorded it.
    pub node: NodeId,
    /// User-chosen value (e.g. a request id).
    pub value: u64,
}

/// The discrete-event simulator.
///
/// Generic over the message type `M` and the per-node process type `P`. Heterogeneous
/// networks can use `Box<dyn Process<M>>` for `P`.
pub struct Simulator<M, P: Process<M>> {
    nodes: Vec<P>,
    queue: EventQueue<M>,
    links: LinkState,
    rng: SimRng,
    config: SimConfig,
    now: SimTime,
    started: bool,
    stats: SimStats,
    trace: Trace,
    completions: Vec<Completion>,
    events_processed: u64,
    /// Scheduled faults, sorted by time once the run starts; `next_fault` indexes
    /// the first not-yet-applied entry.
    faults: Vec<(SimTime, SimFault)>,
    next_fault: usize,
    /// Per-node crash flags (inbox/outbox silenced while set).
    crashed: Vec<bool>,
    /// Blocked undirected links, stored as `(min, max)` node pairs.
    blocked: std::collections::HashSet<(NodeId, NodeId)>,
    /// Reusable handler context: cleared (capacity kept) before every handler call,
    /// so the steady state of the event loop allocates nothing per event.
    scratch: Context<M>,
}

impl<M: std::fmt::Debug, P: Process<M>> Simulator<M, P> {
    /// Create a simulator over the given per-node processes.
    pub fn new(nodes: Vec<P>, config: SimConfig) -> Self {
        let n = nodes.len();
        let trace = if config.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        Simulator {
            nodes,
            queue: EventQueue::new(),
            links: LinkState::new(),
            rng: SimRng::new(config.seed),
            config,
            now: SimTime::ZERO,
            started: false,
            stats: SimStats::new(n),
            trace,
            completions: Vec::new(),
            events_processed: 0,
            faults: Vec::new(),
            next_fault: 0,
            crashed: vec![false; n],
            blocked: std::collections::HashSet::new(),
            scratch: Context::new(0, SimTime::ZERO),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Set the weight (latency in units under weighted models) of link `{u, v}`.
    pub fn set_link_weight(&mut self, u: NodeId, v: NodeId, weight: f64) {
        self.links.set_weight(u, v, weight);
    }

    /// Schedule an external input for `node` at absolute virtual time `time`.
    pub fn schedule_external(&mut self, time: SimTime, node: NodeId, payload: M) {
        assert!(node < self.nodes.len(), "node {node} out of range");
        self.queue
            .schedule(time, EventKind::External { node, payload });
    }

    /// Schedule a [`SimFault`] at absolute virtual time `time`. Faults take effect
    /// just before the first event at or after `time` is processed, so a crash at
    /// `t` silences deliveries scheduled for `t` as well.
    ///
    /// # Panics
    /// If the run has already started (faults are sorted once, at start), or a
    /// fault names a node out of range.
    pub fn schedule_fault(&mut self, time: SimTime, fault: SimFault) {
        assert!(
            !self.started,
            "faults must be scheduled before the run starts"
        );
        let check = |v: NodeId| assert!(v < self.nodes.len(), "node {v} out of range");
        match fault {
            SimFault::Crash(v) | SimFault::Restart(v) => check(v),
            SimFault::BlockLink(u, v) | SimFault::UnblockLink(u, v) => {
                check(u);
                check(v);
            }
        }
        self.faults.push((time, fault));
    }

    /// True if `node` is currently crashed (silenced by an applied
    /// [`SimFault::Crash`] without a later restart). After [`Simulator::run`]
    /// returns, this reports whether the node survived the run.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node]
    }

    /// Apply every scheduled fault with fault time `<= now`.
    fn apply_due_faults(&mut self, now: SimTime) {
        while let Some(&(t, fault)) = self.faults.get(self.next_fault) {
            if t > now {
                break;
            }
            self.next_fault += 1;
            match fault {
                SimFault::Crash(v) => self.crashed[v] = true,
                SimFault::Restart(v) => self.crashed[v] = false,
                SimFault::BlockLink(u, v) => {
                    self.blocked.insert((u.min(v), u.max(v)));
                }
                SimFault::UnblockLink(u, v) => {
                    self.blocked.remove(&(u.min(v), u.max(v)));
                }
            }
        }
    }

    /// Immutable access to a node's process (for post-run inspection).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id]
    }

    /// Mutable access to a node's process (for pre-run setup).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id]
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The trace (empty unless tracing was enabled in the config).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Completions recorded so far, in recording order. Draining resets the buffer.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Completions recorded so far without draining.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    fn apply_context(&mut self, node: NodeId, ctx: &mut Context<M>) {
        for out in ctx.outbox.drain(..) {
            // Jitter is folded into the FIFO floor (the floored, jittered delivery is
            // what gets recorded), so random local processing order can never reorder
            // two messages on the same directed channel.
            let jitter = match self.config.local_order {
                LocalOrder::Fifo => SimDuration::ZERO,
                // Sub-micro-unit jitter: at most 1e-4 of a unit, enough to randomise
                // the processing order of simultaneous arrivals without measurably
                // changing latencies.
                LocalOrder::Random => SimDuration::from_subticks(self.rng.uniform_u64(0, 100)),
            };
            let (to, msg, delivery) = match out {
                Outgoing::Link { to, msg } => {
                    let delivery = self.links.delivery_time(
                        node,
                        to,
                        self.now,
                        &self.config.latency,
                        &mut self.rng,
                        jitter,
                    );
                    (to, msg, delivery)
                }
                Outgoing::Direct { to, msg, latency } => {
                    let delivery = self
                        .links
                        .direct_delivery_time(node, to, self.now, latency, jitter);
                    (to, msg, delivery)
                }
            };
            self.stats.note_send(node, to, delivery - self.now);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent::Send {
                    time: self.now,
                    from: node,
                    to,
                    delivery,
                    label: format!("{msg:?}"),
                });
            }
            self.queue.schedule(
                delivery,
                EventKind::Deliver {
                    from: node,
                    to,
                    payload: msg,
                },
            );
        }
        for (delay, tag) in ctx.timers.drain(..) {
            self.queue
                .schedule(self.now + delay, EventKind::Timer { node, tag });
        }
        for (time, value) in ctx.completions.drain(..) {
            self.completions.push(Completion { time, node, value });
        }
    }

    /// Take the scratch context out of `self`, re-pointed at `(node, now)`.
    /// Must be paired with [`Simulator::put_scratch`].
    fn take_scratch(&mut self, node: NodeId, now: SimTime) -> Context<M> {
        let mut ctx = std::mem::replace(&mut self.scratch, Context::new(0, SimTime::ZERO));
        ctx.reset(node, now);
        ctx
    }

    fn put_scratch(&mut self, ctx: Context<M>) {
        self.scratch = ctx;
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.faults.sort_by_key(|&(t, _)| t);
        for i in 0..self.nodes.len() {
            let mut ctx = self.take_scratch(i, SimTime::ZERO);
            self.nodes[i].on_start(&mut ctx);
            self.apply_context(i, &mut ctx);
            self.put_scratch(ctx);
        }
    }

    /// Process a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start_nodes();
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.time);
        self.apply_due_faults(self.now);
        self.events_processed += 1;
        self.stats.events_processed += 1;
        match event.kind {
            EventKind::Deliver { from, to, payload } => {
                if self.crashed[to] || self.blocked.contains(&(from.min(to), from.max(to))) {
                    // The receiver is crashed or the link is severed: the message
                    // is lost in flight. Recovery is the protocol's business.
                    self.stats.messages_dropped += 1;
                    return true;
                }
                self.stats.note_delivery(to);
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Deliver {
                        time: self.now,
                        from,
                        to,
                        label: format!("{payload:?}"),
                    });
                }
                let mut ctx = self.take_scratch(to, self.now);
                self.nodes[to].on_message(&mut ctx, from, payload);
                self.apply_context(to, &mut ctx);
                self.put_scratch(ctx);
            }
            EventKind::External { node, payload } => {
                if self.crashed[node] {
                    self.stats.silenced_inputs += 1;
                    return true;
                }
                self.stats.external_inputs += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::External {
                        time: self.now,
                        node,
                        label: format!("{payload:?}"),
                    });
                }
                let mut ctx = self.take_scratch(node, self.now);
                self.nodes[node].on_external(&mut ctx, payload);
                self.apply_context(node, &mut ctx);
                self.put_scratch(ctx);
            }
            EventKind::Timer { node, tag } => {
                if self.crashed[node] {
                    self.stats.silenced_inputs += 1;
                    return true;
                }
                self.stats.timer_firings += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Timer {
                        time: self.now,
                        node,
                        tag,
                    });
                }
                let mut ctx = self.take_scratch(node, self.now);
                self.nodes[node].on_timer(&mut ctx, tag);
                self.apply_context(node, &mut ctx);
                self.put_scratch(ctx);
            }
        }
        true
    }

    /// Run until quiescence or a configured limit; returns a summary.
    pub fn run(&mut self) -> RunOutcome {
        self.start_nodes();
        loop {
            if let Some(limit) = self.config.max_events {
                if self.events_processed >= limit {
                    return RunOutcome {
                        stop: StopReason::EventLimit,
                        events: self.events_processed,
                        final_time: self.now,
                    };
                }
            }
            if let (Some(limit), Some(next)) = (self.config.max_time, self.queue.peek_time()) {
                if next > limit {
                    return RunOutcome {
                        stop: StopReason::TimeLimit,
                        events: self.events_processed,
                        final_time: self.now,
                    };
                }
            }
            if !self.step() {
                return RunOutcome {
                    stop: StopReason::Quiescent,
                    events: self.events_processed,
                    final_time: self.now,
                };
            }
        }
    }
}

impl<M> Process<M> for Box<dyn Process<M>> {
    fn on_start(&mut self, ctx: &mut Context<M>) {
        (**self).on_start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M) {
        (**self).on_message(ctx, from, msg)
    }
    fn on_external(&mut self, ctx: &mut Context<M>, input: M) {
        (**self).on_external(ctx, input)
    }
    fn on_timer(&mut self, ctx: &mut Context<M>, tag: u64) {
        (**self).on_timer(ctx, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that forwards a counter message to the next node until it reaches zero.
    #[derive(Debug)]
    struct Relay {
        n: usize,
        received: Vec<u32>,
    }

    impl Process<u32> for Relay {
        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, msg: u32) {
            self.received.push(msg);
            if msg > 0 {
                let next = (ctx.node() + 1) % self.n;
                ctx.send(next, msg - 1);
            } else {
                ctx.record_completion(ctx.node() as u64);
            }
        }
    }

    fn ring(n: usize, config: SimConfig) -> Simulator<u32, Relay> {
        let nodes = (0..n)
            .map(|_| Relay {
                n,
                received: vec![],
            })
            .collect();
        Simulator::new(nodes, config)
    }

    #[test]
    fn message_relay_around_ring_takes_unit_latency_each_hop() {
        let mut sim = ring(5, SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 0, 10);
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::Quiescent);
        // 10 hops, each of unit latency.
        assert_eq!(outcome.final_time, SimTime::from_units(10));
        assert_eq!(sim.stats().messages_delivered, 10);
        assert_eq!(sim.stats().external_inputs, 1);
        let completions = sim.drain_completions();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].node, 0); // 10 hops from node 0 around a 5-ring
        assert_eq!(completions[0].time, SimTime::from_units(10));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = |seed| {
            let mut cfg = SimConfig::asynchronous(seed);
            cfg.trace = true;
            let mut sim = ring(7, cfg);
            sim.schedule_external(SimTime::ZERO, 3, 25);
            sim.run();
            sim.trace().render()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn event_limit_stops_the_run() {
        let mut cfg = SimConfig::synchronous();
        cfg.max_events = Some(3);
        let mut sim = ring(4, cfg);
        sim.schedule_external(SimTime::ZERO, 0, 1000);
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::EventLimit);
        assert_eq!(outcome.events, 3);
    }

    #[test]
    fn time_limit_stops_the_run() {
        let mut cfg = SimConfig::synchronous();
        cfg.max_time = Some(SimTime::from_units(5));
        let mut sim = ring(4, cfg);
        sim.schedule_external(SimTime::ZERO, 0, 1000);
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::TimeLimit);
        assert!(outcome.final_time <= SimTime::from_units(5));
    }

    #[test]
    fn weighted_links_change_latency() {
        let mut cfg = SimConfig::synchronous();
        cfg.latency = LatencyModel::EdgeWeight;
        let mut sim = ring(3, cfg);
        sim.set_link_weight(0, 1, 4.0);
        sim.set_link_weight(1, 2, 2.0);
        sim.schedule_external(SimTime::ZERO, 0, 2);
        let outcome = sim.run();
        // 0 -> 1 takes 4 units, 1 -> 2 takes 2 units.
        assert_eq!(outcome.final_time, SimTime::from_units(6));
    }

    #[test]
    fn async_latencies_never_exceed_one_unit_per_hop_plus_jitter() {
        let mut sim = ring(6, SimConfig::asynchronous(5));
        sim.schedule_external(SimTime::ZERO, 0, 30);
        let outcome = sim.run();
        // 30 hops at <= ~1 unit each.
        assert!(outcome.final_time <= SimTime::from_units(31));
        assert_eq!(sim.stats().messages_delivered, 30);
    }

    #[test]
    fn random_local_order_never_reorders_a_directed_link() {
        // Regression for the jitter-after-floor bug: jitter used to be added to the
        // delivery time *after* LinkState::delivery_time had applied (and recorded)
        // the FIFO floor, so two messages sent on the same directed link within 1e-4
        // units could be delivered out of order. The fix folds jitter into the floor.
        struct Burst {
            received: Vec<u32>,
        }
        impl Process<u32> for Burst {
            fn on_external(&mut self, ctx: &mut Context<u32>, count: u32) {
                // Send `count` messages to node 1 in a single instant on one link.
                for i in 0..count {
                    ctx.send(1, i);
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<u32>, _from: NodeId, msg: u32) {
                self.received.push(msg);
            }
        }
        for seed in 0..40 {
            let nodes = (0..2).map(|_| Burst { received: vec![] }).collect();
            let mut sim = Simulator::new(nodes, SimConfig::asynchronous(seed));
            sim.schedule_external(SimTime::ZERO, 0, 30);
            sim.run();
            let received = &sim.node(1).received;
            assert_eq!(received.len(), 30);
            assert!(
                received.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: FIFO link reordered under random local order: {received:?}"
            );
        }
    }

    #[test]
    fn asynchronous_floor_is_configurable() {
        let cfg = SimConfig::asynchronous_with_floor(1, 0.5);
        match cfg.latency {
            LatencyModel::Uniform { lo, hi } => {
                assert_eq!(lo, 0.5);
                assert_eq!(hi, 1.0);
            }
            other => panic!("unexpected latency model {other:?}"),
        }
        // The default keeps the documented 0.05 floor.
        match SimConfig::asynchronous(1).latency {
            LatencyModel::Uniform { lo, .. } => assert_eq!(lo, SimConfig::DEFAULT_ASYNC_LO),
            other => panic!("unexpected latency model {other:?}"),
        }
    }

    #[test]
    fn direct_sends_take_the_requested_latency() {
        struct Direct;
        impl Process<u32> for Direct {
            fn on_external(&mut self, ctx: &mut Context<u32>, _input: u32) {
                ctx.send_direct(1, 7, SimDuration::from_units(5));
            }
            fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, msg: u32) {
                ctx.record_completion(msg as u64);
            }
        }
        let mut sim = Simulator::new(vec![Direct, Direct], SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 0, 0);
        let outcome = sim.run();
        // One direct hop of 5 units, regardless of the unit link model.
        assert_eq!(outcome.final_time, SimTime::from_units(5));
        assert_eq!(sim.completions().len(), 1);
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let mut cfg = SimConfig::synchronous();
        cfg.trace = true;
        let mut sim = ring(3, cfg);
        sim.schedule_external(SimTime::ZERO, 0, 2);
        sim.run();
        let trace = sim.trace();
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count();
        let delivers = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { .. }))
            .count();
        assert_eq!(sends, 2);
        assert_eq!(delivers, 2);
    }

    #[test]
    fn boxed_processes_work() {
        struct Sink {
            got: u32,
        }
        impl Process<u32> for Sink {
            fn on_message(&mut self, _ctx: &mut Context<u32>, _from: NodeId, msg: u32) {
                self.got += msg;
            }
        }
        let nodes: Vec<Box<dyn Process<u32>>> =
            vec![Box::new(Sink { got: 0 }), Box::new(Sink { got: 0 })];
        let mut sim = Simulator::new(nodes, SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 1, 5);
        sim.run();
        assert_eq!(sim.stats().external_inputs, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scheduling_for_missing_node_panics() {
        let mut sim = ring(2, SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 5, 1);
    }

    #[test]
    fn crashed_node_drops_deliveries_externals_and_timers() {
        struct Ticker;
        impl Process<u32> for Ticker {
            fn on_external(&mut self, ctx: &mut Context<u32>, _input: u32) {
                ctx.set_timer(SimDuration::from_units(2), 1);
                ctx.send(1, 7);
            }
            fn on_timer(&mut self, ctx: &mut Context<u32>, tag: u64) {
                ctx.record_completion(tag);
            }
            fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, msg: u32) {
                ctx.record_completion(msg as u64);
            }
        }
        let mut sim = Simulator::new(vec![Ticker, Ticker], SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 0, 0);
        // A second external for node 0 after the crash, and the crash itself at t=1:
        // the pending timer (t=2), the in-flight delivery to node 1 (crashed below),
        // and the later external are all dropped.
        sim.schedule_external(SimTime::from_units(3), 0, 0);
        sim.schedule_fault(SimTime::from_units(1), SimFault::Crash(0));
        sim.schedule_fault(SimTime::from_units(0), SimFault::Crash(1));
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::Quiescent);
        assert!(sim.completions().is_empty());
        assert_eq!(sim.stats().messages_dropped, 1); // send to crashed node 1
        assert_eq!(sim.stats().silenced_inputs, 2); // node 0's timer + late external
        assert!(sim.is_crashed(0));
        assert!(sim.is_crashed(1));
    }

    #[test]
    fn restart_lifts_a_crash() {
        let mut sim = ring(3, SimConfig::synchronous());
        // Crash node 1 before the relay reaches it, restart it later, then issue a
        // second relay that passes through it cleanly.
        sim.schedule_fault(SimTime::ZERO, SimFault::Crash(1));
        sim.schedule_fault(SimTime::from_units(5), SimFault::Restart(1));
        sim.schedule_external(SimTime::ZERO, 0, 2);
        sim.schedule_external(SimTime::from_units(10), 0, 2);
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::Quiescent);
        // First relay dies at node 1; second one completes 0 -> 1 -> 2.
        assert_eq!(sim.stats().messages_dropped, 1);
        assert_eq!(sim.node(1).received, vec![1]);
        assert_eq!(sim.node(2).received, vec![0]);
        assert!(!sim.is_crashed(1));
    }

    #[test]
    fn blocked_link_drops_both_directions_until_unblocked() {
        let mut sim = ring(2, SimConfig::synchronous());
        // Block {0,1}, relay 1 -> 0 is dropped; unblock, relay passes.
        sim.schedule_fault(SimTime::ZERO, SimFault::BlockLink(0, 1));
        sim.schedule_fault(SimTime::from_units(5), SimFault::UnblockLink(1, 0));
        sim.schedule_external(SimTime::ZERO, 1, 1);
        sim.schedule_external(SimTime::ZERO, 0, 1);
        sim.schedule_external(SimTime::from_units(6), 0, 1);
        let outcome = sim.run();
        assert_eq!(outcome.stop, StopReason::Quiescent);
        // The first two relays (one per direction) are dropped at the blocked link;
        // the third makes its single hop.
        assert_eq!(sim.stats().messages_dropped, 2);
        assert_eq!(sim.stats().messages_delivered, 1);
    }
}
