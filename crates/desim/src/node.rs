//! Process (node) abstraction and the context handed to processes.
//!
//! A simulated distributed algorithm is a collection of [`Process`] implementations,
//! one per node. The simulator calls into a process when a message, external input or
//! timer arrives; the process reacts by sending messages / setting timers through the
//! [`Context`]. Processes never see global state — exactly like a real message-passing
//! algorithm.

use crate::time::{SimDuration, SimTime};

/// Identifier of a node in the simulated network (index into the node vector).
pub type NodeId = usize;

/// One buffered outgoing message: either a normal link send (latency sampled from the
/// simulator's latency model) or a direct send with an explicit latency (used for
/// out-of-band traffic such as acknowledgements routed over graph shortest paths).
#[derive(Debug, PartialEq)]
pub(crate) enum Outgoing<M> {
    /// Deliver over the link `(sender, to)` using the configured latency model.
    Link {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Deliver after exactly `latency` (plus local-order jitter), bypassing the link
    /// latency model. Direct sends form their own FIFO channel per directed pair.
    Direct {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
        /// Explicit one-way latency.
        latency: SimDuration,
    },
}

/// Outgoing actions a process can request during a single handler invocation.
///
/// The context buffers them; the simulator applies them (samples latencies, schedules
/// events, updates statistics) after the handler returns. This keeps handler code pure
/// with respect to the event queue and keeps borrow-checking simple.
#[derive(Debug)]
pub struct Context<M> {
    node: NodeId,
    now: SimTime,
    /// Messages to send.
    pub(crate) outbox: Vec<Outgoing<M>>,
    /// Timers to set: (delay, tag).
    pub(crate) timers: Vec<(SimDuration, u64)>,
    /// Application-level completion records (opaque to the simulator, drained by the
    /// harness after the run). Each entry is (time recorded, user value).
    pub(crate) completions: Vec<(SimTime, u64)>,
}

impl<M> Context<M> {
    /// Create a free-standing context (useful for unit-testing [`Process`]
    /// implementations outside a full simulation).
    pub fn new(node: NodeId, now: SimTime) -> Self {
        Context {
            node,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            completions: Vec::new(),
        }
    }

    /// Re-point this context at a new handler invocation, clearing the buffered
    /// actions but keeping their allocated capacity. Used by the simulator to reuse
    /// one scratch context for every event instead of allocating three `Vec`s per
    /// handler call.
    pub(crate) fn reset(&mut self, node: NodeId, now: SimTime) {
        self.node = node;
        self.now = now;
        self.outbox.clear();
        self.timers.clear();
        self.completions.clear();
    }

    /// The node this handler is running on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send `msg` to `to`. Delivery time is determined by the simulator's latency model.
    ///
    /// Sending to `self.node()` is allowed and is delivered like any other message
    /// (useful for testing), but distributed algorithms normally act locally instead.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outgoing::Link { to, msg });
    }

    /// Send `msg` to `to` with an explicit one-way `latency`, bypassing the link
    /// latency model. Intended for out-of-band traffic whose cost is defined by a
    /// metric rather than by a single link — e.g. acknowledgements that travel over
    /// the graph's shortest path, paying `d_G(from, to)` regardless of whether the
    /// pair happens to share a (possibly heavier) tree edge. Direct sends are FIFO
    /// among themselves per directed pair but do not interact with the FIFO floor of
    /// normal link traffic.
    pub fn send_direct(&mut self, to: NodeId, msg: M, latency: SimDuration) {
        self.outbox.push(Outgoing::Direct { to, msg, latency });
    }

    /// Set a timer that fires after `delay` with the given user tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Record an application-level completion (e.g. "request `id` found its
    /// predecessor"). The harness reads these back after the run via
    /// [`crate::sim::Simulator::drain_completions`].
    pub fn record_completion(&mut self, value: u64) {
        self.completions.push((self.now, value));
    }
}

/// A node's protocol automaton.
///
/// All handlers execute atomically with respect to simulated time: the paper's model
/// allows a node to process up to `deg(v)` messages per time step and treats local
/// processing as free (Section 3.1), which a discrete-event simulator models naturally
/// by making handlers take zero virtual time.
pub trait Process<M> {
    /// Called once at simulation start (time 0), before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// Called when an external input (scheduled by the harness) arrives at this node.
    ///
    /// Defaults to treating the input like a message from the node itself.
    fn on_external(&mut self, ctx: &mut Context<M>, input: M) {
        let me = ctx.node();
        self.on_message(ctx, me, input);
    }

    /// Called when a timer with `tag` fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _tag: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        heard: Vec<(NodeId, u32)>,
    }

    impl Process<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, msg: u32) {
            self.heard.push((from, msg));
            ctx.send(from, msg + 1);
            ctx.set_timer(SimDuration::unit(), 7);
            ctx.record_completion(msg as u64);
        }
    }

    #[test]
    fn context_buffers_actions() {
        let mut ctx = Context::new(3, SimTime::from_units(5));
        let mut p = Echo { heard: vec![] };
        p.on_message(&mut ctx, 1, 41);
        assert_eq!(ctx.node(), 3);
        assert_eq!(ctx.now(), SimTime::from_units(5));
        assert_eq!(ctx.outbox, vec![Outgoing::Link { to: 1, msg: 42 }]);
        assert_eq!(ctx.timers, vec![(SimDuration::unit(), 7)]);
        assert_eq!(ctx.completions, vec![(SimTime::from_units(5), 41)]);
        assert_eq!(p.heard, vec![(1, 41)]);
    }

    #[test]
    fn send_direct_buffers_with_latency() {
        let mut ctx: Context<u32> = Context::new(0, SimTime::ZERO);
        ctx.send_direct(4, 9, SimDuration::from_units(3));
        assert_eq!(
            ctx.outbox,
            vec![Outgoing::Direct {
                to: 4,
                msg: 9,
                latency: SimDuration::from_units(3)
            }]
        );
    }

    #[test]
    fn default_external_forwards_to_on_message() {
        let mut ctx = Context::new(2, SimTime::ZERO);
        let mut p = Echo { heard: vec![] };
        p.on_external(&mut ctx, 9);
        // Treated as a message from the node itself.
        assert_eq!(p.heard, vec![(2, 9)]);
    }
}
