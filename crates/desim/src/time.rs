//! Virtual simulation time.
//!
//! The paper's synchronous model uses unit-latency links and integer time steps;
//! the asynchronous model (Section 3.8) allows arbitrary message delays in `(0, 1]`.
//! To support both deterministically we represent time as a fixed-point value:
//! one *time unit* is subdivided into [`SUBTICKS_PER_UNIT`] sub-ticks. All arithmetic
//! is exact integer arithmetic, so simulation runs are bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of sub-ticks per logical time unit.
///
/// `1_000_000` gives micro-unit resolution which is far finer than any latency model
/// in this crate needs, while leaving room for ~584 billion units in a `u64`.
pub const SUBTICKS_PER_UNIT: u64 = 1_000_000;

/// A point in virtual time, measured in sub-ticks since the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (non-negative), measured in sub-ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct a time from a whole number of time units.
    pub fn from_units(units: u64) -> Self {
        SimTime(units * SUBTICKS_PER_UNIT)
    }

    /// Construct a time from raw sub-ticks.
    pub fn from_subticks(subticks: u64) -> Self {
        SimTime(subticks)
    }

    /// Raw sub-tick count.
    pub fn subticks(self) -> u64 {
        self.0
    }

    /// Time expressed in (possibly fractional) units.
    pub fn as_units_f64(self) -> f64 {
        self.0 as f64 / SUBTICKS_PER_UNIT as f64
    }

    /// Whole-unit part of the time (rounded down).
    pub fn whole_units(self) -> u64 {
        self.0 / SUBTICKS_PER_UNIT
    }

    /// Duration elapsed since an earlier time. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration of a whole number of time units.
    pub fn from_units(units: u64) -> Self {
        SimDuration(units * SUBTICKS_PER_UNIT)
    }

    /// Duration from raw sub-ticks.
    pub fn from_subticks(subticks: u64) -> Self {
        SimDuration(subticks)
    }

    /// Duration from a fractional number of units (rounded to nearest sub-tick).
    ///
    /// Negative inputs are clamped to zero.
    pub fn from_units_f64(units: f64) -> Self {
        if units <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((units * SUBTICKS_PER_UNIT as f64).round() as u64)
    }

    /// One time unit — the unit link latency of the synchronous model.
    pub fn unit() -> Self {
        SimDuration(SUBTICKS_PER_UNIT)
    }

    /// Raw sub-tick count.
    pub fn subticks(self) -> u64 {
        self.0
    }

    /// Duration expressed in (possibly fractional) units.
    pub fn as_units_f64(self) -> f64 {
        self.0 as f64 / SUBTICKS_PER_UNIT as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_units_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_units_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_round_trips() {
        let t = SimTime::from_units(42);
        assert_eq!(t.whole_units(), 42);
        assert_eq!(t.subticks(), 42 * SUBTICKS_PER_UNIT);
        assert!((t.as_units_f64() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_units(1) + SimDuration::from_units(2);
        assert_eq!(t, SimTime::from_units(3));
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_units(1);
        let b = SimTime::from_units(5);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_units(4));
    }

    #[test]
    fn fractional_durations_are_exact_subticks() {
        let d = SimDuration::from_units_f64(0.5);
        assert_eq!(d.subticks(), SUBTICKS_PER_UNIT / 2);
        let neg = SimDuration::from_units_f64(-3.0);
        assert!(neg.is_zero());
    }

    #[test]
    fn since_and_max() {
        let a = SimTime::from_units(3);
        let b = SimTime::from_units(7);
        assert_eq!(b.since(a), SimDuration::from_units(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn ordering_is_by_subticks() {
        assert!(SimTime::from_subticks(5) < SimTime::from_subticks(6));
        assert!(SimDuration::from_units(1) > SimDuration::from_units_f64(0.999999));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_units).sum();
        assert_eq!(total, SimDuration::from_units(10));
    }
}
