//! The simulator's event queue.
//!
//! Events are totally ordered by `(time, sequence number)`. The sequence number is a
//! monotonically increasing counter assigned at scheduling time, which makes executions
//! deterministic: two events scheduled for the same instant are processed in the order
//! they were scheduled (unless the configured local-processing policy reorders
//! simultaneous *message deliveries* at a node — see [`crate::sim::LocalOrder`]).
//!
//! The queue is split into a binary heap of compact `(time, seq, slot)` keys and a
//! slab of payloads with a free list. Heap sift operations therefore move 24-byte
//! keys instead of whole [`EventKind`] payloads (which carry the message type `M`),
//! and a drained slot's storage is reused by the next `schedule` — the steady state
//! of a long run performs no allocation per event.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The kinds of things that can happen inside the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Delivery of message `payload` sent by `from` to `to`.
    Deliver {
        /// Sender node.
        from: usize,
        /// Destination node.
        to: usize,
        /// The message itself.
        payload: M,
    },
    /// An external input (e.g. a queuing request issued by the application) arriving at
    /// node `node`.
    External {
        /// Node receiving the input.
        node: usize,
        /// The input payload.
        payload: M,
    },
    /// A timer previously set by `node` with user-chosen `tag` firing.
    Timer {
        /// Node that set the timer.
        node: usize,
        /// User-chosen tag to distinguish timers.
        tag: u64,
    },
}

/// A scheduled event: a time, a tie-breaking sequence number and the event kind.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// When the event fires.
    pub time: SimTime,
    /// Scheduling sequence number; breaks ties deterministically.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted (latest first): `Event` keeps the seed crate's max-heap-oriented
        // ordering so it can be pushed into a `BinaryHeap` and pop earliest-first.
        // Plain `sort()` therefore yields reverse-chronological order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Compact heap key; the payload lives in the slab at `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        // The slot never participates in ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
///
/// Payloads are parked in a slab indexed by the heap keys, so the message type `M`
/// needs no `Clone`/`Ord` bounds and is moved exactly twice: into the slab on
/// `schedule` and out on `pop`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapKey>,
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedule an event at `time`. Returns the sequence number assigned to it.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none(), "free slot occupied");
                self.slots[s as usize] = Some(kind);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Some(kind));
                s
            }
        };
        self.heap.push(HeapKey { time, seq, slot });
        seq
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let key = self.heap.pop()?;
        let kind = self.slots[key.slot as usize]
            .take()
            .expect("heap key pointed at an empty slot");
        self.free.push(key.slot);
        Some(Event {
            time: key.time,
            seq: key.seq,
            kind,
        })
    }

    /// Time of the earliest scheduled event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(node: usize, v: u32) -> EventKind<u32> {
        EventKind::External { node, payload: v }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_units(5), ext(0, 5));
        q.schedule(SimTime::from_units(1), ext(0, 1));
        q.schedule(SimTime::from_units(3), ext(0, 3));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.whole_units())
            .collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_units(2);
        q.schedule(t, ext(0, 10));
        q.schedule(t, ext(0, 11));
        q.schedule(t, ext(0, 12));
        let payloads: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::External { payload, .. } => payload,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(payloads, vec![10, 11, 12]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_units(7), ext(1, 0));
        q.schedule(SimTime::from_units(4), ext(2, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_units(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_units(7)));
    }

    #[test]
    fn scheduled_count_is_monotone() {
        let mut q = EventQueue::new();
        assert_eq!(q.scheduled_count(), 0);
        q.schedule(SimTime::ZERO, ext(0, 0));
        q.schedule(SimTime::ZERO, ext(0, 1));
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u32 {
            q.schedule(SimTime::from_units(round as u64), ext(0, round));
            let e = q.pop().unwrap();
            assert!(matches!(e.kind, EventKind::External { payload, .. } if payload == round));
        }
        // One slot serviced all 100 events.
        assert_eq!(q.slots.len(), 1);
        assert_eq!(q.scheduled_count(), 100);
    }

    #[test]
    fn non_clone_payloads_are_supported() {
        // A message type without Clone/Ord: the slab queue must still move it through.
        #[derive(Debug, PartialEq, Eq)]
        struct Opaque(String);
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::from_units(1),
            EventKind::External {
                node: 0,
                payload: Opaque("hello".into()),
            },
        );
        let e = q.pop().unwrap();
        assert!(matches!(e.kind, EventKind::External { payload, .. } if payload.0 == "hello"));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_units(10), ext(0, 10));
        q.schedule(SimTime::from_units(2), ext(0, 2));
        assert_eq!(q.pop().unwrap().time, SimTime::from_units(2));
        q.schedule(SimTime::from_units(1), ext(0, 1));
        q.schedule(SimTime::from_units(11), ext(0, 11));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.whole_units())
            .collect();
        assert_eq!(times, vec![1, 10, 11]);
    }
}
