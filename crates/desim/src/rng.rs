//! Deterministic random number generation for the simulator.
//!
//! All stochastic behaviour in the simulator (random link latencies, random local
//! processing order) is driven by a single seedable PRNG so that a run is fully
//! reproducible from `(configuration, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small wrapper around [`StdRng`] that remembers its seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    rng: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `usize` in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Exponentially distributed sample with the given mean (inverse rate).
    ///
    /// Used by Poisson-process workload generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Access the underlying [`Rng`] for uses not covered by the helpers.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seed_different_sequence() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let sa: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            let x = r.uniform(0.25, 0.75);
            assert!((0.25..0.75).contains(&x));
        }
        assert_eq!(r.uniform(1.0, 1.0), 1.0);
    }

    #[test]
    fn index_handles_zero_and_one() {
        let mut r = SimRng::new(9);
        assert_eq!(r.index(0), 0);
        assert_eq!(r.index(1), 0);
        for _ in 0..100 {
            assert!(r.index(5) < 5);
        }
    }

    #[test]
    fn exponential_is_positive_with_reasonable_mean() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let empirical = sum / n as f64;
        assert!(empirical > 0.0);
        assert!((empirical - mean).abs() < 0.2, "empirical mean {empirical}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn seed_is_recorded() {
        assert_eq!(SimRng::new(42).seed(), 42);
    }
}
